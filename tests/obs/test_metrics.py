"""Unit tests for the metrics registry (counters, histograms, rendering)."""

import threading

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    RATIO_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("n")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("n").inc(-1)


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("t", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 10.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(15.0)
        assert h.mean == pytest.approx(3.75)
        assert h.min == 0.5
        assert h.max == 10.0

    def test_quantile_estimates_from_buckets(self):
        h = Histogram("t", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 0.7, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0  # bucket upper bound
        assert h.quantile(1.0) == 3.0  # bucket bound clamped to the max

    def test_quantile_overflow_returns_max(self):
        h = Histogram("t", buckets=(1.0,))
        h.observe(9.0)
        assert h.quantile(0.5) == 9.0

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram("t", buckets=(100.0,))
        h.observe(3.0)
        assert h.quantile(0.5) == 3.0

    def test_empty_histogram(self):
        h = Histogram("t")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.quantile(0.9) == 0.0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            Histogram("t").quantile(0.0)

    def test_requires_buckets(self):
        with pytest.raises(ValueError):
            Histogram("t", buckets=())

    def test_snapshot_shape(self):
        h = Histogram("t", buckets=(1.0, 2.0))
        h.observe(0.5)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["buckets"] == {1.0: 1, 2.0: 0}
        assert snap["overflow"] == 0
        assert set(snap) >= {"mean", "min", "max", "p50", "p90", "p99"}


class TestRegistry:
    def test_instruments_created_on_first_use(self):
        m = MetricsRegistry()
        m.inc("a", 2)
        m.observe("lat", 0.01)
        assert m.counter_value("a") == 2
        assert m.histogram("lat").count == 1

    def test_counter_value_of_unknown_is_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0

    def test_custom_buckets_honored_on_creation(self):
        m = MetricsRegistry()
        m.observe("ratio", 0.4, buckets=RATIO_BUCKETS)
        assert m.histogram("ratio").buckets == tuple(sorted(RATIO_BUCKETS))
        m.observe("count", 7, buckets=COUNT_BUCKETS)
        assert m.histogram("count").buckets == tuple(sorted(COUNT_BUCKETS))

    def test_snapshot_and_render(self):
        m = MetricsRegistry()
        m.inc("query.count", 3)
        m.observe("query.total_seconds", 0.002)
        snap = m.snapshot()
        assert snap["counters"]["query.count"] == 3
        assert snap["histograms"]["query.total_seconds"]["count"] == 1
        text = m.render_text()
        assert "query.count" in text
        assert "query.total_seconds" in text

    def test_render_empty(self):
        assert "no metrics" in MetricsRegistry().render_text()

    def test_reset(self):
        m = MetricsRegistry()
        m.inc("a")
        m.reset()
        assert m.counter_value("a") == 0
        assert m.snapshot() == {"counters": {}, "histograms": {}}

    def test_thread_safety_of_counters(self):
        m = MetricsRegistry()

        def spin():
            for _ in range(1000):
                m.inc("hits")
                m.observe("lat", 0.001)

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter_value("hits") == 4000
        assert m.histogram("lat").count == 4000

    def test_thread_safety_of_direct_instrument_handles(self):
        # worker threads hold instrument handles directly (as the
        # query_many pool does) rather than going through the registry
        m = MetricsRegistry()
        counter = m.counter("hits")
        histogram = m.histogram("lat", buckets=(0.5, 1.0))

        def spin():
            for i in range(1000):
                counter.inc()
                histogram.observe(0.25 if i % 2 else 0.75)

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000
        snap = histogram.snapshot()
        assert snap["count"] == 8000
        assert snap["sum"] == pytest.approx(8000 * 0.5)
        assert snap["buckets"] == {0.5: 4000, 1.0: 4000}
        assert snap["min"] == 0.25
        assert snap["max"] == 0.75
