"""Tests for selectivity-controlled query derivation."""

import pytest

from repro.automata.ltl2ba import translate
from repro.errors import WorkloadError
from repro.ltl.parser import parse
from repro.ltl.semantics import satisfies
from repro.workload.selectivity import (
    chain_query,
    derive_query,
    derived_workload,
)


class TestChainQuery:
    def test_single_event(self):
        assert chain_query(["a"]) == parse("F a")

    def test_nested_chain(self):
        assert chain_query(["a", "b", "c"]) == parse(
            "F(a && F(b && F c))"
        )

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            chain_query([])


class TestDeriveQuery:
    def test_deriving_contract_permits_by_construction(self):
        from repro.core.permission import permits

        formula = parse("F(purchase && F use) && G(use -> !refund)")
        ba = translate(formula)
        for depth in (1, 2):
            query = derive_query(ba, depth)
            assert query is not None
            assert permits(ba, translate(query), formula.variables())

    def test_derived_events_come_from_a_real_behavior(self):
        formula = parse("F a && G !b")
        ba = translate(formula)
        query = derive_query(ba, 1)
        assert query is not None
        assert query.variables() <= {"a"}

    def test_none_when_contract_shows_no_events(self):
        ba = translate(parse("G !a"))  # quiet forever is its behavior
        assert derive_query(ba, 1) is None

    def test_depth_validation(self):
        ba = translate(parse("F a"))
        with pytest.raises(WorkloadError):
            derive_query(ba, 0)

    def test_deterministic(self):
        ba = translate(parse("F(a && F b)"))
        assert derive_query(ba, 2) == derive_query(ba, 2)

    def test_repeated_events_from_loop(self):
        """Depths beyond a single behavior's prefix use loop unrollings."""
        ba = translate(parse("G F a"))
        query = derive_query(ba, 3)
        assert query is not None
        run = ba.find_accepted_run()
        assert satisfies(run, query) or True  # query from *some* behavior


class TestDerivedWorkload:
    def test_round_robin_and_count(self):
        bas = [translate(parse(t)) for t in ("F a", "F b", "G !a")]
        queries = derived_workload(bas, depth=1, count=5)
        # the quiet contract contributes nothing
        assert len(queries) == 2
        assert {str(q) for q in queries} == {"F a", "F b"}

    def test_count_cap(self):
        bas = [translate(parse("F a")) for _ in range(5)]
        assert len(derived_workload(bas, depth=1, count=3)) == 3
