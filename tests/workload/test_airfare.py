"""Unit tests for the airfare fixture module."""

from repro.workload.airfare import (
    EVENTS,
    QUERIES,
    TICKET_CLAUSES,
    all_ticket_specs,
    common_clauses,
    one_event_per_instant,
    ticket_spec,
)


class TestFixtureShapes:
    def test_vocabulary_matches_example_3(self):
        assert set(EVENTS) == {
            "purchase", "use", "missedFlight", "refund", "dateChange"
        }

    def test_c0_is_pairwise_exclusion(self):
        clauses = one_event_per_instant()
        assert len(clauses) == 5 * 4

    def test_common_clauses_include_domain_axioms(self):
        clauses = common_clauses()
        assert len(clauses) == 20 + 5

    def test_three_tickets(self):
        assert set(TICKET_CLAUSES) == {"Ticket A", "Ticket B", "Ticket C"}
        assert len(TICKET_CLAUSES["Ticket C"]) == 3

    def test_spec_vocabulary(self):
        spec = ticket_spec("Ticket A")
        assert spec.vocabulary == frozenset(EVENTS)

    def test_specs_have_attributes(self):
        for spec in all_ticket_specs():
            assert "price" in spec.attributes

    def test_queries_have_expectations(self):
        for info in QUERIES.values():
            assert "ltl" in info and "expected" in info
