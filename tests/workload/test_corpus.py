"""Tests for the curated contract corpus — every domain's expected
question/answer pairs hold end to end through the broker."""

import pytest

from repro.broker.database import ContractDatabase
from repro.workload.corpus import all_domains, domain


@pytest.fixture(scope="module", params=[d.name for d in all_domains()])
def built_domain(request):
    d = domain(request.param)
    db = ContractDatabase(vocabulary=d.vocabulary)
    for spec in d.contracts:
        db.register_spec(spec)
    return d, db


class TestCorpusShape:
    def test_four_domains(self):
        assert len(all_domains()) == 4
        assert {d.name for d in all_domains()} == {
            "warranty", "saas", "gym", "resale"
        }

    def test_unknown_domain(self):
        with pytest.raises(KeyError):
            domain("nope")

    def test_each_domain_has_competition(self):
        for d in all_domains():
            assert len(d.contracts) >= 3
            assert len(d.questions) >= 3

    def test_contracts_conform_to_vocabulary(self):
        for d in all_domains():
            for spec in d.contracts:
                d.vocabulary.validate_contract(spec.name, spec.clauses)

    def test_contracts_are_satisfiable(self):
        """An unsatisfiable corpus contract would silently match nothing."""
        from repro.ltl.equivalence import is_satisfiable

        for d in all_domains():
            for spec in d.contracts:
                assert is_satisfiable(spec.formula), (d.name, spec.name)


class TestCorpusAnswers:
    def test_expected_answers(self, built_domain):
        d, db = built_domain
        for question, (ltl, expected) in d.questions.items():
            result = db.query(ltl)
            assert set(result.contract_names) == set(expected), (
                d.name, question,
            )

    def test_answers_stable_without_optimizations(self, built_domain):
        d, db = built_domain
        for question, (ltl, expected) in d.questions.items():
            result = db.query(ltl, use_prefilter=False,
                              use_projections=False)
            assert set(result.contract_names) == set(expected), (
                d.name, question,
            )

    def test_every_answer_explainable(self, built_domain):
        d, db = built_domain
        for question, (ltl, expected) in d.questions.items():
            result = db.query(ltl, explain=True)
            for contract_id in result.contract_ids:
                run = result.witness_for(contract_id).to_run()
                assert db.get(contract_id).ba.accepts(run)
