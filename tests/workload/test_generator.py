"""Unit tests for the synthetic workload generator (§7.2)."""

import pytest

from repro.errors import WorkloadError
from repro.ltl.ast import conj
from repro.ltl.patterns import Behavior, Scope
from repro.automata.ltl2ba import translate
from repro.workload.generator import PatternSampler, WorkloadGenerator
from repro.workload.vocabulary import numbered_vocabulary

import random


class TestPatternSampler:
    def test_placeholders_get_distinct_events(self):
        sampler = PatternSampler(numbered_vocabulary(10), random.Random(1))
        for _ in range(50):
            clause, _ = sampler.sample_clause()
            # a pattern never uses the same event for two placeholders,
            # so the clause mentions as many events as placeholders
            assert len(clause.variables()) >= 1

    def test_sampled_behaviors_follow_weights(self):
        sampler = PatternSampler(numbered_vocabulary(10), random.Random(7))
        counts = {b: 0 for b in Behavior}
        for _ in range(600):
            tpl = sampler.sample_template()
            counts[tpl.behavior] += 1
        # response dominates the survey: it must dominate the sample
        assert counts[Behavior.RESPONSE] == max(counts.values())

    def test_global_scope_dominates(self):
        sampler = PatternSampler(numbered_vocabulary(10), random.Random(7))
        scopes = {s: 0 for s in Scope}
        for _ in range(600):
            scopes[sampler.sample_template().scope] += 1
        assert scopes[Scope.GLOBAL] == max(scopes.values())

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(WorkloadError):
            PatternSampler([], random.Random(0))

    def test_tiny_vocabulary_rejected_for_wide_patterns(self):
        sampler = PatternSampler(["only"], random.Random(0))
        with pytest.raises(WorkloadError):
            for _ in range(100):  # eventually samples a 2+ event pattern
                sampler.sample_clause()


class TestWorkloadGenerator:
    def test_deterministic_given_seed(self):
        a = WorkloadGenerator(vocabulary_size=8, seed=5).generate_specs(5, 2)
        b = WorkloadGenerator(vocabulary_size=8, seed=5).generate_specs(5, 2)
        assert [s.clauses for s in a] == [s.clauses for s in b]

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(vocabulary_size=8, seed=5).generate_specs(5, 2)
        b = WorkloadGenerator(vocabulary_size=8, seed=6).generate_specs(5, 2)
        assert [s.clauses for s in a] != [s.clauses for s in b]

    def test_spec_has_requested_pattern_count(self):
        gen = WorkloadGenerator(vocabulary_size=8, seed=1)
        spec = gen.generate_spec(3)
        assert spec.num_patterns == 3
        assert len(spec.patterns) == 3

    def test_invalid_pattern_count(self):
        gen = WorkloadGenerator(vocabulary_size=8, seed=1)
        with pytest.raises(WorkloadError):
            gen.generate_spec(0)

    def test_satisfiable_mode_yields_nonempty_automata(self):
        gen = WorkloadGenerator(vocabulary_size=8, seed=2,
                                ensure_satisfiable=True)
        for spec in gen.generate_specs(8, 2):
            assert not translate(conj(spec.clauses)).is_empty()

    def test_vocabulary_respected(self):
        gen = WorkloadGenerator(vocabulary_size=4, seed=3)
        spec = gen.generate_spec(2)
        assert conj(spec.clauses).variables() <= set(numbered_vocabulary(4))
