"""Unit tests for vocabulary helpers."""

import pytest

from repro.errors import WorkloadError
from repro.workload.vocabulary import (
    PAPER_VOCABULARY_SIZE,
    numbered_vocabulary,
)


class TestNumberedVocabulary:
    def test_default_is_paper_size(self):
        assert len(numbered_vocabulary()) == PAPER_VOCABULARY_SIZE == 20

    def test_naming(self):
        assert numbered_vocabulary(3) == ("p1", "p2", "p3")

    def test_rejects_non_positive(self):
        with pytest.raises(WorkloadError):
            numbered_vocabulary(0)
