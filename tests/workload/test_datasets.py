"""Unit tests for dataset configurations and Table 2 statistics."""

from repro.workload.datasets import (
    PAPER_DATASETS,
    SCALED_DATASETS,
    dataset_statistics,
)


class TestCatalog:
    def test_paper_parameters_match_table2(self):
        simple = PAPER_DATASETS["simple_contracts"]
        assert (simple.size, simple.patterns) == (3000, 5)
        medium = PAPER_DATASETS["medium_contracts"]
        assert (medium.size, medium.patterns) == (1000, 6)
        complex_ = PAPER_DATASETS["complex_contracts"]
        assert (complex_.size, complex_.patterns) == (1000, 7)
        for key in ("simple_queries", "medium_queries", "complex_queries"):
            assert PAPER_DATASETS[key].size == 100
        assert PAPER_DATASETS["simple_queries"].patterns == 1
        assert PAPER_DATASETS["complex_queries"].patterns == 3

    def test_scaled_preserves_complexity_ordering(self):
        assert (
            SCALED_DATASETS["simple_contracts"].patterns
            < SCALED_DATASETS["medium_contracts"].patterns
            < SCALED_DATASETS["complex_contracts"].patterns
        )

    def test_generate_respects_size_override(self):
        specs = SCALED_DATASETS["simple_queries"].generate(3)
        assert len(specs) == 3


class TestStatistics:
    def test_statistics_row(self):
        stats = dataset_statistics(
            SCALED_DATASETS["simple_contracts"], sample_size=5
        )
        assert stats.size == 5
        assert stats.patterns == 3
        assert stats.states_avg > 0
        assert stats.transitions_avg > 0
        row = stats.row()
        assert row[0] == "Simple contracts"
        assert len(row) == 7

    def test_complexity_grows_with_patterns(self):
        simple = dataset_statistics(
            SCALED_DATASETS["simple_queries"], sample_size=8
        )
        complex_ = dataset_statistics(
            SCALED_DATASETS["complex_queries"], sample_size=8
        )
        assert complex_.states_avg >= simple.states_avg
