"""Tests for the streaming monitor engine (:mod:`repro.stream`)."""
