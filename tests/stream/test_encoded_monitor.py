"""Unit tests for the encoded-frontier monitor core
(:mod:`repro.stream.encoded`)."""

import pytest

from repro.automata.buchi import BuchiAutomaton, Transition
from repro.automata.encode import encode_automaton
from repro.automata.labels import Label, neg, pos
from repro.automata.ltl2ba import translate
from repro.errors import MonitorError
from repro.ltl.parser import parse
from repro.stream import (
    EncodedMonitor,
    MonitorOptions,
    MonitorStatus,
    compile_step_rows,
    live_state_mask,
    winning_mask,
)


def encoded_for(text: str, vocabulary=None):
    formula = parse(text)
    vocab = vocabulary if vocabulary is not None else formula.variables()
    return encode_automaton(translate(formula), vocab)


def monitor_for(text: str, vocabulary=None, options=None) -> EncodedMonitor:
    return EncodedMonitor(encoded_for(text, vocabulary), options)


class TestStatusTracking:
    def test_fresh_monitor_active(self):
        assert monitor_for("G(a -> F b)").status == MonitorStatus.ACTIVE

    def test_unsatisfiable_contract_immediately_violated(self):
        monitor = monitor_for("false")
        assert monitor.status == MonitorStatus.VIOLATED
        assert monitor.violated
        assert monitor.violation_index == -1
        assert monitor.frontier == 0

    def test_safety_violation_detected(self):
        monitor = monitor_for("G !refund", frozenset({"refund", "purchase"}))
        assert monitor.advance({"purchase"}) == MonitorStatus.ACTIVE
        assert monitor.advance({"refund"}) == MonitorStatus.VIOLATED
        assert monitor.violation_index == 1
        assert monitor.events_seen == 2

    def test_violated_is_absorbing_and_stops_bookkeeping(self):
        monitor = monitor_for("G !a")
        monitor.advance({"a"})
        for _ in range(5):
            assert monitor.advance({"stray"}) == MonitorStatus.VIOLATED
        # post-violation snapshots are neither counted nor inspected
        assert monitor.events_seen == 1
        assert monitor.unknown_events == 0
        assert monitor.violation_index == 0

    def test_liveness_never_violated_by_finite_prefix(self):
        monitor = monitor_for("F p")
        for _ in range(10):
            assert monitor.advance(frozenset()) == MonitorStatus.ACTIVE
        assert monitor.violation_index is None

    def test_next_obligation(self):
        monitor = monitor_for("a && X b")
        assert monitor.advance({"a"}) == MonitorStatus.ACTIVE
        assert monitor.advance(frozenset()) == MonitorStatus.VIOLATED


class TestVocabulary:
    def test_unknown_events_counted_while_active(self):
        monitor = monitor_for("G !refund", frozenset({"refund"}))
        assert monitor.advance({"purchase"}) == MonitorStatus.ACTIVE
        assert monitor.unknown_events == 1
        monitor.advance({"purchase", "upgrade"})
        assert monitor.unknown_events == 3

    def test_unknown_events_cannot_change_the_verdict(self):
        strict = monitor_for("G !refund", frozenset({"refund", "purchase"}))
        noisy = monitor_for("G !refund", frozenset({"refund", "purchase"}))
        assert strict.advance({"purchase"}) == noisy.advance(
            {"purchase", "zz-alien"}
        )
        assert strict.frontier == noisy.frontier

    def test_strict_mode_raises_before_any_state_change(self):
        monitor = monitor_for(
            "G !refund", frozenset({"refund"}),
            MonitorOptions(strict_vocabulary=True),
        )
        before = monitor.frontier
        with pytest.raises(MonitorError):
            monitor.advance({"purchase"})
        assert monitor.frontier == before
        assert monitor.events_seen == 0
        assert monitor.unknown_events == 0
        assert monitor.status == MonitorStatus.ACTIVE

    def test_strict_mode_accepts_vocabulary_events(self):
        monitor = monitor_for(
            "G !refund", frozenset({"refund", "purchase"}),
            MonitorOptions(strict_vocabulary=True),
        )
        assert monitor.advance({"purchase"}) == MonitorStatus.ACTIVE


class TestMemoization:
    def test_repeated_snapshot_hits_the_memo(self):
        monitor = monitor_for("G(a -> F b)")
        snap = frozenset({"a"})
        monitor.advance(snap)
        monitor.advance(snap)
        monitor.advance({"b"})
        assert len(monitor._snap_memo) == 2
        # {"a"} and {"b"} satisfy different label-class sets, but the
        # shared sat-table memo dedups across snapshots when they agree
        assert len(monitor._sat_tables) <= 2

    def test_reset_keeps_tables_and_rewinds_verdicts(self):
        monitor = monitor_for("G !a")
        monitor.advance({"zz"})
        monitor.advance({"a"})
        assert monitor.violated
        memo_size = len(monitor._snap_memo)
        monitor.reset()
        assert monitor.status == MonitorStatus.ACTIVE
        assert monitor.events_seen == 0
        assert monitor.violation_index is None
        assert monitor.unknown_events == 0
        assert len(monitor._snap_memo) == memo_size
        assert monitor.advance({"a"}) == MonitorStatus.VIOLATED


class TestWatchQueries:
    def test_can_still_reflects_permission(self):
        monitor = monitor_for("G !refund", frozenset({"refund", "purchase"}))
        assert monitor.can_still("F purchase")
        assert not monitor.can_still("F refund")
        monitor.advance({"purchase"})
        assert monitor.can_still("F purchase")
        assert not monitor.can_still("F refund")

    def test_can_still_false_after_violation(self):
        monitor = monitor_for("G !a", frozenset({"a", "b"}))
        monitor.advance({"a"})
        assert not monitor.can_still("F b")

    def test_string_watch_masks_are_memoized(self):
        monitor = monitor_for("G(a -> F b)")
        first = monitor.watch_mask("F b")
        assert monitor._watch_memo == {"F b": first}
        assert monitor.watch_mask("F b") == first

    def test_inadmissible_query_has_empty_winning_mask(self):
        contract = encoded_for("G !a", frozenset({"a"}))
        query = encoded_for("F x")
        assert winning_mask(contract, query) == 0

    def test_winning_mask_accepts_query_in_any_form(self):
        monitor = monitor_for("G !refund", frozenset({"refund", "purchase"}))
        formula = parse("F purchase")
        ba = translate(formula)
        for query in ("F purchase", formula, ba, encode_automaton(ba)):
            assert monitor.can_still(query)


class TestCompiledTables:
    def test_live_mask_empty_for_unsatisfiable_contract(self):
        assert live_state_mask(encoded_for("false")) == 0

    def test_live_mask_contains_initial_for_satisfiable_contract(self):
        enc = encoded_for("G a")
        assert (live_state_mask(enc) >> enc.initial) & 1

    def test_step_rows_prune_dead_destinations(self):
        # a ∨ X false: the successor reached on ¬a is a dead end and
        # must not survive in the compiled rows
        enc = encoded_for("a")
        live = live_state_mask(enc)
        rows = compile_step_rows(enc, live)
        for row in rows:
            for _label_class, dst_mask in row:
                assert dst_mask & ~live == 0

    def test_possible_states_translates_frontier(self):
        monitor = monitor_for("G(a -> F b)")
        states = monitor.possible_states
        assert states
        assert states <= frozenset(monitor.encoded.states)
