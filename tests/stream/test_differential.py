"""Differential tests: the encoded monitor must be verdict-equivalent
to the object-graph :class:`~repro.broker.monitor.ContractMonitor` on
every prefix of every trace (DEVELOPMENT.md invariant 13).

The conformance lattice's ``monitor-stream`` / ``monitor-unknown``
cells replay this comparison inside the harness; these tests drive the
same property straight from hypothesis so failures shrink to minimal
formulas and traces.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.encode import encode_automaton
from repro.automata.ltl2ba import translate
from repro.broker.monitor import ContractMonitor
from repro.check.strategies import EVENTS, contract_specs, formulas, snapshots
from repro.errors import MonitorError
from repro.ltl.parser import parse
from repro.stream import (
    EncodedMonitor,
    FleetMonitor,
    MonitorOptions,
    MonitorStatus,
)

#: events guaranteed to be outside every generated contract vocabulary
ALIEN_EVENTS = ("zz-alpha", "zz-beta")


def traces(events=EVENTS, max_len=6, alien=False):
    pool = events + ALIEN_EVENTS if alien else events
    return st.lists(snapshots(pool), max_size=max_len)


def build_pair(spec, options=None):
    ba = translate(spec.formula)
    obj = ContractMonitor(ba, spec.vocabulary, options)
    enc = EncodedMonitor(
        encode_automaton(ba, spec.vocabulary), options
    )
    return obj, enc


def assert_verdict_parity(obj, enc, query_ba, query_enc, trace):
    """Invariant 13, spelled out: status, can_still, violation index and
    unknown-event count agree at the empty prefix and after every
    event."""
    assert obj.status == enc.status
    assert obj.can_still(query_ba) == enc.can_still(query_enc)
    for snap in trace:
        assert obj.advance(snap) == enc.advance(snap)
        assert obj.status == enc.status
        assert obj.can_still(query_ba) == enc.can_still(query_enc)
        assert obj.violation_index == enc.violation_index
        assert obj.unknown_events == enc.unknown_events


class TestEncodedMatchesObject:
    @given(contract_specs(), formulas(max_depth=3), traces())
    @settings(max_examples=40, deadline=None)
    def test_verdict_parity_on_every_prefix(self, spec, query, trace):
        obj, enc = build_pair(spec)
        query_ba = translate(query)
        assert_verdict_parity(
            obj, enc, query_ba, encode_automaton(query_ba), trace
        )

    @given(contract_specs(), traces(alien=True))
    @settings(max_examples=30, deadline=None)
    def test_unknown_event_parity(self, spec, trace):
        obj, enc = build_pair(spec)
        for snap in trace:
            assert obj.advance(snap) == enc.advance(snap)
            assert obj.unknown_events == enc.unknown_events
            assert obj.violation_index == enc.violation_index

    @given(contract_specs(), traces(alien=True))
    @settings(max_examples=30, deadline=None)
    def test_strict_mode_raises_in_lockstep(self, spec, trace):
        options = MonitorOptions(strict_vocabulary=True)
        obj, enc = build_pair(spec, options)
        for snap in trace:
            try:
                obj_status = obj.advance(snap)
            except MonitorError:
                obj_status = "raised"
            try:
                enc_status = enc.advance(snap)
            except MonitorError:
                enc_status = "raised"
            assert obj_status == enc_status
            # a strict rejection leaves both sides' state untouched
            assert obj.status == enc.status
            assert len(obj.history) == enc.events_seen

    @pytest.mark.slow
    @given(contract_specs(max_clauses=3, max_depth=4),
           formulas(max_depth=4), traces(max_len=10, alien=True))
    @settings(max_examples=200, deadline=None)
    def test_verdict_parity_heavy(self, spec, query, trace):
        obj, enc = build_pair(spec)
        query_ba = translate(query)
        assert_verdict_parity(
            obj, enc, query_ba, encode_automaton(query_ba), trace
        )


class TestFleetMatchesObject:
    @given(st.lists(contract_specs(), min_size=1, max_size=3), traces())
    @settings(max_examples=25, deadline=None)
    def test_broadcast_parity(self, specs, trace):
        by_name = {}
        for spec in specs:
            by_name.setdefault(spec.name, spec)
        fleet = FleetMonitor()
        objects = {}
        for name, spec in by_name.items():
            ba = translate(spec.formula)
            fleet.add_contract(
                name, encode_automaton(ba, spec.vocabulary)
            )
            objects[name] = ContractMonitor(ba, spec.vocabulary)
        for snap in trace:
            fleet.broadcast(snap)
            for name, obj in objects.items():
                obj.advance(snap)
                assert fleet.status(name) == obj.status
        # every violation alert points at the object monitor's index
        for alert in fleet.alerts:
            if alert.kind == "violated":
                assert (alert.event_index
                        == objects[alert.contract].violation_index)


class TestBugfixRegressionTraces:
    """Pinned traces distilled from conformance-sweep counterexamples."""

    def test_watch_satisfiability_is_not_latched(self):
        # found by the monitor-stream lattice cell: the watch verdict
        # recovered on the object side but stayed latched-false on the
        # encoded side until watch_satisfiable was made live
        spec_formula = parse("c W (b -> x)")
        vocabulary = frozenset({"b", "c", "x"})
        ba = translate(spec_formula)
        obj = ContractMonitor(ba, vocabulary)
        enc = EncodedMonitor(encode_automaton(ba, vocabulary))
        query_ba = translate(parse("c W (b -> x)"))
        query_enc = encode_automaton(query_ba)
        trace = [frozenset({"b"}), frozenset({"b", "c", "x"}), frozenset()]
        verdicts = []
        for snap in trace:
            obj.advance(snap)
            enc.advance(snap)
            assert obj.can_still(query_ba) == enc.can_still(query_enc)
            verdicts.append(enc.can_still(query_enc))
        assert obj.status == enc.status

    def test_empty_trace_parity(self):
        spec_formula = parse("false")
        ba = translate(spec_formula)
        obj = ContractMonitor(ba, frozenset({"a"}))
        enc = EncodedMonitor(encode_automaton(ba, frozenset({"a"})))
        assert obj.status == enc.status == MonitorStatus.VIOLATED
        assert obj.violation_index == enc.violation_index == -1
