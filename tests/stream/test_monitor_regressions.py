"""Regression tests for the three ContractMonitor bugs fixed alongside
the streaming engine:

1. unbounded ``_history`` growth after VIOLATED (a violated monitor on
   an unbounded stream must not leak), plus ``advance_all`` draining the
   whole batch instead of stopping at the first violation;
2. events outside the contract vocabulary silently ignored — now
   counted (default) or rejected (``MonitorOptions.strict_vocabulary``);
3. ``_continuation_automaton`` colliding its fresh initial key with a
   real ``("monitor-init",)`` automaton state, silently merging the
   continuation entry point into the contract.
"""

import pytest

from repro.automata.buchi import BuchiAutomaton, Transition
from repro.automata.encode import encode_automaton
from repro.automata.labels import Label, neg, pos
from repro.automata.ltl2ba import translate
from repro.broker.monitor import ContractMonitor, MonitorOptions, MonitorStatus
from repro.errors import MonitorError
from repro.ltl.parser import parse
from repro.stream import EncodedMonitor


def monitor_for(text: str, vocabulary=None, options=None) -> ContractMonitor:
    formula = parse(text)
    vocab = vocabulary if vocabulary is not None else formula.variables()
    return ContractMonitor(translate(formula), vocab, options)


class TestHistoryBoundedAfterViolation:
    def test_history_stops_growing_once_violated(self):
        monitor = monitor_for("G !a")
        monitor.advance({"a"})
        assert monitor.status is MonitorStatus.VIOLATED
        for _ in range(100):
            monitor.advance({"a"})
        assert len(monitor.history) == 1
        assert monitor.violation_index == 0

    def test_violation_index_reported(self):
        monitor = monitor_for("G !a", frozenset({"a", "b"}))
        monitor.advance({"b"})
        assert monitor.violation_index is None
        monitor.advance({"a"})
        assert monitor.violation_index == 1

    def test_unsatisfiable_contract_indexed_before_any_event(self):
        assert monitor_for("false").violation_index == -1

    def test_advance_all_stops_at_first_violation(self):
        monitor = monitor_for("G !a", frozenset({"a", "b"}))
        remaining = iter([
            frozenset({"b"}),
            frozenset({"a"}),
            frozenset({"b"}),
            frozenset({"b"}),
        ])
        assert monitor.advance_all(remaining) is MonitorStatus.VIOLATED
        assert monitor.violation_index == 1
        assert len(monitor.history) == 2
        # the rest of the batch was not consumed
        assert list(remaining) == [frozenset({"b"}), frozenset({"b"})]


class TestUnknownVocabularyEvents:
    def test_counting_mode_counts_every_stray_event(self):
        monitor = monitor_for("G !refund", frozenset({"refund"}))
        monitor.advance({"purchase"})
        monitor.advance({"purchase", "upgrade"})
        assert monitor.unknown_events == 3
        assert monitor.status is MonitorStatus.ACTIVE

    def test_strays_not_counted_after_violation(self):
        monitor = monitor_for("G !refund", frozenset({"refund"}))
        monitor.advance({"refund"})
        monitor.advance({"purchase"})
        assert monitor.unknown_events == 0

    def test_strict_mode_raises_without_touching_state(self):
        monitor = monitor_for(
            "G !refund", frozenset({"refund"}),
            MonitorOptions(strict_vocabulary=True),
        )
        frontier = monitor.possible_states
        with pytest.raises(MonitorError):
            monitor.advance({"purchase"})
        assert monitor.history == ()
        assert monitor.unknown_events == 0
        assert monitor.possible_states == frontier
        assert monitor.status is MonitorStatus.ACTIVE

    def test_strict_mode_passes_clean_snapshots(self):
        monitor = monitor_for(
            "G !refund", frozenset({"refund", "purchase"}),
            MonitorOptions(strict_vocabulary=True),
        )
        assert monitor.advance({"purchase"}) is MonitorStatus.ACTIVE


def collision_automaton():
    """A contract whose state set contains the literal key
    ``("monitor-init",)`` — and its doubled form, forcing the fresh-key
    search to grow twice.

    From the initial state every first step requires ``a ∧ ¬b``; the
    ``("monitor-init",)`` state (live, but not in the frontier) owns a
    ``b``-transition.  Under the old fixed fresh key that transition was
    merged into the continuation's entry point, wrongly answering
    ``can_still("b")`` with True."""
    trap = ("monitor-init",)
    trap2 = ("monitor-init", "monitor-init")
    return BuchiAutomaton(
        ["s0", trap, trap2, "acc"],
        "s0",
        [
            Transition("s0", Label.of([pos("a"), neg("b")]), trap),
            Transition(trap, Label.of([pos("b")]), "acc"),
            Transition("acc", Label.of([pos("a")]), "acc"),
        ],
        {"acc"},
    )


class TestContinuationFreshKeyCollision:
    def test_collision_does_not_leak_foreign_transitions(self):
        ba = collision_automaton()
        monitor = ContractMonitor(ba, frozenset({"a", "b"}))
        assert monitor.can_still("a")
        # the frontier is {"s0"}, whose only exits forbid b — the real
        # ("monitor-init",) state's b-transition must not bleed in
        assert not monitor.can_still("b")

    def test_collision_after_advancing(self):
        ba = collision_automaton()
        monitor = ContractMonitor(ba, frozenset({"a", "b"}))
        assert monitor.advance({"a"}) is MonitorStatus.ACTIVE
        # now the frontier really is {("monitor-init",)}: b is next
        assert monitor.can_still("b")
        assert not monitor.can_still("!b")

    def test_fresh_key_grows_past_every_real_state(self):
        ba = collision_automaton()
        monitor = ContractMonitor(ba, frozenset({"a", "b"}))
        continuation = monitor._continuation_automaton()
        assert continuation.initial not in ba.states

    def test_encoded_monitor_agrees_on_the_collision_case(self):
        ba = collision_automaton()
        vocab = frozenset({"a", "b"})
        obj = ContractMonitor(ba, vocab)
        enc = EncodedMonitor(encode_automaton(ba, vocab))
        for query in ("a", "b", "F b", "G a"):
            assert obj.can_still(query) == enc.can_still(query)
        obj.advance({"a"})
        enc.advance({"a"})
        for query in ("a", "b", "F b", "G a"):
            assert obj.can_still(query) == enc.can_still(query)
