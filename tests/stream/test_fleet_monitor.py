"""Unit tests for the fleet engine: alerts, watch registry, batch
ingestion, JSONL parsing and metrics (:mod:`repro.stream.engine`)."""

import pytest

from repro.automata.buchi import BuchiAutomaton, Transition
from repro.automata.encode import encode_automaton
from repro.automata.labels import Label, neg, pos
from repro.automata.ltl2ba import translate
from repro.errors import MonitorError
from repro.ltl.parser import parse
from repro.stream import (
    Alert,
    Event,
    FleetMonitor,
    MonitorOptions,
    MonitorStatus,
    parse_event,
    read_event_log,
)


def encoded_for(text: str, vocabulary=None):
    formula = parse(text)
    vocab = vocabulary if vocabulary is not None else formula.variables()
    return encode_automaton(translate(formula), vocab)


def flip_flop_encoded():
    """A hand-built contract whose frontier oscillates between a state
    where the watch query ``"a"`` is winnable (state 0) and one where it
    is not (state 1, all exits require ¬a): the non-monotone case."""
    ba = BuchiAutomaton(
        [0, 1],
        0,
        [
            Transition(0, Label.of([neg("a")]), 0),
            Transition(0, Label.of([pos("a")]), 1),
            Transition(1, Label.of([neg("a")]), 0),
        ],
        {0},
    )
    return encode_automaton(ba, frozenset({"a"}))


class TestRegistry:
    def test_duplicate_contract_rejected(self):
        fleet = FleetMonitor()
        fleet.add_contract("c", encoded_for("G a"))
        with pytest.raises(MonitorError):
            fleet.add_contract("c", encoded_for("G a"))

    def test_unknown_contract_rejected(self):
        fleet = FleetMonitor()
        with pytest.raises(MonitorError):
            fleet.advance("ghost", {"a"})
        with pytest.raises(MonitorError):
            fleet.status("ghost")

    def test_unsatisfiable_contract_alerts_at_registration(self):
        fleet = FleetMonitor()
        fleet.add_contract("doomed", encoded_for("false"))
        assert fleet.contracts == ("doomed",)
        assert fleet.active_contracts == ()
        (alert,) = fleet.alerts
        assert alert.kind == "violated"
        assert alert.contract == "doomed"
        assert alert.event_index == -1

    def test_contract_id_carried_into_alerts(self):
        fleet = FleetMonitor()
        fleet.add_contract("c", encoded_for("G !a"), contract_id=42)
        (alert,) = fleet.broadcast({"a"})
        assert alert.contract_id == 42


class TestViolationAlerts:
    def test_violation_alert_fields(self):
        fleet = FleetMonitor()
        fleet.add_contract("no-refund", encoded_for("G !refund"))
        assert fleet.broadcast({"purchase"}) == []
        (alert,) = fleet.broadcast({"refund", "purchase"})
        assert alert.kind == "violated"
        assert alert.contract == "no-refund"
        assert alert.event_index == 1
        assert alert.events == frozenset({"refund", "purchase"})
        assert "ALERT violated contract='no-refund'" in alert.describe()
        assert alert.to_dict()["events"] == ["purchase", "refund"]

    def test_violated_contract_leaves_the_active_set(self):
        fleet = FleetMonitor()
        vocab = frozenset({"a", "b"})
        fleet.add_contract("no-a", encoded_for("G !a", vocab))
        fleet.add_contract("no-b", encoded_for("G !b", vocab))
        fleet.broadcast({"a"})
        assert fleet.active_contracts == ("no-b",)
        assert fleet.status("no-a") is MonitorStatus.VIOLATED
        # further broadcasts no longer deliver to the violated contract
        fleet.broadcast({"b"})
        assert fleet.active_contracts == ()
        assert len(fleet.alerts) == 2
        assert fleet.monitor("no-a").events_seen == 1


class TestWatchQueries:
    def test_fleet_wide_watch_attaches_to_later_contracts(self):
        fleet = FleetMonitor()
        fleet.register_watch("refundable", "F a")
        fleet.add_contract("never-a", encoded_for("G !a", frozenset({"a"})))
        # G !a can never serve F a: the watch flips at registration time
        (alert,) = fleet.alerts
        assert alert.kind == "watch-unsatisfiable"
        assert alert.watch == "refundable"
        assert alert.event_index == -1
        assert not fleet.watch_satisfiable("never-a", "refundable")

    def test_watch_on_unknown_contract_rejected(self):
        fleet = FleetMonitor()
        with pytest.raises(MonitorError):
            fleet.register_watch("w", "F a", contracts=["ghost"])

    def test_duplicate_watch_name_rejected(self):
        fleet = FleetMonitor()
        fleet.add_contract("c", encoded_for("G(a -> F b)"))
        fleet.register_watch("w", "F b", contracts=["c"])
        with pytest.raises(MonitorError):
            fleet.register_watch("w", "F a", contracts=["c"])

    def test_unregistered_watch_probe_rejected(self):
        fleet = FleetMonitor()
        fleet.add_contract("c", encoded_for("G a"))
        with pytest.raises(MonitorError):
            fleet.watch_satisfiable("c", "nope")

    def test_watch_flip_recovery_and_rearm(self):
        """Satisfiability is non-monotone: the verdict must track the
        live frontier, and a recovered watch must alert again on the
        next loss."""
        fleet = FleetMonitor()
        fleet.add_contract("flip", flip_flop_encoded())
        fleet.register_watch("next-a", "a", contracts=["flip"])
        assert fleet.watch_satisfiable("flip", "next-a")

        (alert,) = fleet.broadcast({"a"})  # frontier -> state 1
        assert alert.kind == "watch-unsatisfiable"
        assert alert.event_index == 0
        assert not fleet.watch_satisfiable("flip", "next-a")

        assert fleet.broadcast(frozenset()) == []  # back to state 0
        assert fleet.watch_satisfiable("flip", "next-a")

        (alert,) = fleet.broadcast({"a"})  # re-armed: flips again
        assert alert.kind == "watch-unsatisfiable"
        assert alert.event_index == 2

        (alert,) = fleet.broadcast({"a"})  # state 1 has no a-exit
        assert alert.kind == "violated"
        assert not fleet.watch_satisfiable("flip", "next-a")
        assert fleet.can_still("flip", "a") is False

    def test_reset_rewinds_monitors_watches_and_alerts(self):
        fleet = FleetMonitor()
        fleet.add_contract("flip", flip_flop_encoded())
        fleet.register_watch("next-a", "a")
        fleet.broadcast({"a"})
        fleet.broadcast({"a"})
        assert fleet.active_contracts == ()
        fleet.reset()
        assert fleet.alerts == ()
        assert fleet.active_contracts == ("flip",)
        assert fleet.watch_satisfiable("flip", "next-a")


class TestIngest:
    def test_mixed_record_shapes(self):
        fleet = FleetMonitor()
        vocab = frozenset({"a", "b"})
        fleet.add_contract("no-a", encoded_for("G !a", vocab))
        fleet.add_contract("no-b", encoded_for("G !b", vocab))
        report = fleet.ingest([
            Event(frozenset(), contract=None),
            {"events": ["b"], "contract": "no-a"},
            ("no-b", {"b"}),
        ])
        assert report.events == 3
        assert report.deliveries == 4  # the broadcast fans out to both
        assert [a.contract for a in report.violations] == ["no-b"]
        assert report.unknown_events == 0

    def test_unknown_events_accounted_per_batch(self):
        fleet = FleetMonitor()
        fleet.add_contract("c", encoded_for("G !a", frozenset({"a"})))
        first = fleet.ingest([{"events": ["zz-alien"]}])
        assert first.unknown_events == 1
        second = fleet.ingest([{"events": []}])
        assert second.unknown_events == 0
        assert fleet.unknown_event_count == 1

    def test_strict_fleet_raises_on_alien_events(self):
        fleet = FleetMonitor(MonitorOptions(strict_vocabulary=True))
        fleet.add_contract("c", encoded_for("G !a", frozenset({"a"})))
        with pytest.raises(MonitorError):
            fleet.ingest([{"events": ["zz-alien"]}])

    def test_unintelligible_record_rejected(self):
        fleet = FleetMonitor()
        with pytest.raises(MonitorError):
            fleet.ingest([object()])

    def test_metrics_counters(self):
        fleet = FleetMonitor()
        fleet.add_contract("flip", flip_flop_encoded())
        fleet.register_watch("next-a", "a")
        fleet.ingest([
            {"events": ["a"]},          # watch flip
            {"events": ["a", "zz"]},    # violation (+1 unknown event)
        ])
        metrics = fleet.metrics
        assert metrics.counter_value("monitor.events") == 2
        assert metrics.counter_value("monitor.alerts") == 2
        assert metrics.counter_value("monitor.violations") == 1
        assert metrics.counter_value("monitor.watch_flips") == 1
        assert metrics.counter_value("monitor.unknown_events") == 1
        assert metrics.counter_value("monitor.batches") == 1


class TestEventParsing:
    def test_parse_event_broadcast_and_addressed(self):
        assert parse_event({"events": ["a", "b"]}) == Event(
            frozenset({"a", "b"}), None
        )
        assert parse_event({"events": [], "contract": "c"}).contract == "c"
        assert parse_event({"events": [], "contract": None}).contract is None

    @pytest.mark.parametrize("doc", [
        {},                                  # no events
        {"events": "a"},                     # events is a string
        {"events": 3},                       # events not a list
        {"events": [], "contract": 7},       # contract not a name
    ])
    def test_parse_event_rejects_malformed(self, doc):
        with pytest.raises(MonitorError):
            parse_event(doc)

    def test_read_event_log_skips_blanks_and_comments(self):
        lines = [
            "# replay of 2026-08-07",
            "",
            '{"events": ["a"]}',
            "   ",
            '{"contract": "c", "events": []}',
        ]
        events = list(read_event_log(lines))
        assert events == [
            Event(frozenset({"a"}), None),
            Event(frozenset(), "c"),
        ]

    def test_read_event_log_reports_the_offending_line(self):
        with pytest.raises(MonitorError, match="line 2"):
            list(read_event_log(['{"events": []}', "not json"]))
        with pytest.raises(MonitorError, match="line 1"):
            list(read_event_log(["[1, 2]"]))
