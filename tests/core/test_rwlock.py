"""The reader-writer lock: exclusion, write preference, misuse."""

import threading
import time

import pytest

from repro.core.rwlock import RWLock


class TestBasics:
    def test_concurrent_readers(self):
        lock = RWLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read():
                inside.wait()  # all three hold the lock simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)
        assert lock.readers == 0

    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        log = []

        with lock.write():
            assert lock.write_locked

            def contender(kind):
                ctx = lock.read() if kind == "r" else lock.write()
                with ctx:
                    log.append(kind)

            threads = [
                threading.Thread(target=contender, args=(k,))
                for k in ("r", "w")
            ]
            for t in threads:
                t.start()
            time.sleep(0.05)
            assert log == []  # nobody got in while the writer held it
        for t in threads:
            t.join(timeout=5)
        assert sorted(log) == ["r", "w"]

    def test_writer_preference_blocks_new_readers(self):
        lock = RWLock()
        events = []
        reader_entered = threading.Event()
        release_reader = threading.Event()

        def long_reader():
            with lock.read():
                reader_entered.set()
                release_reader.wait(timeout=5)
            events.append("reader0-out")

        def writer():
            with lock.write():
                events.append("writer")

        def late_reader():
            with lock.read():
                events.append("late-reader")

        r0 = threading.Thread(target=long_reader)
        r0.start()
        assert reader_entered.wait(timeout=5)
        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.05)  # let the writer queue up
        r1 = threading.Thread(target=late_reader)
        r1.start()
        time.sleep(0.05)
        # the late reader must be parked behind the waiting writer
        assert "late-reader" not in events
        release_reader.set()
        for t in (r0, w, r1):
            t.join(timeout=5)
        assert events.index("writer") < events.index("late-reader")

    def test_sequential_reuse(self):
        lock = RWLock()
        for _ in range(3):
            with lock.write():
                pass
            with lock.read():
                pass
        assert lock.readers == 0
        assert not lock.write_locked


class TestMisuse:
    def test_unbalanced_read_release(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()

    def test_unbalanced_write_release(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_write()
