"""The shared capped-exponential backoff policy (repro.core.retry).

Three retry loops lean on this module — the registration pool, the
coordinator's shard RPCs, and replica catch-up — so the schedule's
shape (doubling, cap, deterministic jitter) and the deadline discipline
of :func:`retry_call` are pinned here once for all of them.
"""

import itertools

import pytest

from repro.core.retry import BackoffPolicy, retry_call


class TestBackoffPolicy:
    def test_delays_double_then_cap(self):
        policy = BackoffPolicy(base_seconds=0.1, cap_seconds=0.4, jitter=0.0)
        assert [policy.delay(n) for n in (1, 2, 3, 4, 5)] == [
            0.1, 0.2, 0.4, 0.4, 0.4,
        ]

    def test_jitter_only_shortens_within_its_fraction(self):
        policy = BackoffPolicy(base_seconds=0.1, cap_seconds=1.0, jitter=0.25)
        for attempt in range(1, 6):
            raw = min(0.1 * 2 ** (attempt - 1), 1.0)
            got = policy.delay(attempt, salt="s")
            assert raw * 0.75 <= got <= raw

    def test_jitter_is_deterministic_per_salt_and_attempt(self):
        policy = BackoffPolicy()
        assert policy.delay(1, salt="a") == policy.delay(1, salt="a")
        # distinct salts desynchronize (no thundering herd)
        assert policy.delay(1, salt="a") != policy.delay(1, salt="b")

    def test_delays_generator_matches_indexed_delay(self):
        policy = BackoffPolicy(base_seconds=0.01, cap_seconds=0.08)
        stream = list(itertools.islice(policy.delays(salt="x"), 6))
        assert stream == [policy.delay(n, salt="x") for n in range(1, 7)]

    def test_zero_base_stays_zero(self):
        policy = BackoffPolicy(base_seconds=0.0, cap_seconds=1.0)
        assert policy.delay(3, salt="s") == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"base_seconds": -0.1},
        {"cap_seconds": -1.0},
        {"jitter": -0.1},
        {"jitter": 1.5},
    ])
    def test_invalid_policies_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError, match="attempt"):
            BackoffPolicy().delay(0)


class TestRetryCall:
    def _flaky(self, failures, exc=OSError("boom")):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise exc
            return calls["n"]

        return fn, calls

    def test_transient_failures_are_absorbed(self):
        fn, calls = self._flaky(2)
        slept = []
        policy = BackoffPolicy(max_retries=2, base_seconds=0.01, jitter=0.0)
        result = retry_call(fn, policy=policy, sleep=slept.append)
        assert result == 3
        assert calls["n"] == 3
        assert slept == [0.01, 0.02]

    def test_budget_exhaustion_reraises_the_last_failure(self):
        fn, calls = self._flaky(5, exc=OSError("still down"))
        policy = BackoffPolicy(max_retries=2, base_seconds=0.0)
        with pytest.raises(OSError, match="still down"):
            retry_call(fn, policy=policy, sleep=lambda _: None)
        assert calls["n"] == 3  # first call + two retries

    def test_unlisted_exceptions_pass_straight_through(self):
        def fn():
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            retry_call(
                fn, policy=BackoffPolicy(), retry_on=(OSError,),
                sleep=lambda _: None,
            )

    def test_deadline_is_never_outlived(self):
        # the backoff sleep would cross the deadline → no sleep, re-raise
        fn, calls = self._flaky(5)
        clock = {"now": 10.0}
        slept = []
        policy = BackoffPolicy(max_retries=3, base_seconds=0.5, jitter=0.0)
        with pytest.raises(OSError):
            retry_call(
                fn, policy=policy, deadline=10.2,
                clock=lambda: clock["now"], sleep=slept.append,
            )
        assert calls["n"] == 1
        assert slept == []

    def test_on_retry_observes_each_attempt(self):
        fn, _ = self._flaky(2)
        seen = []
        retry_call(
            fn,
            policy=BackoffPolicy(max_retries=2, base_seconds=0.0),
            sleep=lambda _: None,
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
        )
        assert seen == [(1, "boom"), (2, "boom")]
