"""Edge-case tests for the permission algorithms on hand-built automata."""

from repro.automata.buchi import BuchiAutomaton
from repro.automata.reduce import empty_automaton
from repro.core.permission import permits_ndfs, permits_scc


def both(contract, query, vocabulary):
    ndfs = permits_ndfs(contract, query, frozenset(vocabulary))
    scc = permits_scc(contract, query, frozenset(vocabulary))
    assert ndfs == scc
    return ndfs


class TestDegenerateAutomata:
    def test_empty_contract(self):
        query = BuchiAutomaton.make(0, [(0, "true", 0)], final=[0])
        assert not both(empty_automaton(), query, {"a"})

    def test_empty_query(self):
        contract = BuchiAutomaton.make(0, [(0, "true", 0)], final=[0])
        assert not both(contract, empty_automaton(), {"a"})

    def test_both_trivial_accepting(self):
        contract = BuchiAutomaton.make(0, [(0, "true", 0)], final=[0])
        query = BuchiAutomaton.make(0, [(0, "true", 0)], final=[0])
        assert both(contract, query, set())

    def test_initial_state_is_knot(self):
        contract = BuchiAutomaton.make(0, [(0, "a", 0)], final=[0])
        query = BuchiAutomaton.make(0, [(0, "a", 0)], final=[0])
        assert both(contract, query, {"a"})

    def test_contract_final_off_query_cycle(self):
        # contract accepts only through state 1; query knots at its own
        # initial — the simultaneous cycle must include a contract-final
        # pair, which requires pairing with contract state 1.
        contract = BuchiAutomaton.make(
            0, [(0, "a", 1), (1, "b", 0)], final=[1]
        )
        query = BuchiAutomaton.make(0, [(0, "true", 0)], final=[0])
        assert both(contract, query, {"a", "b"})

    def test_query_requires_impossible_alternation(self):
        contract = BuchiAutomaton.make(0, [(0, "a", 0)], final=[0])
        query = BuchiAutomaton.make(
            0, [(0, "a", 1), (1, "!a", 0)], final=[0]
        )
        assert not both(contract, query, {"a"})


class TestVocabularyEdges:
    def test_true_query_label_on_foreign_contract(self):
        """A query whose labels are all 'true' is permitted by any
        non-empty contract regardless of vocabularies."""
        contract = BuchiAutomaton.make(
            0, [(0, "weirdEvent", 0)], final=[0]
        )
        query = BuchiAutomaton.make(0, [(0, "true", 0)], final=[0])
        assert both(contract, query, {"weirdEvent"})

    def test_empty_vocabulary_blocks_constrained_queries(self):
        contract = BuchiAutomaton.make(0, [(0, "true", 0)], final=[0])
        query = BuchiAutomaton.make(0, [(0, "a", 0)], final=[0])
        assert not both(contract, query, set())

    def test_vocabulary_superset_of_labels(self):
        """The vocabulary may cite events no contract label constrains;
        queries over those events pair with any label."""
        contract = BuchiAutomaton.make(0, [(0, "a", 0)], final=[0])
        query = BuchiAutomaton.make(0, [(0, "b", 0)], final=[0])
        assert not both(contract, query, {"a"})
        assert both(contract, query, {"a", "b"})

    def test_conflicting_but_out_of_vocabulary(self):
        contract = BuchiAutomaton.make(0, [(0, "!b", 0)], final=[0])
        query = BuchiAutomaton.make(0, [(0, "b", 0)], final=[0])
        # b is in the vocabulary, but every contract label conflicts
        assert not both(contract, query, {"b"})


class TestSeedEdgeCases:
    def test_seeds_with_unreachable_final(self):
        contract = BuchiAutomaton.make(
            0, [(0, "a", 0), (1, "b", 1)], final=[0, 1]
        )
        query = BuchiAutomaton.make(0, [(0, "a", 0)], final=[0])
        assert permits_ndfs(contract, query, frozenset({"a", "b"}),
                            use_seeds=True)
        assert permits_ndfs(contract, query, frozenset({"a", "b"}),
                            use_seeds=False)

    def test_explicit_empty_seeds_mean_no_knots(self):
        contract = BuchiAutomaton.make(0, [(0, "a", 0)], final=[0])
        query = BuchiAutomaton.make(0, [(0, "a", 0)], final=[0])
        # an (incorrectly) empty seed set suppresses every knot — this
        # documents that callers must pass seeds for the *same* automaton
        assert not permits_ndfs(
            contract, query, frozenset({"a"}), seeds=frozenset(),
            use_seeds=True,
        )
