"""Unit tests for execution budgets and their permission-algorithm hooks.

A cut-short search must *raise* — never return a possibly-wrong boolean
(the budgeted analogue of Algorithm 2's soundness).
"""

import pytest

from repro.automata.ltl2ba import translate
from repro.core.budget import (
    DEFAULT_CHECK_INTERVAL,
    Deadline,
    ExecutionBudget,
    StepBudget,
)
from repro.core.permission import (
    PermissionStats,
    permits,
    permits_ndfs,
    permits_scc,
)
from repro.errors import BudgetExceededError
from repro.ltl.ast import conj
from repro.ltl.parser import parse


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestDeadline:
    def test_after_and_remaining(self):
        clock = FakeClock(10.0)
        deadline = Deadline.after(5.0, clock=clock)
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(5.0)
        clock.now = 15.0
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_zero_deadline_is_immediately_expired(self):
        clock = FakeClock(1.0)
        assert Deadline.after(0.0, clock=clock).expired()

    def test_earliest_picks_the_tighter(self):
        clock = FakeClock(0.0)
        near = Deadline.after(1.0, clock=clock)
        far = Deadline.after(9.0, clock=clock)
        assert Deadline.earliest(near, far) is near
        assert Deadline.earliest(None, far) is far
        assert Deadline.earliest(None, None) is None

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)


class TestStepBudget:
    def test_exceeded(self):
        budget = StepBudget(10)
        assert not budget.exceeded(10)
        assert budget.exceeded(11)

    def test_requires_positive_cap(self):
        with pytest.raises(ValueError):
            StepBudget(0)


class TestExecutionBudget:
    def test_unbounded_charge_is_free(self):
        budget = ExecutionBudget()
        assert not budget.bounded
        for steps in range(1, 1000):
            budget.charge(steps)
        assert not budget.exhausted()

    def test_step_cap_is_exact(self):
        budget = ExecutionBudget(steps=StepBudget(5))
        for steps in range(1, 6):
            budget.charge(steps)
        with pytest.raises(BudgetExceededError) as exc:
            budget.charge(6)
        assert exc.value.reason == "steps"
        assert budget.exhausted_reason == "steps"
        assert budget.exhausted()

    def test_expired_deadline_caught_at_first_charge(self):
        clock = FakeClock(0.0)
        deadline = Deadline.after(1.0, clock=clock)
        budget = ExecutionBudget(deadline=deadline, check_interval=4)
        clock.now = 2.0
        with pytest.raises(BudgetExceededError) as exc:
            budget.charge(1)
        assert exc.value.reason == "deadline"
        assert budget.exhausted_reason == "deadline"

    def test_deadline_reads_spaced_by_interval(self):
        clock = FakeClock(0.0)
        deadline = Deadline.after(1.0, clock=clock)
        budget = ExecutionBudget(deadline=deadline, check_interval=4)
        budget.charge(1)   # clock read: still before the deadline
        clock.now = 2.0    # expires between check points
        budget.charge(2)
        budget.charge(3)
        budget.charge(4)   # steps < 1 + interval: no clock read yet
        with pytest.raises(BudgetExceededError):
            budget.charge(5)

    def test_exhausted_precheck_does_not_raise(self):
        clock = FakeClock(0.0)
        budget = ExecutionBudget(deadline=Deadline.after(1.0, clock=clock))
        assert not budget.exhausted()
        clock.now = 5.0
        assert budget.exhausted()

    def test_default_check_interval(self):
        assert ExecutionBudget().check_interval == DEFAULT_CHECK_INTERVAL


def _f_conjunction(k: int):
    """F ev0 && ... && F ev{k-1}: a 2^k-state BA — enough search space
    that a small step budget trips mid-search."""
    return translate(conj([parse(f"F ev{i}") for i in range(k)]))


class TestBudgetedPermission:
    @pytest.fixture(scope="class")
    def contract(self):
        return _f_conjunction(4)

    @pytest.fixture(scope="class")
    def query(self):
        # cites an event the contract never mentions: the search is
        # exhaustive and concludes False
        return translate(conj([parse(f"F ev{i}") for i in range(5)]))

    def test_unbudgeted_answer(self, contract, query):
        assert permits_ndfs(contract, query) is False
        assert permits_scc(contract, query) is False

    def test_ndfs_step_budget_raises_not_lies(self, contract, query):
        stats = PermissionStats()
        with pytest.raises(BudgetExceededError):
            permits_ndfs(
                contract, query, stats=stats,
                budget=ExecutionBudget(steps=StepBudget(3)),
            )
        assert stats.budget_exhausted
        assert stats.search_steps >= 3

    def test_scc_step_budget_raises_not_lies(self, contract, query):
        stats = PermissionStats()
        with pytest.raises(BudgetExceededError):
            permits_scc(
                contract, query, stats=stats,
                budget=ExecutionBudget(steps=StepBudget(3)),
            )
        assert stats.budget_exhausted

    def test_ndfs_deadline_raises_mid_search(self, contract, query):
        clock = FakeClock(0.0)
        deadline = Deadline.after(0.5, clock=clock)

        class AdvancingClock:
            def __call__(inner):
                clock.now += 0.1  # every read moves past the deadline fast
                return clock.now

        budget = ExecutionBudget(
            deadline=Deadline(at=deadline.at, clock=AdvancingClock()),
            check_interval=1,
        )
        with pytest.raises(BudgetExceededError) as exc:
            permits_ndfs(contract, query, budget=budget)
        assert exc.value.reason == "deadline"

    def test_generous_budget_changes_nothing(self, contract, query):
        stats = PermissionStats()
        outcome = permits(
            contract, query, stats=stats,
            budget=ExecutionBudget(steps=StepBudget(10_000_000)),
        )
        assert outcome is False
        assert not stats.budget_exhausted

    def test_budget_on_permitting_pair(self):
        contract = _f_conjunction(3)
        query = translate(parse("F ev0"))
        assert permits(
            contract, query,
            budget=ExecutionBudget(steps=StepBudget(10_000_000)),
        ) is True
