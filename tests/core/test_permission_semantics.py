"""Semantic cross-validation of permission against Definition 5/6.

Two consequences of the formal semantics give independent oracles:

* when the query's variables are contained in the contract's vocabulary,
  every run in a projection class agrees on all variables either formula
  can see, so permission collapses to plain satisfiability of the
  conjunction (Definition 6's intersection is a union of whole
  projection classes);
* when the query *requires* an event the contract never cites (e.g. an
  un-negated ``F x``), no contract-vocabulary sequence can supply it, so
  permission must fail — the Example 4 principle, as a law.

These oracles exercise the permission implementation through a
completely different pipeline (formula conjunction + emptiness), making
them among the strongest correctness checks in the suite.
"""

from hypothesis import assume, given, settings

from repro.automata.ltl2ba import translate
from repro.core.permission import permits
from repro.ltl.ast import And, Finally, Prop
from repro.ltl.equivalence import is_satisfiable

from ..strategies import formulas


class TestContainedVocabularyCollapse:
    @given(formulas(max_depth=3), formulas(max_depth=3))
    @settings(max_examples=150, deadline=None)
    def test_permission_equals_joint_satisfiability(
        self, contract_formula, query_formula
    ):
        vocabulary = contract_formula.variables()
        assume(query_formula.variables() <= vocabulary)
        contract = translate(contract_formula)
        query = translate(query_formula)
        assert permits(contract, query, vocabulary) == is_satisfiable(
            And(contract_formula, query_formula)
        )

    def test_worked_instance(self):
        from repro.ltl.parser import parse

        contract_formula = parse("G(a -> F b)")
        query_formula = parse("F(a && F b)")
        contract = translate(contract_formula)
        query = translate(query_formula)
        assert permits(contract, query, frozenset({"a", "b"}))
        assert is_satisfiable(And(contract_formula, query_formula))


class TestUncitedRequiredEvent:
    @given(formulas(max_depth=3))
    @settings(max_examples=100, deadline=None)
    def test_required_alien_event_never_permitted(self, contract_formula):
        """Example 4 as a law: a query demanding an event outside the
        contract vocabulary is never permitted."""
        contract = translate(contract_formula)
        vocabulary = contract_formula.variables()
        alien_query = translate(Finally(Prop("alienEvent")))
        assert not permits(contract, alien_query, vocabulary)

    @given(formulas(max_depth=3))
    @settings(max_examples=100, deadline=None)
    def test_alien_event_conjunct_blocks_otherwise_good_query(
        self, contract_formula
    ):
        assume(contract_formula.variables())
        contract = translate(contract_formula)
        vocabulary = contract_formula.variables()
        some_event = sorted(vocabulary)[0]
        query = translate(
            And(Finally(Prop(some_event)), Finally(Prop("alienEvent")))
        )
        assert not permits(contract, query, vocabulary)
