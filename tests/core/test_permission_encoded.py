"""Differential tests: encoded deciders vs. their object twins.

The encoded hot loops (:func:`permits_ndfs_encoded` /
:func:`permits_scc_encoded`) claim *bit-identical* behavior — same
verdict, same :class:`PermissionStats`, same budget trip point — as the
object deciders they replace.  These tests re-prove that claim on the
paper fixtures, on random LTL formulas, and on random non-LTL-shaped
automata, including under a step budget.
"""

import dataclasses

import pytest
from hypothesis import given, settings

from repro.automata.buchi import BuchiAutomaton
from repro.automata.encode import bind_query, encode_automaton
from repro.automata.ltl2ba import translate
from repro.core.budget import ExecutionBudget, StepBudget
from repro.core.permission import (
    PermissionStats,
    permits_encoded,
    permits_ndfs,
    permits_ndfs_encoded,
    permits_scc,
    permits_scc_encoded,
)
from repro.core.seeds import compute_seeds, compute_seeds_mask
from repro.errors import BudgetExceededError
from repro.ltl.parser import parse

from ..strategies import formulas


def ba_of(text: str) -> BuchiAutomaton:
    return translate(parse(text))


PAIRS = [
    ("G(a -> F b)", "F b"),
    ("G(a -> F b)", "F(b && F a)"),
    ("(a U b) && G(c -> F a)", "F c"),
    ("F a", "F(a && F c)"),
    ("G a", "G(a && b)"),
]


def assert_twins_agree(contract, query, *, use_seeds=True):
    """Run every object/encoded decider pair and demand identical
    verdicts and identical stats, field for field."""
    enc_c = encode_automaton(contract)
    enc_q = encode_automaton(query)

    for use in (use_seeds,):
        s_obj, s_enc = PermissionStats(), PermissionStats()
        got_obj = permits_ndfs(contract, query, use_seeds=use, stats=s_obj)
        got_enc = permits_ndfs_encoded(enc_c, enc_q, use_seeds=use, stats=s_enc)
        assert got_obj == got_enc
        assert dataclasses.asdict(s_obj) == dataclasses.asdict(s_enc)

    s_obj, s_enc = PermissionStats(), PermissionStats()
    got_obj = permits_scc(contract, query, stats=s_obj)
    got_enc = permits_scc_encoded(enc_c, enc_q, stats=s_enc)
    assert got_obj == got_enc
    assert dataclasses.asdict(s_obj) == dataclasses.asdict(s_enc)
    return got_obj


class TestFixtureParity:
    @pytest.mark.parametrize("contract,query", PAIRS)
    def test_verdict_and_stats_identical(self, contract, query):
        assert_twins_agree(ba_of(contract), ba_of(query))

    @pytest.mark.parametrize("contract,query", PAIRS)
    def test_parity_without_seed_filter(self, contract, query):
        assert_twins_agree(ba_of(contract), ba_of(query), use_seeds=False)

    def test_airfare_outcomes(self, airfare_contracts):
        q = ba_of("F(missedFlight && F(refund || dateChange))")
        enc_q = encode_automaton(q)
        expected = {"Ticket A": True, "Ticket B": True, "Ticket C": False}
        for name, want in expected.items():
            c = airfare_contracts[name]
            enc_c = encode_automaton(c.ba, c.vocabulary)
            assert permits_ndfs_encoded(enc_c, enc_q) is want
            assert permits_scc_encoded(enc_c, enc_q) is want


class TestStepParity:
    """Satellite 3: after the memoization fix, the SCC decider charges
    each unique product pair once — exactly like the NDFS outer search —
    so on a fully explored (non-permitted) product both deciders report
    the same ``pairs_visited``."""

    def test_ndfs_scc_pairs_visited_agree_when_not_permitted(self):
        contract = ba_of("G(a -> F b)")
        query = ba_of("F(b && F c)")  # c outside the contract vocabulary
        s_ndfs, s_scc = PermissionStats(), PermissionStats()
        assert not permits_ndfs(contract, query, use_seeds=False, stats=s_ndfs)
        assert not permits_scc(contract, query, stats=s_scc)
        assert s_ndfs.pairs_visited == s_scc.pairs_visited

    def test_encoded_scc_charges_each_pair_once(self):
        contract = encode_automaton(ba_of("G(a -> F b)"))
        query = encode_automaton(ba_of("F(b && F c)"))
        stats = PermissionStats()
        assert not permits_scc_encoded(contract, query, stats=stats)
        # with triple-charging, pairs_visited would exceed the product
        assert stats.pairs_visited <= contract.num_states * query.num_states


class TestBudgetParity:
    def test_budget_trips_at_identical_step(self):
        """An encoded check under a step budget must exhaust at exactly
        the object check's trip point — MAYBE degradation must not
        depend on which decider ran."""
        contract, query = ba_of("G(a -> F b)"), ba_of("G F b")
        enc_c, enc_q = encode_automaton(contract), encode_automaton(query)

        probe = PermissionStats()
        permits_ndfs(contract, query, use_seeds=False, stats=probe)
        assert probe.search_steps > 1
        cap = probe.search_steps - 1

        for run in (
            lambda b, s: permits_ndfs(
                contract, query, use_seeds=False, stats=s, budget=b
            ),
            lambda b, s: permits_ndfs_encoded(
                enc_c, enc_q, use_seeds=False, stats=s, budget=b
            ),
        ):
            stats = PermissionStats()
            budget = ExecutionBudget(steps=StepBudget(cap))
            with pytest.raises(BudgetExceededError):
                run(budget, stats)
            assert stats.budget_exhausted
            assert budget.exhausted_reason == "steps"
            assert stats.search_steps == cap + 1

    def test_scc_budget_parity(self):
        contract, query = ba_of("G(a -> F b)"), ba_of("G F b")
        enc_c, enc_q = encode_automaton(contract), encode_automaton(query)
        s_obj, s_enc = PermissionStats(), PermissionStats()
        budget_obj = ExecutionBudget(steps=StepBudget(2))
        budget_enc = ExecutionBudget(steps=StepBudget(2))
        with pytest.raises(BudgetExceededError):
            permits_scc(contract, query, stats=s_obj, budget=budget_obj)
        with pytest.raises(BudgetExceededError):
            permits_scc_encoded(enc_c, enc_q, stats=s_enc, budget=budget_enc)
        assert dataclasses.asdict(s_obj) == dataclasses.asdict(s_enc)


class TestPrecomputedArtifacts:
    def test_binding_and_seeds_mask_reuse(self):
        """Passing precomputed binding/seeds_mask (the broker's fast
        path) answers exactly like computing them on the fly."""
        contract, query = ba_of("G(a -> F b)"), ba_of("F b")
        enc_c, enc_q = encode_automaton(contract), encode_automaton(query)
        binding = bind_query(enc_c, enc_q)
        mask = enc_c.state_mask(compute_seeds(contract))
        assert mask == compute_seeds_mask(enc_c)
        assert permits_ndfs_encoded(
            enc_c, enc_q, binding, seeds_mask=mask
        ) == permits_ndfs_encoded(enc_c, enc_q)

    def test_dispatcher(self):
        enc_c = encode_automaton(ba_of("G(a -> F b)"))
        enc_q = encode_automaton(ba_of("F b"))
        assert permits_encoded(enc_c, enc_q, algorithm="ndfs")
        assert permits_encoded(enc_c, enc_q, algorithm="scc")
        with pytest.raises(ValueError):
            permits_encoded(enc_c, enc_q, algorithm="bogus")


class TestPropertyParity:
    @settings(max_examples=40, deadline=None)
    @given(spec=formulas(max_depth=3), q=formulas(max_depth=3))
    def test_random_formulas_bit_identical(self, spec, q):
        contract, query = translate(spec), translate(q)
        assert_twins_agree(contract, query)
