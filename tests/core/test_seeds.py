"""Tests for the §6.2.4 seed precomputation."""

from repro.automata.buchi import BuchiAutomaton
from repro.automata.ltl2ba import translate
from repro.core.seeds import compute_seeds
from repro.ltl.parser import parse


class TestComputeSeeds:
    def test_states_on_final_cycle(self):
        # 0 -> 1 <-> 2(final); 3 reachable, no cycle
        ba = BuchiAutomaton.make(
            0,
            [(0, "a", 1), (1, "b", 2), (2, "c", 1), (0, "d", 3)],
            final=[2],
        )
        assert compute_seeds(ba) == {1, 2}

    def test_self_loop_final(self):
        ba = BuchiAutomaton.make(0, [(0, "a", 1), (1, "t", 1)], final=[1])
        assert compute_seeds(ba) == {1}

    def test_cycle_without_final_not_seeded(self):
        ba = BuchiAutomaton.make(
            0, [(0, "a", 1), (1, "b", 0), (0, "c", 2), (2, "t", 2)],
            final=[2],
        )
        assert compute_seeds(ba) == {2}

    def test_unreachable_cycles_ignored(self):
        ba = BuchiAutomaton.make(
            0,
            [(0, "t", 0), (5, "a", 6), (6, "a", 5)],
            final=[0, 5],
        )
        assert compute_seeds(ba) == {0}

    def test_empty_language_has_no_seeds(self):
        ba = BuchiAutomaton.make(0, [(0, "a", 1)], final=[1])
        assert compute_seeds(ba) == frozenset()

    def test_translator_output_seeds_subset_of_states(self):
        ba = translate(parse("G(a -> F b)"))
        seeds = compute_seeds(ba)
        assert seeds <= ba.states
        assert seeds  # a satisfiable liveness formula has accepting cycles
