"""Tests for simultaneous-lasso witness extraction."""

from hypothesis import given, settings

from repro.automata.ltl2ba import translate
from repro.core.permission import find_witness, permits
from repro.ltl.parser import parse
from repro.ltl.semantics import satisfies

from ..strategies import formulas


class TestAirfareWitness:
    QUERY = "F(missedFlight && F(refund || dateChange))"

    def test_witness_exists_iff_permitted(self, airfare_contracts):
        q = translate(parse(self.QUERY))
        for name, contract in airfare_contracts.items():
            witness = find_witness(contract.ba, q, contract.vocabulary)
            permitted = permits(contract.ba, q, contract.vocabulary)
            assert (witness is not None) == permitted, name

    def test_witness_run_accepted_by_both(self, airfare_contracts):
        contract = airfare_contracts["Ticket A"]
        q = translate(parse(self.QUERY))
        witness = find_witness(contract.ba, q, contract.vocabulary)
        run = witness.to_run()
        assert contract.ba.accepts(run)
        assert q.accepts(run)

    def test_witness_run_within_vocabulary(self, airfare_contracts):
        """Definition 1(b): the witness uses only contract events."""
        contract = airfare_contracts["Ticket A"]
        q = translate(parse(self.QUERY))
        run = find_witness(contract.ba, q, contract.vocabulary).to_run()
        assert run.variables() <= contract.vocabulary

    def test_witness_satisfies_query_formula(self, airfare_contracts):
        contract = airfare_contracts["Ticket B"]
        q = translate(parse(self.QUERY))
        run = find_witness(contract.ba, q, contract.vocabulary).to_run()
        assert satisfies(run, parse(self.QUERY))

    def test_witness_printable(self, airfare_contracts):
        contract = airfare_contracts["Ticket A"]
        q = translate(parse(self.QUERY))
        witness = find_witness(contract.ba, q, contract.vocabulary)
        text = str(witness)
        assert "prefix[" in text and "cycle[" in text

    def test_combined_labels_satisfiable(self, airfare_contracts):
        contract = airfare_contracts["Ticket A"]
        q = translate(parse(self.QUERY))
        witness = find_witness(contract.ba, q, contract.vocabulary)
        for step in witness.prefix + witness.cycle:
            assert step.combined_label is not None

    def test_cycle_nonempty(self, airfare_contracts):
        contract = airfare_contracts["Ticket A"]
        q = translate(parse(self.QUERY))
        witness = find_witness(contract.ba, q, contract.vocabulary)
        assert len(witness.cycle) >= 1


class TestWitnessProperty:
    @given(formulas(max_depth=3), formulas(max_depth=3))
    @settings(max_examples=100, deadline=None)
    def test_witness_is_sound_evidence(self, contract_formula, query_formula):
        """Whenever a witness exists, its run really is (a) allowed by the
        contract, (b) over contract events only, (c) a query model —
        exactly clauses (a)-(c) of Definition 1."""
        contract = translate(contract_formula)
        q = translate(query_formula)
        vocabulary = contract_formula.variables()
        witness = find_witness(contract, q, vocabulary)
        assert (witness is not None) == permits(contract, q, vocabulary)
        if witness is not None:
            run = witness.to_run()
            assert contract.accepts(run)                  # (a)
            assert run.variables() <= vocabulary          # (b)
            assert q.accepts(run)                         # (c)
            assert satisfies(run, contract_formula)
            assert satisfies(run, query_formula)
