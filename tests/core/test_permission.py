"""Tests for the permission algorithms (Algorithm 2 and the SCC variant).

The airfare fixtures assert the paper's Example 2/4/5 outcomes verbatim;
property tests check the two deciders agree and that permission reduces
to satisfiability on the trivial query (the Theorem 6 reduction).
"""

import pytest
from hypothesis import given, settings

from repro.automata.buchi import BuchiAutomaton
from repro.automata.ltl2ba import translate
from repro.core.permission import (
    PermissionStats,
    permits,
    permits_ndfs,
    permits_scc,
)
from repro.ltl.parser import parse

from ..strategies import formulas


def query(text: str) -> BuchiAutomaton:
    return translate(parse(text))


class TestPaperOutcomes:
    """Example 2: which tickets permit which queries."""

    QUERY = "F(missedFlight && F(refund || dateChange))"

    def test_ticket_a_permits(self, airfare_contracts):
        c = airfare_contracts["Ticket A"]
        assert permits(c.ba, query(self.QUERY), c.vocabulary)

    def test_ticket_b_permits(self, airfare_contracts):
        c = airfare_contracts["Ticket B"]
        assert permits(c.ba, query(self.QUERY), c.vocabulary)

    def test_ticket_c_does_not_permit(self, airfare_contracts):
        c = airfare_contracts["Ticket C"]
        assert not permits(c.ba, query(self.QUERY), c.vocabulary)

    def test_underspecified_contract_not_returned(self, airfare_contracts):
        """Example 4 (Q2): Ticket A never cites class upgrades, so a query
        about them must not be permitted — the crux of Definition 1."""
        c = airfare_contracts["Ticket A"]
        q2 = query("F(dateChange && F classUpgrade)")
        assert not permits(c.ba, q2, c.vocabulary)

    def test_partially_specified_disjunction_returned(self, airfare_contracts):
        """§2.1 (Q3): Ticket B permits 'class upgrade OR refund after a
        date change' through its refund branch."""
        c = airfare_contracts["Ticket B"]
        q3 = query("F(dateChange && F(classUpgrade || refund))")
        assert permits(c.ba, q3, c.vocabulary)

    def test_ticket_a_rejects_q3(self, airfare_contracts):
        c = airfare_contracts["Ticket A"]
        q3 = query("F(dateChange && F(classUpgrade || refund))")
        assert not permits(c.ba, q3, c.vocabulary)


class TestVocabularySemantics:
    def test_vocabulary_defaults_to_ba_events(self):
        contract = translate(parse("G(a -> F b)"))
        q = query("F b")
        assert permits(contract, q) == permits(
            contract, q, frozenset({"a", "b"})
        )

    def test_explicit_vocabulary_can_widen(self):
        """A contract whose formula cites an event its reduced BA no
        longer mentions still permits queries about that event."""
        # G(c || true) reduces away c, but the *specification* cites it.
        contract = translate(parse("F a"))
        q = query("F(a && F c)")
        assert not permits(contract, q, frozenset({"a"}))
        assert permits(contract, q, frozenset({"a", "c"}))


class TestTrivialQueries:
    @given(formulas(max_depth=3))
    @settings(max_examples=100, deadline=None)
    def test_true_query_iff_satisfiable(self, formula):
        """Theorem 6's reduction: C(phi) permits 'true' iff phi is
        satisfiable."""
        contract = translate(formula)
        q = query("true")
        assert permits(contract, q, formula.variables()) == (
            not contract.is_empty()
        )

    def test_false_query_never_permitted(self):
        contract = translate(parse("G a"))
        assert not permits(contract, query("false"), frozenset({"a"}))

    def test_empty_contract_permits_nothing(self):
        contract = translate(parse("false"))
        assert not permits(contract, query("true"), frozenset())


class TestAlgorithmsAgree:
    @given(formulas(max_depth=3), formulas(max_depth=3))
    @settings(max_examples=150, deadline=None)
    def test_ndfs_equals_scc(self, contract_formula, query_formula):
        contract = translate(contract_formula)
        q = translate(query_formula)
        vocabulary = contract_formula.variables()
        assert permits_ndfs(contract, q, vocabulary) == permits_scc(
            contract, q, vocabulary
        )

    @given(formulas(max_depth=3), formulas(max_depth=3))
    @settings(max_examples=150, deadline=None)
    def test_seeds_do_not_change_result(self, contract_formula, query_formula):
        contract = translate(contract_formula)
        q = translate(query_formula)
        vocabulary = contract_formula.variables()
        assert permits_ndfs(
            contract, q, vocabulary, use_seeds=True
        ) == permits_ndfs(contract, q, vocabulary, use_seeds=False)


class TestStats:
    def test_counters_filled(self, airfare_contracts):
        c = airfare_contracts["Ticket A"]
        stats = PermissionStats()
        outcome = permits(
            c.ba, query("F(missedFlight && F refund)"), c.vocabulary,
            stats=stats,
        )
        assert stats.result == outcome
        assert stats.pairs_visited > 0
        assert stats.cycle_searches >= 1

    def test_seed_skips_counted(self):
        # contract: 'a' then deadlock on final — final not on a cycle in
        # the live part... use a contract where some query-final pair has
        # a non-seed contract state.
        contract = BuchiAutomaton.make(
            0, [(0, "a", 1), (1, "true", 1), (0, "b", 2), (2, "c", 1)],
            final=[1],
        )
        q = BuchiAutomaton.make(
            0, [(0, "true", 0)], final=[0]
        )
        stats = PermissionStats()
        permits_ndfs(contract, q, frozenset({"a", "b", "c"}), stats=stats)
        assert stats.pairs_visited >= 1


class TestDispatch:
    def test_unknown_algorithm_rejected(self):
        contract = translate(parse("G a"))
        with pytest.raises(ValueError):
            permits(contract, query("true"), frozenset({"a"}),
                    algorithm="magic")

    def test_scc_dispatch(self):
        contract = translate(parse("G a"))
        assert permits(contract, query("G a"), frozenset({"a"}),
                       algorithm="scc")
