"""The scripted chaos drills, their CLI entry point, and the recovery
metrics every healed failure must leave behind."""

import json

import pytest

from repro.broker.journal import JOURNAL_FILE, open_database
from repro.check.chaos import run_chaos_drills
from repro.cli import main


class TestDrills:
    def test_all_drills_pass(self):
        report = run_chaos_drills(mutations=6, stride=8)
        assert report.ok, report.summary()
        assert [r.name for r in report.results] == [
            "persist-crash", "journal-truncation",
            "replication-truncation", "quarantine",
            "dist-flap", "dist-partition", "dist-failover",
        ]
        for result in report.results:
            assert result.ok, result.describe()
            assert result.checks > 0
            assert "PASS" in result.describe()
        assert "7/7 drill(s) passed" in report.summary()

    def test_report_round_trips_as_json(self):
        report = run_chaos_drills(mutations=4, stride=32)
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["ok"] is True
        assert len(doc["drills"]) == 7
        assert all(d["checks"] > 0 for d in doc["drills"])

    def test_drill_selection_runs_only_the_named_drills(self):
        report = run_chaos_drills(drills=["dist-flap", "quarantine"])
        assert [r.name for r in report.results] == [
            "dist-flap", "quarantine",
        ]
        assert report.ok, report.summary()

    def test_unknown_drill_name_is_rejected(self):
        with pytest.raises(ValueError, match="unknown drill"):
            run_chaos_drills(drills=["no-such-drill"])


class TestCLI:
    def test_chaos_command_smoke(self, capsys):
        assert main(["chaos", "--mutations", "5", "--stride", "16"]) == 0
        out = capsys.readouterr().out
        assert "persist-crash" in out
        assert "journal-truncation" in out
        assert "replication-truncation" in out
        assert "quarantine" in out
        assert "dist-flap" in out
        assert "dist-partition" in out
        assert "dist-failover" in out
        assert "FAIL" not in out

    def test_chaos_command_drill_selection(self, capsys):
        assert main(["chaos", "--drills", "dist-failover"]) == 0
        out = capsys.readouterr().out
        assert "dist-failover" in out
        assert "persist-crash" not in out
        assert "1/1 drill(s) passed" in out

    def test_chaos_command_rejects_unknown_drill(self, capsys):
        assert main(["chaos", "--drills", "nope"]) == 1
        assert "unknown drill" in capsys.readouterr().err

    def test_chaos_command_json(self, capsys):
        assert main(
            ["chaos", "--mutations", "4", "--stride", "32", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True


class TestRecoveryMetrics:
    """Every recovery path must be visible in the metrics report —
    silent healing hides operational problems."""

    def _torn_db(self, tmp_path):
        from repro.broker.contract import ContractSpec
        from repro.ltl.parser import parse

        home = tmp_path / "db"
        db = open_database(home)
        for i in range(3):
            db.register(ContractSpec(
                name=f"c{i}", clauses=(parse(f"F a{i}"),), attributes={},
            ))
        db.journal.close()
        path = home / JOURNAL_FILE
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 5])  # tear the last record
        return home

    def test_torn_tail_recovery_is_counted(self, tmp_path):
        recovered = open_database(self._torn_db(tmp_path))
        assert recovered.metrics.counter_value("journal.torn_records") == 1
        assert recovered.metrics.counter_value("journal.replayed") == 2
        report = recovered.metrics_report()
        assert "journal.torn_records" in report
        assert "journal.replayed" in report

    def test_quarantine_and_retry_are_counted(self):
        from repro.broker.contract import ContractSpec
        from repro.broker.database import BrokerConfig, ContractDatabase
        from repro.broker.parallel import register_many
        from repro.ltl.parser import parse

        db = ContractDatabase(BrokerConfig(state_budget=4))
        pill = ContractSpec(
            name="pill",
            clauses=tuple(parse(f"F e{i}") for i in range(6)),
            attributes={},
        )
        register_many(db, [pill])
        db.config = BrokerConfig(state_budget=512)
        db.quarantine.retry(db)
        report = db.metrics_report()
        assert "register.quarantined" in report
        assert "register.quarantine_recovered" in report

    def test_query_pool_fallback_is_counted(self):
        from repro.broker.database import ContractDatabase
        from repro.broker.options import QueryOptions
        from repro.core import faults

        db = ContractDatabase()
        db.register("c0", ["F a"])
        faults.fail_at("query.pool", exc=RuntimeError("pool died"))
        db.query_many(["F a", "F b"], QueryOptions(workers=2))
        faults.reset()
        assert db.metrics.counter_value("query.pool_fallback") == 1
        assert "query.pool_fallback" in db.metrics_report()
