"""The fault-injection registry itself."""

import pytest

from repro.core import faults as faults_module
from repro.core.faults import FAULTS, FaultInjector, SimulatedCrash


class TestArming:
    def test_disarmed_hit_is_a_no_op(self):
        injector = FaultInjector()
        injector.hit("any.site")  # nothing armed, nothing raised
        assert not injector.active

    def test_default_action_is_simulated_crash(self):
        injector = FaultInjector()
        injector.fail_at("s")
        with pytest.raises(SimulatedCrash):
            injector.hit("s")

    def test_nth_counts_from_arming(self):
        injector = FaultInjector()
        injector.fail_at("s", nth=3, exc=OSError("boom"))
        injector.hit("s")
        injector.hit("s")
        with pytest.raises(OSError):
            injector.hit("s")
        injector.hit("s")  # the window is one hit wide by default

    def test_times_widens_the_window(self):
        injector = FaultInjector()
        injector.fail_at("s", nth=2, times=2, exc=OSError("boom"))
        injector.hit("s")
        for _ in range(2):
            with pytest.raises(OSError):
                injector.hit("s")
        injector.hit("s")  # past the window

    def test_sites_are_independent(self):
        injector = FaultInjector()
        injector.fail_at("a", exc=OSError("boom"))
        injector.hit("b")
        with pytest.raises(OSError):
            injector.hit("a")

    def test_action_receives_context(self):
        injector = FaultInjector()
        seen = {}
        injector.fail_at("s", action=lambda **ctx: seen.update(ctx))
        injector.hit("s", filename="x.json", attempt=2)
        assert seen == {"filename": "x.json", "attempt": 2}

    def test_delay_then_exception_order(self):
        import time

        injector = FaultInjector()
        injector.fail_at("s", delay=0.01, exc=OSError("late"))
        start = time.perf_counter()
        with pytest.raises(OSError):
            injector.hit("s")
        assert time.perf_counter() - start >= 0.01

    def test_invalid_arming_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.fail_at("s", nth=0)
        with pytest.raises(ValueError):
            injector.fail_at("s", times=0)


class TestIntrospection:
    def test_report_counts_hits_and_firings(self):
        injector = FaultInjector()
        injector.fail_at("s", nth=2, exc=OSError("boom"))
        injector.hit("s")
        with pytest.raises(OSError):
            injector.hit("s")
        report = injector.report()
        assert report.armed == 1
        assert report.hits["s"] == 2
        assert report.fired["s"] == 1

    def test_armed_reflects_spent_windows(self):
        injector = FaultInjector()
        injector.fail_at("s", exc=OSError("boom"))
        assert injector.armed("s")
        with pytest.raises(OSError):
            injector.hit("s")
        assert not injector.armed("s")  # fired out

    def test_reset_disarms(self):
        injector = FaultInjector()
        injector.fail_at("s")
        injector.reset()
        injector.hit("s")
        assert not injector.active
        assert injector.hits("s") == 0


class TestModuleLevelConvenience:
    def test_module_functions_drive_the_default_injector(self):
        faults_module.fail_at("conv.site", exc=OSError("boom"))
        assert FAULTS.active
        with pytest.raises(OSError):
            faults_module.hit("conv.site")
        faults_module.reset()
        assert not FAULTS.active

    def test_crash_at_is_a_simulated_crash(self):
        faults_module.crash_at("conv.site")
        with pytest.raises(SimulatedCrash):
            faults_module.hit("conv.site")

    def test_simulated_crash_evades_except_exception(self):
        faults_module.crash_at("conv.site")
        with pytest.raises(SimulatedCrash):
            try:
                faults_module.hit("conv.site")
            except Exception:  # the recovery path a crash must bypass
                pytest.fail("SimulatedCrash was swallowed by 'except Exception'")
