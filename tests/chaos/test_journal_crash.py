"""The crash-sim harness: kill-9 at every instant of a journal's life.

The crash-safety contract (docs/DEVELOPMENT.md invariant 10): a
mutation is acknowledged once its journal record is fsync'd, and a
crash at ANY instant recovers a database holding exactly the
acknowledged prefix — which reconverges to the full state when the
lost tail is re-applied.  This module simulates the crash by
truncating the journal at every byte boundary and by arming
SimulatedCrash at the journal's own seams.
"""

import pytest

from repro.broker.contract import ContractSpec
from repro.broker.journal import JOURNAL_FILE, open_database
from repro.broker.persist import save_database
from repro.core import faults
from repro.core.faults import SimulatedCrash
from repro.ltl.parser import parse


def _spec(i):
    return ContractSpec(
        name=f"c{i}", clauses=(parse(f"F a{i}"),), attributes={"slot": i}
    )


def _names(db):
    contracts = sorted(db.contracts(), key=lambda c: c.contract_id)
    return tuple(c.name for c in contracts)


def _mutation_script():
    """12 mutations: 10 registers with 2 deregisters in the middle, so
    the sweep proves prefix consistency over a *mixed* history, not
    just monotone growth."""
    ops = [("register", _spec(i)) for i in range(8)]
    ops.append(("deregister", 2))
    ops.append(("deregister", 5))
    ops.append(("register", _spec(8)))
    ops.append(("register", _spec(9)))
    return ops


def _apply(db, op):
    kind, payload = op
    if kind == "register":
        db.register(payload)
    else:
        db.deregister(payload)


def _expected_states(ops):
    """expected_states[k] = contract names after the first k mutations
    (ids are assigned densely in registration order and never reused)."""
    states = [()]
    live = {}
    next_id = 0
    for kind, payload in ops:
        if kind == "register":
            live[next_id] = payload.name
            next_id += 1
        else:
            del live[payload]
        states.append(tuple(name for _, name in sorted(live.items())))
    return states


@pytest.fixture(scope="module")
def acknowledged_journal(tmp_path_factory):
    """A journal holding the full 12-mutation history (no snapshot)."""
    source = tmp_path_factory.mktemp("journal-source") / "db"
    db = open_database(source)
    ops = _mutation_script()
    for op in ops:
        _apply(db, op)
    raw = (source / JOURNAL_FILE).read_bytes()
    return raw, ops


class TestByteBoundaryTruncation:
    def test_every_cut_recovers_the_acknowledged_prefix(
        self, acknowledged_journal, tmp_path
    ):
        """Truncate at EVERY byte boundary: the recovered database must
        hold exactly the mutations whose records survived complete, and
        re-applying the lost tail must reconverge to the full state."""
        raw, ops = acknowledged_journal
        states = _expected_states(ops)
        assert len(ops) >= 10
        reconverged = set()
        for cut in range(len(raw) + 1):
            prefix = raw[:cut]
            trial = tmp_path / f"cut-{cut}"
            trial.mkdir()
            (trial / JOURNAL_FILE).write_bytes(prefix)
            recovered = open_database(trial)
            # complete records = complete lines minus the header; a cut
            # inside the header (no newline yet) recovers empty
            k = max(0, prefix.count(b"\n") - 1)
            assert _names(recovered) == states[k], f"cut at byte {cut}"
            # the recovered state is a pure function of k, so one
            # reconvergence per distinct k covers every cut
            if k in reconverged:
                continue
            reconverged.add(k)
            for op in ops[k:]:
                _apply(recovered, op)
            assert _names(recovered) == states[-1], (
                f"cut at byte {cut} did not reconverge"
            )
        # the sweep visited every possible recovery point
        assert reconverged == set(range(len(ops) + 1))

    def test_healed_journal_is_rewritten_in_place(
        self, acknowledged_journal, tmp_path
    ):
        """After recovering a torn journal, the file on disk agrees
        with what was replayed — a second open replays identically."""
        raw, ops = acknowledged_journal
        states = _expected_states(ops)
        cut = len(raw) - 7  # mid-record: a torn final line
        trial = tmp_path / "torn"
        trial.mkdir()
        (trial / JOURNAL_FILE).write_bytes(raw[:cut])
        first = open_database(trial)
        assert first.journal_report.torn_records == 1
        assert first.journal_report.torn_bytes > 0
        first.journal.close()
        again = open_database(trial)
        assert again.journal_report.torn_records == 0
        assert _names(again) == _names(first) == states[len(ops) - 1]


class TestCrashAtTheSeams:
    def test_crash_before_append_loses_only_that_mutation(self, tmp_path):
        """A kill-9 before the record reaches the file: the mutation
        was never acknowledged, so recovery holds everything before
        it."""
        home = tmp_path / "db"
        db = open_database(home)
        db.register(_spec(0))
        db.register(_spec(1))
        faults.crash_at("journal.append")
        with pytest.raises(SimulatedCrash):
            db.register(_spec(2))
        faults.reset()
        recovered = open_database(home)
        assert _names(recovered) == ("c0", "c1")
        assert recovered.journal_report.replayed == 2

    def test_crash_at_fsync_recovers_a_prefix_either_way(self, tmp_path):
        """A kill-9 between write and fsync: the record may or may not
        have reached the disk, but recovery is one of the two adjacent
        acknowledged prefixes — never anything else."""
        home = tmp_path / "db"
        db = open_database(home)
        db.register(_spec(0))
        db.register(_spec(1))
        faults.crash_at("journal.fsync")
        with pytest.raises(SimulatedCrash):
            db.register(_spec(2))
        faults.reset()
        recovered = open_database(home)
        assert _names(recovered) in (("c0", "c1"), ("c0", "c1", "c2"))

    def test_crash_between_manifest_and_compaction(self, tmp_path):
        """The epoch handshake: a crash after the manifest is written
        but before the journal compacts leaves a stale-epoch journal
        whose records are already in the snapshot — the next open must
        discard them rather than replay them twice."""
        home = tmp_path / "db"
        db = open_database(home)
        for i in range(3):
            db.register(_spec(i))
        faults.crash_at("journal.compact")
        with pytest.raises(SimulatedCrash):
            save_database(db, home)
        faults.reset()
        recovered = open_database(home)
        assert _names(recovered) == ("c0", "c1", "c2")
        assert recovered.journal_report.replayed == 0
        assert recovered.journal_report.discarded_stale == 3
        assert recovered.metrics.counter_value("journal.discarded_stale") == 3
        # the open healed the journal: compacted at the manifest's epoch
        assert recovered.journal.epoch == 1
        assert len(recovered.journal) == 0

    def test_crash_mid_snapshot_write_falls_back_to_journal(self, tmp_path):
        """A crash while writing snapshot artifacts must not lose
        journaled mutations: the manifest was never reached, so the old
        epoch's journal still replays everything."""
        home = tmp_path / "db"
        db = open_database(home)
        for i in range(3):
            db.register(_spec(i))
        faults.crash_at("persist.artifact_write", nth=2)
        with pytest.raises(SimulatedCrash):
            save_database(db, home)
        faults.reset()
        recovered = open_database(home)
        assert _names(recovered) == ("c0", "c1", "c2")
        assert recovered.journal_report.replayed == 3
