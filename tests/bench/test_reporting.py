"""Tests for the plain-text report renderer."""

from repro.bench.reporting import format_bar_chart, format_table, write_report


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["name", "value"],
            [("a", 1), ("longer", 22.5)],
            title="t",
        )
        lines = table.splitlines()
        assert lines[0] == "t"
        assert lines[1] == "="
        header, rule, row1, row2 = lines[2:]
        assert header.startswith("name")
        assert set(rule.replace(" ", "")) == {"-"}
        assert len(row1) <= len(header) + 10

    def test_float_formatting(self):
        table = format_table(["x"], [(1.23456,)])
        assert "1.23" in table and "1.2345" not in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table


class TestBarChart:
    def test_bars_scale(self):
        chart = format_bar_chart(["x", "y"], [1.0, 2.0], title="c")
        lines = chart.splitlines()[2:]
        assert lines[0].count("#") * 2 == lines[1].count("#")

    def test_units(self):
        chart = format_bar_chart(["x"], [3.0], unit="ms")
        assert "3.0ms" in chart

    def test_empty(self):
        assert format_bar_chart([], []) == ""


class TestWriteReport:
    def test_creates_parents(self, tmp_path):
        path = write_report(tmp_path / "nested" / "r.txt", "hello")
        assert path.read_text() == "hello\n"
