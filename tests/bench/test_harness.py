"""Tests for the benchmark harness itself (small scales)."""

import pytest

from repro.bench.harness import (
    IndexBuildReport,
    SweepPoint,
    build_database,
    evaluate_query,
    extend_database,
    index_build_report,
    run_figure5,
    run_figure6,
    run_queries,
    specs_to_formulas,
)
from repro.broker.database import BrokerConfig
from repro.workload.datasets import DatasetConfig
from repro.workload.generator import WorkloadGenerator

CONTRACTS = DatasetConfig("tiny contracts", 8, 2, 6, 11)
QUERIES = DatasetConfig("tiny queries", 3, 1, 6, 12)


@pytest.fixture(scope="module")
def tiny_db():
    return build_database(CONTRACTS.generate(), BrokerConfig())


class TestBuilders:
    def test_build_database(self, tiny_db):
        assert len(tiny_db) == 8

    def test_extend_database(self):
        db = build_database(CONTRACTS.generate(4), BrokerConfig())
        extend_database(db, WorkloadGenerator(6, seed=99).generate_specs(2, 2))
        assert len(db) == 6

    def test_specs_to_formulas(self):
        formulas = specs_to_formulas(QUERIES.generate())
        assert len(formulas) == 3


class TestQueryEvaluation:
    def test_evaluate_query_both_modes(self, tiny_db):
        query = specs_to_formulas(QUERIES.generate())[0]
        scan = evaluate_query(tiny_db, query, optimized=False)
        fast = evaluate_query(tiny_db, query, optimized=True)
        assert scan.permitted == fast.permitted
        assert scan.checked == len(tiny_db)
        assert fast.checked <= scan.checked

    def test_run_queries_agreement_check(self, tiny_db):
        queries = specs_to_formulas(QUERIES.generate())
        scan, optimized = run_queries(tiny_db, queries)
        assert len(scan) == len(optimized) == len(queries)
        for s, o in zip(scan, optimized):
            assert s.permitted == o.permitted


class TestExperiments:
    def test_run_figure5_points(self):
        points = run_figure5(
            contract_config=CONTRACTS,
            query_configs=[QUERIES],
            database_sizes=[4, 8],
            broker_config=BrokerConfig(),
        )
        assert [p.database_size for p in points] == [4, 8]
        for point in points:
            assert point.scan_avg_seconds > 0
            assert point.optimized_avg_seconds > 0
            assert point.speedup_min <= point.speedup_avg <= point.speedup_max
            assert len(point.row()) == 8

    def test_sweep_point_aggregate(self):
        point = SweepPoint(10, 0.2, 0.1, 2.0, 0.0, 2.0, 2.0)
        assert point.aggregate_speedup == pytest.approx(2.0)

    def test_run_figure6_grid(self):
        cells = run_figure6(
            contract_configs=[CONTRACTS],
            query_configs=[QUERIES],
            database_size=4,
            broker_config=BrokerConfig(),
        )
        assert len(cells) == 1
        assert cells[0].contract_dataset == "tiny contracts"
        assert len(cells[0].row()) == 6

    def test_index_build_report(self, tiny_db):
        report = index_build_report(tiny_db)
        assert isinstance(report, IndexBuildReport)
        assert report.contracts == 8
        assert report.prefilter_nodes > 0
        assert 0.0 <= report.projection_distinct_ratio <= 1.0
        assert len(report.rows()) == 10
