"""The explicit-model oracle versus the symbolic deciders.

This is the conformance harness checking itself: the oracle shares no
code with Algorithm 2 or the SCC decider, so three-way agreement over
random formula pairs (and random non-LTL-shaped automata) is the
strongest evidence any of the three is right.
"""

import pytest
from hypothesis import given, settings

from repro.automata.buchi import BuchiAutomaton
from repro.automata.ltl2ba import translate
from repro.check.oracle import OracleLimitError, oracle_permits
from repro.check.strategies import buchi_automata, formulas
from repro.core.permission import permits_ndfs, permits_scc
from repro.ltl.ast import And, Finally, Prop
from repro.ltl.equivalence import is_satisfiable
from repro.ltl.parser import parse


class TestAgainstSymbolicDeciders:
    @given(formulas(max_depth=3), formulas(("a", "b", "c", "x"), max_depth=3))
    @settings(max_examples=120, deadline=None)
    def test_three_way_agreement_on_formulas(self, contract_f, query_f):
        contract = translate(contract_f)
        query = translate(query_f)
        vocabulary = contract_f.variables()
        expected = oracle_permits(contract, query, vocabulary)
        assert permits_ndfs(contract, query, vocabulary) == expected
        assert permits_scc(contract, query, vocabulary) == expected

    @given(buchi_automata(max_states=4), buchi_automata(max_states=4))
    @settings(max_examples=100, deadline=None)
    def test_three_way_agreement_on_arbitrary_automata(self, contract, query):
        """Arbitrary graph shapes (unreachable states, dead ends) the
        translator never produces."""
        vocabulary = contract.events()
        expected = oracle_permits(contract, query, vocabulary)
        assert permits_ndfs(contract, query, vocabulary) == expected
        assert permits_scc(contract, query, vocabulary) == expected


class TestSemanticLaws:
    def test_worked_instance(self):
        contract = parse("G(a -> F b)")
        query = parse("F(a && F b)")
        assert oracle_permits(
            translate(contract), translate(query), frozenset({"a", "b"})
        )

    def test_alien_required_event_never_permitted(self):
        contract = parse("G(a -> F b)")
        query = parse("F alienEvent")
        assert not oracle_permits(
            translate(contract), translate(query), frozenset({"a", "b"})
        )

    @given(formulas(max_depth=3), formulas(max_depth=3))
    @settings(max_examples=60, deadline=None)
    def test_contained_vocabulary_collapse(self, contract_f, query_f):
        """When the query only cites contract events, permission is
        plain joint satisfiability (Definition 6) — a fourth,
        formula-level pipeline agreeing with the oracle."""
        vocabulary = contract_f.variables()
        if not query_f.variables() <= vocabulary:
            return
        assert oracle_permits(
            translate(contract_f), translate(query_f), vocabulary
        ) == is_satisfiable(And(contract_f, query_f))

    def test_unsatisfiable_contract_permits_nothing(self):
        contract = translate(parse("a && !a && X a"))
        query = translate(Finally(Prop("a")))
        assert not oracle_permits(contract, query, frozenset({"a"}))


class TestLimits:
    def test_too_many_events_raises(self):
        ba = BuchiAutomaton.make(
            0, [(0, " & ".join(f"e{i}" for i in range(6)), 0)], [0]
        )
        with pytest.raises(OracleLimitError):
            oracle_permits(ba, ba, ba.events(), max_events=4)

    def test_vocabulary_defaults_to_label_events(self):
        contract = translate(parse("G a"))
        query = translate(parse("G a"))
        assert oracle_permits(contract, query)
