"""The ``check`` CLI subcommand: exit codes, seed line, JSON, replay."""

import json

from repro.check import generate_case, write_artifact
from repro.check.runner import Disagreement
from repro.cli import main
from repro.core.permission import permits as real_permits


def test_clean_run_exits_zero(tmp_path, capsys):
    code = main(
        ["check", "--seed", "7", "--cases", "5",
         "--artifacts", str(tmp_path)]
    )
    out = capsys.readouterr().out
    assert code == 0
    # the seed line is the reproduction handle CI logs rely on
    assert "seed=7" in out
    assert "-> OK" in out
    assert list(tmp_path.iterdir()) == []


def test_json_output_includes_metrics(tmp_path, capsys):
    code = main(
        ["check", "--seed", "3", "--cases", "3", "--json",
         "--artifacts", str(tmp_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    doc = json.loads(out[out.index("{"):])
    assert doc["ok"] is True
    assert doc["metrics"]["counters"]["check.configs_run"] > 0


def test_config_subset_and_profile(tmp_path, capsys):
    code = main(
        ["check", "--seed", "1", "--cases", "4", "--profile", "tiny",
         "--configs", "ndfs,scc+pf+proj", "--artifacts", str(tmp_path)]
    )
    assert code == 0
    assert "configs=2" in capsys.readouterr().out


def test_unknown_config_is_a_cli_error(tmp_path, capsys):
    code = main(["check", "--configs", "bogus",
                 "--artifacts", str(tmp_path)])
    assert code == 1
    assert "unknown configuration" in capsys.readouterr().err


def test_injected_bug_exits_nonzero_and_writes_artifact(
    tmp_path, capsys, monkeypatch
):
    def inverted(contract, query, vocabulary=None, **kwargs):
        return not real_permits(contract, query, vocabulary, **kwargs)

    monkeypatch.setattr("repro.broker.database.permits", inverted)
    code = main(
        ["check", "--seed", "7", "--cases", "3", "--configs", "ndfs",
         "--artifacts", str(tmp_path)]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "DISAGREEMENT" in out
    artifacts = list(tmp_path.glob("repro-*.json"))
    assert artifacts

    # replay through the CLI while the bug is installed -> exit 1
    code = main(["check", "--replay", str(artifacts[0])])
    assert code == 1
    assert "FAILURE REPRODUCED" in capsys.readouterr().out

    # and after the fix -> exit 0
    monkeypatch.undo()
    code = main(["check", "--replay", str(artifacts[0])])
    assert code == 0
    assert "passes" in capsys.readouterr().out


def test_replay_handcrafted_artifact(tmp_path, capsys):
    """An artifact written directly (not via a run) replays too."""
    case = generate_case(seed=7, case_index=0)
    failure = Disagreement(
        case=case,
        config_name="scc",
        label="direct",
        kind="exact-mismatch",
        expected=("c0",),
        got=(),
    )
    path = write_artifact(tmp_path, failure, seed=7)
    code = main(["check", "--replay", str(path)])
    assert code == 0  # the current stack is correct, so it passes
    assert "passes" in capsys.readouterr().out
