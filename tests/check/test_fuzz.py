"""Large-budget conformance fuzzing (nightly CI; needs --runfuzz)."""

import pytest

from repro.check import ConformanceRunner

pytestmark = pytest.mark.fuzz


@pytest.mark.parametrize("profile", ["tiny", "small", "wide"])
def test_big_sweep_has_no_disagreements(profile, tmp_path):
    report = ConformanceRunner(
        seed=2026, cases=400, profile=profile, artifact_dir=tmp_path
    ).run()
    assert report.ok, "\n\n".join(
        d.describe() for d in report.disagreements
    )
    # the sweep must actually exercise cases, not skip them all
    assert report.cases_run > report.cases_skipped
