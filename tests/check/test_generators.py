"""Determinism and serialization of the harness's case generators."""

import json

import pytest

from repro.check import CheckCase, PROFILES, generate_case
from repro.check.cases import FilterSpec
from repro.check.generators import random_filter_spec, random_formula
from repro.errors import ReproError
from repro.ltl.parser import parse

import random


class TestDeterminism:
    def test_same_seed_same_case(self):
        for index in range(10):
            first = generate_case(seed=42, case_index=index)
            second = generate_case(seed=42, case_index=index)
            assert first.to_dict() == second.to_dict()

    def test_distinct_indices_distinct_ids(self):
        ids = {generate_case(seed=1, case_index=i).case_id for i in range(20)}
        assert len(ids) == 20

    def test_formula_generator_is_rng_driven(self):
        texts = {
            str(random_formula(random.Random(9), ("a", "b"), max_depth=3))
            for _ in range(5)
        }
        assert len(texts) == 1


class TestProfiles:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_profile_respects_bounds(self, profile):
        spec = PROFILES[profile]
        for index in range(15):
            case = generate_case(seed=3, case_index=index, profile=spec)
            assert (
                spec.min_contracts
                <= len(case.contracts)
                <= spec.max_contracts
            )
            for contract in case.contracts:
                assert 1 <= len(contract.clauses) <= spec.max_clauses
                # every clause and the query must be parseable LTL text
                for clause in contract.clauses:
                    parse(clause)
            parse(case.query)


class TestRoundTrip:
    def test_case_json_round_trip(self):
        case = generate_case(seed=7, case_index=0)
        payload = json.dumps(case.to_dict())
        restored = CheckCase.from_dict(json.loads(payload))
        assert restored == case

    def test_filter_spec_round_trip_preserves_in_tuples(self):
        spec = FilterSpec(
            (("route", "in", ("AMS-JFK", "SFO-NRT")), ("price", "<=", 400))
        )
        restored = FilterSpec.from_list(
            json.loads(json.dumps(spec.to_list()))
        )
        assert restored == spec


class TestFilterSemantics:
    def test_build_matches_like_conditions(self):
        spec = FilterSpec((("price", "<=", 400), ("tier", "!=", "basic")))
        built = spec.build()
        assert built.matches({"price": 300, "route": "X", "tier": "flex"})
        assert not built.matches({"price": 500, "route": "X", "tier": "flex"})
        assert not built.matches({"price": 300, "route": "X", "tier": "basic"})

    def test_in_operator(self):
        built = FilterSpec((("route", "in", ("AMS-JFK",)),)).build()
        assert built.matches({"route": "AMS-JFK"})
        assert not built.matches({"route": "CDG-GRU"})

    def test_empty_spec_matches_everything(self):
        assert FilterSpec(()).build().matches({"anything": 1})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ReproError):
            FilterSpec((("price", "~", 1),)).build()

    def test_generated_specs_always_buildable(self):
        rng = random.Random(11)
        for _ in range(50):
            spec = random_filter_spec(rng, max_conditions=3)
            spec.build().matches({"price": 100, "route": "AMS-JFK",
                                  "tier": "basic"})
