"""The differential runner end to end: clean sweeps, injected wrong
verdicts, shrinking, artifacts, and replay."""

import json

import pytest

from repro.check import (
    CheckCase,
    ConformanceRunner,
    config_lattice,
    configs_by_name,
    generate_case,
    load_artifact,
    replay_artifact,
)
from repro.check.cases import ContractCase, FilterSpec
from repro.core.permission import permits as real_permits
from repro.errors import ReproError


class TestLattice:
    def test_lattice_shape(self):
        lattice = config_lattice()
        assert len(lattice) == 23
        names = [c.name for c in lattice]
        assert len(set(names)) == len(names)
        assert "journal-replay" in names
        assert "ndfs-encoded" in names and "scc-encoded" in names
        assert "ndfs-planner" in names and "scc-planner" in names
        assert "monitor-stream" in names and "monitor-unknown" in names
        assert "sharded" in names and "replicated" in names
        assert "flaky-network" in names and "failover" in names
        assert sum(1 for c in lattice if not c.exact) == 1

    def test_configs_by_name_rejects_unknown(self):
        with pytest.raises(ReproError):
            configs_by_name(["no-such-config"])

    def test_unknown_profile_rejected(self):
        with pytest.raises(ReproError):
            ConformanceRunner(profile="enormous")


class TestCleanRun:
    def test_small_run_agrees_everywhere(self, tmp_path):
        runner = ConformanceRunner(
            seed=7, cases=12, artifact_dir=tmp_path
        )
        report = runner.run()
        assert report.ok
        assert report.cases_run + report.cases_skipped == 12
        assert report.configs_run == report.cases_run * 23
        assert list(tmp_path.iterdir()) == []
        assert runner.metrics.counter_value("check.cases") == report.cases_run
        assert runner.metrics.counter_value("check.disagreements") == 0

    def test_report_to_dict_is_json_able(self):
        report = ConformanceRunner(seed=1, cases=3).run()
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["ok"] is True
        assert doc["seed"] == 1

    def test_duplicate_contract_names_rejected(self):
        case = CheckCase(
            case_id="dup",
            contracts=(
                ContractCase(name="c0", clauses=("a",)),
                ContractCase(name="c0", clauses=("b",)),
            ),
            query="F a",
        )
        with pytest.raises(ReproError):
            ConformanceRunner().check_case(case)


def _invert_decider(monkeypatch):
    """Install a wrong decider: every definite verdict is flipped."""

    def inverted(contract, query, vocabulary=None, **kwargs):
        return not real_permits(contract, query, vocabulary, **kwargs)

    monkeypatch.setattr("repro.broker.database.permits", inverted)


class TestInjectedWrongVerdict:
    """The acceptance pipeline: a hand-injected wrong verdict must be
    detected, shrunk, written as a standalone artifact, and replayable."""

    def test_detection_shrink_artifact_replay(self, tmp_path, monkeypatch):
        _invert_decider(monkeypatch)
        # prefilter off so the (stubbed) decider is consulted for every
        # candidate and the inversion cannot be masked
        runner = ConformanceRunner(
            seed=7,
            cases=4,
            configs=configs_by_name(["ndfs"]),
            artifact_dir=tmp_path,
        )
        report = runner.run()
        assert not report.ok
        failure = report.disagreements[0]
        assert failure.kind == "exact-mismatch"
        assert failure.artifact_path is not None

        doc = load_artifact(failure.artifact_path)
        assert doc["config"] == "ndfs"
        assert doc["expected"] != doc["got"]
        # the artifact is standalone: the stored case alone reproduces
        restored = CheckCase.from_dict(doc["case"])
        assert runner.check_case(restored, configs_by_name(["ndfs"]))

        # replay while the bug is still installed -> reproduced
        replayed = replay_artifact(failure.artifact_path)
        assert replayed.reproduced
        assert "FAILURE REPRODUCED" in replayed.summary()

        # replay after the fix -> passes
        monkeypatch.undo()
        fixed = replay_artifact(failure.artifact_path)
        assert not fixed.reproduced
        assert "passes" in fixed.summary()

    def test_shrinking_minimizes_the_case(self, tmp_path, monkeypatch):
        _invert_decider(monkeypatch)
        runner = ConformanceRunner(
            seed=7,
            cases=2,
            configs=configs_by_name(["ndfs"]),
            artifact_dir=tmp_path,
        )
        report = runner.run()
        assert not report.ok
        for failure in report.disagreements:
            original = generate_case(
                7, int(failure.case.case_id.rsplit("case", 1)[1])
            )
            assert len(failure.case.contracts) <= len(original.contracts)
            doc = load_artifact(failure.artifact_path)
            if failure.case != original:
                assert doc["original_case"] == original.to_dict()

    def test_crashing_decider_reported_as_error(self, monkeypatch):
        def broken(*args, **kwargs):
            raise RuntimeError("decider exploded")

        monkeypatch.setattr("repro.broker.database.permits", broken)
        runner = ConformanceRunner(
            seed=7, cases=1, configs=configs_by_name(["ndfs"]), shrink=False
        )
        report = runner.run()
        assert not report.ok
        assert report.disagreements[0].kind == "error"
        assert "decider exploded" in report.disagreements[0].detail


class TestReplayValidation:
    def test_replay_rejects_non_artifact(self, tmp_path):
        bogus = tmp_path / "not-artifact.json"
        bogus.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(ReproError):
            replay_artifact(bogus)


class TestFilterIntegration:
    def test_filter_excludes_contract_everywhere(self):
        case = CheckCase(
            case_id="filtered",
            contracts=(
                ContractCase(
                    name="cheap",
                    clauses=("G (a -> F b)",),
                    attributes={"price": 100},
                ),
                ContractCase(
                    name="pricey",
                    clauses=("G (a -> F b)",),
                    attributes={"price": 900},
                ),
            ),
            query="F a",
            filter=FilterSpec((("price", "<=", 400),)),
        )
        assert ConformanceRunner().check_case(case) == []
