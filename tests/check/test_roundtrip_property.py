"""Property test: persistence is answer-preserving.

For any database of random contract specs and any random query, the
loaded copy of a saved snapshot returns the same permitted names as the
database that produced it (ids may be renumbered, names may not drift).
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broker.database import ContractDatabase
from repro.broker.options import QueryOptions
from repro.broker.persist import load_database, save_database
from repro.check.strategies import contract_specs, filter_specs, formulas
from repro.ltl.printer import format_formula


@st.composite
def databases(draw):
    specs = draw(
        st.lists(
            contract_specs(max_clauses=2, max_depth=2),
            min_size=1,
            max_size=3,
            unique_by=lambda spec: spec.name,
        )
    )
    db = ContractDatabase()
    for spec in specs:
        db.register(spec)
    return db


@given(databases(), formulas(("a", "b", "c", "x"), max_depth=2),
       filter_specs())
@settings(max_examples=20, deadline=None)
def test_save_load_query_equivalence(db, query_formula, filter_spec):
    query = format_formula(query_formula)
    options = QueryOptions(attribute_filter=filter_spec.build())
    before = db.query(query, options)
    with tempfile.TemporaryDirectory(prefix="repro-roundtrip-") as directory:
        save_database(db, directory)
        loaded = load_database(directory)
    after = loaded.query(query, options)
    # load renumbers ids densely, so names are the stable identity
    assert set(after.contract_names) == set(before.contract_names)
    assert set(after.maybe_names) == set(before.maybe_names)
