"""The promoted strategies module and its ``tests.strategies`` shim."""

from hypothesis import given, settings

from repro.broker.contract import ContractSpec
from repro.broker.relational import AttributeFilter
from repro.check.cases import FilterSpec
from repro.check.strategies import (
    attribute_filters,
    attribute_maps,
    contract_specs,
    filter_specs,
)


def test_shim_reexports_everything():
    import repro.check.strategies as shipped
    import tests.strategies as shim

    assert shim.__all__ == shipped.__all__
    for name in shipped.__all__:
        assert getattr(shim, name) is getattr(shipped, name)


@given(contract_specs())
@settings(max_examples=25, deadline=None)
def test_contract_specs_are_well_formed(spec):
    assert isinstance(spec, ContractSpec)
    assert spec.clauses
    assert set(spec.attributes) == {"price", "route", "tier"}
    # the conjunction must translate (this is what the harness registers)
    spec.formula


@given(filter_specs(max_conditions=3), attribute_maps())
@settings(max_examples=40, deadline=None)
def test_filter_specs_build_and_evaluate(spec, attributes):
    assert isinstance(spec, FilterSpec)
    built = spec.build()
    assert isinstance(built.matches(attributes), bool)
    # serialization round trip preserves semantics
    restored = FilterSpec.from_list(spec.to_list())
    assert restored.build().matches(attributes) == built.matches(attributes)


@given(attribute_filters(), attribute_maps())
@settings(max_examples=25, deadline=None)
def test_attribute_filters_are_built(built, attributes):
    assert isinstance(built, AttributeFilter)
    built.matches(attributes)
