"""Tests for HOA import/export."""

import pytest
from hypothesis import given, settings

from repro.automata.hoa import from_hoa, to_hoa
from repro.automata.ltl2ba import translate
from repro.errors import AutomatonError
from repro.ltl.parser import parse
from repro.ltl.runs import Run

from ..strategies import formulas, runs


class TestExport:
    def test_headers(self):
        hoa = to_hoa(translate(parse("F p")), name="eventually-p")
        assert hoa.startswith("HOA: v1")
        assert 'name: "eventually-p"' in hoa
        assert "Acceptance: 1 Inf(0)" in hoa
        assert 'AP: 1 "p"' in hoa
        assert hoa.rstrip().endswith("--END--")

    def test_true_labels_use_t(self):
        hoa = to_hoa(translate(parse("F p")))
        assert "[t]" in hoa

    def test_negative_literals_encoded(self):
        hoa = to_hoa(translate(parse("G !p")))
        assert "[!0]" in hoa

    def test_no_propositions(self):
        hoa = to_hoa(translate(parse("true")))
        assert "AP: 0" in hoa


class TestRoundTrip:
    @given(formulas(max_depth=3), runs())
    @settings(max_examples=100, deadline=None)
    def test_language_preserved(self, formula, run):
        ba = translate(formula)
        rebuilt = from_hoa(to_hoa(ba))
        assert rebuilt.accepts(run) == ba.accepts(run)

    def test_structure_preserved(self):
        ba = translate(parse("F(a && F b)"))
        rebuilt = from_hoa(to_hoa(ba))
        assert rebuilt.num_states == ba.canonical().num_states
        assert rebuilt.final == ba.canonical().final


class TestImportValidation:
    def test_rejects_wrong_version(self):
        with pytest.raises(AutomatonError):
            from_hoa("HOA: v2\nStates: 1\nStart: 0\n"
                      "Acceptance: 1 Inf(0)\n--BODY--\n--END--")

    def test_rejects_non_buchi_acceptance(self):
        with pytest.raises(AutomatonError):
            from_hoa("HOA: v1\nStates: 1\nStart: 0\nAP: 0\n"
                      "Acceptance: 2 Inf(0)&Inf(1)\n--BODY--\n--END--")

    def test_rejects_disjunctive_labels(self):
        text = (
            'HOA: v1\nStates: 1\nStart: 0\nAP: 2 "a" "b"\n'
            "Acceptance: 1 Inf(0)\n--BODY--\n"
            "State: 0 {0}\n[0 | 1] 0\n--END--"
        )
        with pytest.raises(AutomatonError):
            from_hoa(text)

    def test_rejects_bad_ap_reference(self):
        text = (
            'HOA: v1\nStates: 1\nStart: 0\nAP: 1 "a"\n'
            "Acceptance: 1 Inf(0)\n--BODY--\n"
            "State: 0 {0}\n[7] 0\n--END--"
        )
        with pytest.raises(AutomatonError):
            from_hoa(text)

    def test_rejects_edge_before_state(self):
        text = (
            'HOA: v1\nStates: 1\nStart: 0\nAP: 1 "a"\n'
            "Acceptance: 1 Inf(0)\n--BODY--\n[0] 0\n--END--"
        )
        with pytest.raises(AutomatonError):
            from_hoa(text)

    def test_parses_hand_written(self):
        text = (
            'HOA: v1\nStates: 2\nStart: 0\nAP: 1 "refund"\n'
            "Acceptance: 1 Inf(0)\n--BODY--\n"
            "State: 0\n[t] 0\n[0] 1\nState: 1 {0}\n[t] 1\n--END--"
        )
        ba = from_hoa(text)
        assert ba.accepts(Run.from_events([["refund"]], [[]]))
        assert not ba.accepts(Run.from_events([], [[]]))
