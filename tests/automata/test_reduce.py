"""Unit tests for structural BA reduction."""

from hypothesis import given, settings

from repro.automata.buchi import BuchiAutomaton
from repro.automata.ltl2ba import translate
from repro.automata.reduce import (
    empty_automaton,
    merge_duplicate_transitions,
    reduce_automaton,
    remove_dead,
    remove_unreachable,
)
from repro.ltl.runs import Run

from ..strategies import formulas, runs


class TestRemoveUnreachable:
    def test_drops_disconnected_states(self):
        ba = BuchiAutomaton.make(
            0, [(0, "a", 0), (1, "b", 1)], final=[0, 1]
        )
        trimmed = remove_unreachable(ba)
        assert trimmed.states == {0}

    def test_identity_when_all_reachable(self):
        ba = BuchiAutomaton.make(0, [(0, "a", 0)], final=[0])
        assert remove_unreachable(ba) is ba


class TestRemoveDead:
    def test_drops_states_without_accepting_future(self):
        # 2 is a dead end: no accepting cycle reachable from it.
        ba = BuchiAutomaton.make(
            0, [(0, "a", 1), (1, "t", 1), (0, "b", 2)], final=[1]
        )
        trimmed = remove_dead(ba)
        assert trimmed.states == {0, 1}

    def test_empty_language_collapses(self):
        ba = BuchiAutomaton.make(0, [(0, "a", 1)], final=[1])
        trimmed = remove_dead(ba)
        assert trimmed.num_states == 1
        assert trimmed.is_empty()

    def test_identity_when_all_live(self):
        ba = BuchiAutomaton.make(0, [(0, "a", 0)], final=[0])
        assert remove_dead(ba) is ba


class TestMergeDuplicates:
    def test_merges(self):
        from repro.automata.buchi import Transition
        from repro.automata.labels import Label

        duplicate = Transition(0, Label.parse("a"), 0)
        ba = BuchiAutomaton([0], 0, [duplicate, duplicate], [0])
        assert ba.num_transitions == 2
        merged = merge_duplicate_transitions(ba)
        assert merged.num_transitions == 1


class TestEmptyAutomaton:
    def test_is_empty(self):
        assert empty_automaton().is_empty()

    def test_shape(self):
        ba = empty_automaton()
        assert ba.num_states == 1
        assert ba.num_transitions == 0
        assert not ba.final


class TestReducePipeline:
    def test_reduce_shrinks_translator_output(self):
        from repro.ltl.parser import parse

        raw = translate(parse("F(a && F b)"), reduce=False)
        reduced = reduce_automaton(raw)
        assert reduced.num_states <= raw.num_states

    @given(formulas(max_depth=3), runs())
    @settings(max_examples=150, deadline=None)
    def test_reduce_preserves_language(self, formula, run):
        raw = translate(formula, reduce=False)
        reduced = reduce_automaton(raw)
        assert raw.accepts(run) == reduced.accepts(run)
