"""Tests for BA intersection and union."""

from hypothesis import given, settings

from repro.automata.ltl2ba import translate
from repro.automata.product import intersection, union
from repro.ltl.parser import parse
from repro.ltl.runs import Run

from ..strategies import formulas, runs


class TestIntersection:
    def test_conjunction_equivalent(self):
        a = translate(parse("F p"))
        b = translate(parse("G q"))
        both = intersection(a, b)
        good = Run.from_events([], [["p", "q"], ["q"]])
        only_a = Run.from_events([["p"]], [[]])
        only_b = Run.from_events([], [["q"]])
        assert both.accepts(good)
        assert not both.accepts(only_a)
        assert not both.accepts(only_b)

    def test_disjoint_languages_empty(self):
        a = translate(parse("G p"))
        b = translate(parse("G !p"))
        assert intersection(a, b).is_empty()

    def test_conflicting_labels_dropped(self):
        a = translate(parse("G p"))
        b = translate(parse("F !p && G q"))
        assert intersection(a, b).is_empty()

    @given(formulas(max_depth=3), formulas(max_depth=3), runs())
    @settings(max_examples=150, deadline=None)
    def test_acceptance_is_conjunction(self, fa, fb, run):
        a = translate(fa)
        b = translate(fb)
        both = intersection(a, b)
        assert both.accepts(run) == (a.accepts(run) and b.accepts(run))

    @given(formulas(max_depth=3), formulas(max_depth=3))
    @settings(max_examples=80, deadline=None)
    def test_emptiness_matches_conjunction_formula(self, fa, fb):
        product = intersection(translate(fa), translate(fb))
        conjunction = translate(parse(f"({fa}) && ({fb})"))
        assert product.is_empty() == conjunction.is_empty()


class TestUnion:
    def test_disjunction_equivalent(self):
        a = translate(parse("G p"))
        b = translate(parse("G q"))
        either = union(a, b)
        assert either.accepts(Run.from_events([], [["p"]]))
        assert either.accepts(Run.from_events([], [["q"]]))
        assert not either.accepts(Run.from_events([], [[]]))

    @given(formulas(max_depth=3), formulas(max_depth=3), runs())
    @settings(max_examples=150, deadline=None)
    def test_acceptance_is_disjunction(self, fa, fb, run):
        a = translate(fa)
        b = translate(fb)
        either = union(a, b)
        assert either.accepts(run) == (a.accepts(run) or b.accepts(run))


class TestPermissionLink:
    @given(formulas(max_depth=3), formulas(max_depth=3))
    @settings(max_examples=60, deadline=None)
    def test_nonempty_intersection_necessary_for_permission(self, fc, fq):
        """Definition 6: permission requires the language intersection to
        be non-empty (the converse fails for underspecified contracts)."""
        from repro.core.permission import permits

        contract = translate(fc)
        query = translate(fq)
        if permits(contract, query, fc.variables()):
            assert not intersection(contract, query).is_empty()
