"""The Büchi automata of the paper's Figure 2, built verbatim, with
their described behaviors checked.

Figure 1a/1b are covered in test_buchi.py and the permission tests;
here we pin down Figure 2a (Ticket C), 2b (a round-trip ticket), 2c and
2d (two queries), including the cross-checks the paper makes between
them (e.g. "the contract in Figure 2a has such transitions but does not
permit the stated query", §4.1 Example 8).
"""

import pytest

from repro.automata.buchi import BuchiAutomaton
from repro.core.permission import permits
from repro.ltl.runs import Run

# Figure 1a/2a convention: every label implicitly carries the negative
# literal of every other contract event.  We expand that convention
# explicitly here.

EVENTS_2A = ("purchase", "use", "missedFlight", "refund", "dateChange")


def _full(positive: str | None, events=EVENTS_2A) -> str:
    literals = []
    for event in events:
        if event == positive:
            literals.append(event)
        else:
            literals.append(f"!{event}")
    return " & ".join(literals)


def figure_2a() -> BuchiAutomaton:
    """Ticket C: no refunds, date changes only before departure."""
    return BuchiAutomaton.make(
        initial="init",
        transitions=[
            ("init", _full("purchase"), "s1"),
            ("s1", _full("dateChange"), "s2"),
            ("s1", _full("use"), "s3"),
            ("s1", _full("missedFlight"), "s3"),
            ("s2", _full("use"), "s3"),
            ("s2", _full("missedFlight"), "s3"),
            ("s3", _full(None), "s3"),
        ],
        final=["s3"],
    )


def figure_2c() -> BuchiAutomaton:
    """Query: two date changes."""
    return BuchiAutomaton.make(
        initial="init",
        transitions=[
            ("init", "true", "init"),
            ("init", "dateChange", "s1"),
            ("s1", "true", "s1"),
            ("s1", "dateChange", "s2"),
            ("s2", "true", "s2"),
        ],
        final=["s2"],
    )


def figure_2d() -> BuchiAutomaton:
    """Query: still changeable after a cancel, or after a miss plus one
    approved change."""
    return BuchiAutomaton.make(
        initial="init",
        transitions=[
            ("init", "true", "init"),
            ("init", "flightCanceled", "s2"),
            ("init", "miss", "s1"),
            ("s1", "true", "s1"),
            ("s1", "changeApproved", "s2"),
            ("s2", "true", "s3"),
            ("s3", "requestChange", "s4"),
            ("s4", "changeApproved", "s2"),
        ],
        final=["s2"],
    )


class TestFigure2a:
    def test_allows_single_change_then_use(self):
        ba = figure_2a()
        run = Run.from_events(
            [["purchase"], ["dateChange"], ["use"]], [[]]
        )
        assert ba.accepts(run)

    def test_rejects_two_changes(self):
        ba = figure_2a()
        run = Run.from_events(
            [["purchase"], ["dateChange"], ["dateChange"]], [[]]
        )
        assert not ba.accepts(run)

    def test_rejects_refund(self):
        ba = figure_2a()
        run = Run.from_events([["purchase"], ["refund"]], [[]])
        assert not ba.accepts(run)

    def test_rejects_change_after_miss(self):
        ba = figure_2a()
        run = Run.from_events(
            [["purchase"], ["missedFlight"], ["dateChange"]], [[]]
        )
        assert not ba.accepts(run)


class TestExample8:
    """§4.1: Figure 2a has transitions compatible with both labels of the
    Figure 2c query, yet does not permit it — pruning conditions are
    necessary, not sufficient."""

    def test_compatible_labels_exist(self):
        contract = figure_2a()
        vocabulary = frozenset(EVENTS_2A)
        from repro.automata.labels import Label, compatible

        has_change = any(
            compatible(label, Label.parse("dateChange"), vocabulary)
            for label in contract.labels()
        )
        has_use = any(
            compatible(label, Label.parse("use"), vocabulary)
            for label in contract.labels()
        )
        assert has_change and has_use

    def test_but_permission_fails(self):
        assert not permits(
            figure_2a(), figure_2c(), frozenset(EVENTS_2A)
        )

    def test_prefilter_keeps_it_as_false_positive(self):
        """The index must (correctly) keep Figure 2a as a candidate for
        the 2c query even though permission fails."""
        from repro.index.prefilter import PrefilterIndex

        index = PrefilterIndex(depth=2)
        index.add_contract(0, figure_2a(), frozenset(EVENTS_2A))
        assert 0 in index.candidates(figure_2c())


class TestFigure2d:
    def test_accepts_cancel_then_changes_forever(self):
        ba = figure_2d()
        run = Run.from_events(
            [["flightCanceled"]],
            [[], ["requestChange"], ["changeApproved"]],
        )
        assert ba.accepts(run)

    def test_accepts_miss_then_approved_change_loop(self):
        ba = figure_2d()
        run = Run.from_events(
            [["miss"], ["changeApproved"]],
            [[], ["requestChange"], ["changeApproved"]],
        )
        assert ba.accepts(run)

    def test_rejects_without_cycle_events(self):
        ba = figure_2d()
        run = Run.from_events([["flightCanceled"]], [[]])
        assert not ba.accepts(run)
