"""Unit tests for generalized Büchi automata and degeneralization."""

import pytest

from repro.automata.buchi import BuchiAutomaton
from repro.automata.gba import GeneralizedBuchi
from repro.automata.labels import Label
from repro.errors import AutomatonError
from repro.ltl.runs import Run


def label(text: str) -> Label:
    return Label.parse(text)


class TestValidation:
    def test_initial_must_be_state(self):
        with pytest.raises(AutomatonError):
            GeneralizedBuchi(frozenset({0}), 1, (), ())

    def test_transitions_use_known_states(self):
        with pytest.raises(AutomatonError):
            GeneralizedBuchi(
                frozenset({0}), 0, ((0, label("a"), 9),), ()
            )

    def test_acceptance_subset(self):
        with pytest.raises(AutomatonError):
            GeneralizedBuchi(
                frozenset({0}), 0, (), (frozenset({7}),)
            )


class TestDegeneralize:
    def test_zero_sets_all_states_final(self):
        gba = GeneralizedBuchi(
            frozenset({0, 1}),
            0,
            ((0, label("a"), 1), (1, label("true"), 1)),
            (),
        )
        ba = gba.degeneralize()
        assert ba.final == ba.states
        assert ba.accepts(Run.from_events([["a"]], [[]]))

    def test_trivial_sets_are_dropped(self):
        gba = GeneralizedBuchi(
            frozenset({0}),
            0,
            ((0, label("true"), 0),),
            (frozenset({0}),),  # equals all states: no constraint
        )
        assert gba.nontrivial_acceptance_sets() == ()
        ba = gba.degeneralize()
        assert ba.accepts(Run.from_events([], [[]]))

    def test_two_sets_require_both_infinitely_often(self):
        # 0 --a--> 1 --b--> 0 ; F1 = {0}, F2 = {1}
        gba = GeneralizedBuchi(
            frozenset({0, 1}),
            0,
            ((0, label("a"), 1), (1, label("b"), 0), (0, label("c"), 0)),
            (frozenset({0}), frozenset({1})),
        )
        ba = gba.degeneralize()
        # alternating a/b visits both sets forever: accepted
        assert ba.accepts(Run.from_events([], [["a"], ["b"]]))
        # looping on c stays in F1 but never visits F2: rejected
        assert not ba.accepts(Run.from_events([], [["c"]]))

    def test_single_set_reduces_to_plain_buchi(self):
        gba = GeneralizedBuchi(
            frozenset({0, 1}),
            0,
            ((0, label("a"), 1), (1, label("true"), 1), (0, label("b"), 0)),
            (frozenset({1}),),
        )
        ba = gba.degeneralize()
        assert ba.accepts(Run.from_events([["a"]], [[]]))
        assert not ba.accepts(Run.from_events([], [["b"]]))

    def test_counts(self):
        gba = GeneralizedBuchi(
            frozenset({0, 1}),
            0,
            ((0, label("a"), 1),),
            (frozenset({0}), frozenset({1})),
        )
        assert gba.num_states == 2
        assert gba.num_transitions == 1
        ba = gba.degeneralize()
        # counter construction: |states| x |sets|
        assert ba.num_states == 4
