"""Property tests of the automaton-generic algorithms on random,
non-LTL-shaped Büchi automata (arbitrary graphs, unreachable states,
dead ends, parallel edges)."""

import pytest
from hypothesis import given, settings

from repro.automata.bisim import quotient_by_bisimulation
from repro.automata.product import intersection, union
from repro.automata.reduce import reduce_automaton
from repro.automata.hoa import from_hoa, to_hoa
from repro.automata.serialize import dumps, loads
from repro.core.permission import permits_ndfs, permits_scc
from repro.core.seeds import compute_seeds

from ..strategies import buchi_automata, runs

# The whole module is high-example-count hypothesis differentials —
# the slowest tier-1 files by far.  CI runs them via --runslow.
pytestmark = pytest.mark.slow


class TestStructuralAlgorithms:
    @given(buchi_automata(), runs())
    @settings(max_examples=200, deadline=None)
    def test_reduce_preserves_language(self, ba, run):
        assert reduce_automaton(ba).accepts(run) == ba.accepts(run)

    @given(buchi_automata(), runs())
    @settings(max_examples=200, deadline=None)
    def test_quotient_preserves_language(self, ba, run):
        assert quotient_by_bisimulation(ba).accepts(run) == ba.accepts(run)

    @given(buchi_automata(), runs())
    @settings(max_examples=150, deadline=None)
    def test_canonical_preserves_language(self, ba, run):
        assert ba.canonical().accepts(run) == ba.accepts(run)

    @given(buchi_automata())
    @settings(max_examples=150, deadline=None)
    def test_emptiness_consistent_with_witness(self, ba):
        witness = ba.find_accepted_run()
        assert (witness is None) == ba.is_empty()
        if witness is not None:
            assert ba.accepts(witness)

    @given(buchi_automata())
    @settings(max_examples=150, deadline=None)
    def test_seeds_subset_of_states(self, ba):
        seeds = compute_seeds(ba)
        assert seeds <= ba.states
        # seeds are exactly the states that can knot an accepting lasso,
        # so an empty language means no seeds at all
        if seeds:
            assert not ba.is_empty()


class TestProductsOnRandomAutomata:
    @given(buchi_automata(), buchi_automata(), runs())
    @settings(max_examples=150, deadline=None)
    def test_intersection(self, a, b, run):
        assert intersection(a, b).accepts(run) == (
            a.accepts(run) and b.accepts(run)
        )

    @given(buchi_automata(), buchi_automata(), runs())
    @settings(max_examples=150, deadline=None)
    def test_union(self, a, b, run):
        assert union(a, b).accepts(run) == (
            a.accepts(run) or b.accepts(run)
        )


class TestPermissionOnRandomAutomata:
    @given(buchi_automata(), buchi_automata())
    @settings(max_examples=150, deadline=None)
    def test_deciders_agree(self, contract, query):
        vocabulary = contract.events() | frozenset({"a"})
        assert permits_ndfs(contract, query, vocabulary) == permits_scc(
            contract, query, vocabulary
        )

    @given(buchi_automata(), buchi_automata())
    @settings(max_examples=100, deadline=None)
    def test_seeds_never_change_verdict(self, contract, query):
        vocabulary = contract.events()
        assert permits_ndfs(
            contract, query, vocabulary, use_seeds=True
        ) == permits_ndfs(contract, query, vocabulary, use_seeds=False)


class TestSerializationOnRandomAutomata:
    @given(buchi_automata(), runs())
    @settings(max_examples=100, deadline=None)
    def test_json_round_trip(self, ba, run):
        rebuilt = loads(dumps(ba))
        assert rebuilt.accepts(run) == ba.accepts(run)

    @given(buchi_automata(), runs())
    @settings(max_examples=100, deadline=None)
    def test_hoa_round_trip(self, ba, run):
        rebuilt = from_hoa(to_hoa(ba))
        assert rebuilt.accepts(run) == ba.accepts(run)
