"""Tests for bounded language enumeration."""

from hypothesis import given, settings

from repro.automata.language import enumerate_runs, example_behaviors
from repro.automata.ltl2ba import translate
from repro.ltl.parser import parse
from repro.ltl.semantics import satisfies

from ..strategies import formulas


class TestEnumerateRuns:
    def test_all_enumerated_runs_accepted(self):
        ba = translate(parse("F(a && F b)"))
        runs = list(enumerate_runs(ba, limit=8))
        assert runs
        for run in runs:
            assert ba.accepts(run)

    def test_empty_language_yields_nothing(self):
        ba = translate(parse("false"))
        assert list(enumerate_runs(ba)) == []

    def test_limit_respected(self):
        ba = translate(parse("F a"))
        assert len(list(enumerate_runs(ba, limit=3))) <= 3

    def test_runs_are_distinct(self):
        ba = translate(parse("F a || F b"))
        runs = list(enumerate_runs(ba, limit=10))
        assert len(runs) == len(set(runs))

    def test_simplest_behavior_first(self):
        ba = translate(parse("G !a"))
        first = next(enumerate_runs(ba, limit=1))
        # the simplest allowed behavior of "never a" is doing nothing
        assert first.prefix == ()
        assert all("a" not in snap for snap in first.loop)

    def test_reschedule_behavior_enumerable(self):
        clauses = parse("F dateChange && G(dateChange -> !F refund)")
        ba = translate(clauses)
        runs = list(enumerate_runs(ba, limit=10))
        assert runs
        for run in runs:
            assert any(
                "dateChange" in snap for snap in run.prefix + run.loop
            )
            # the Ticket A policy: never a refund after the change
            assert ba.accepts(run)

    @given(formulas(max_depth=3))
    @settings(max_examples=60, deadline=None)
    def test_enumerated_runs_satisfy_the_formula(self, formula):
        ba = translate(formula)
        for run in enumerate_runs(ba, limit=4):
            assert satisfies(run, formula)


class TestExampleBehaviors:
    def test_shape(self):
        ba = translate(parse("F a"))
        behaviors = example_behaviors(ba, limit=3, horizon=4)
        assert len(behaviors) <= 3
        assert all(len(b) == 4 for b in behaviors)
