"""White-box tests of the translator's cover machinery."""

from repro.automata.labels import TRUE_LABEL, Label
from repro.automata.ltl2ba import (
    _Cover,
    _Translator,
    _configurations,
    _prune,
)
from repro.ltl import ast as A
from repro.ltl.parser import parse
from repro.ltl.rewrite import nnf


def cover(label_text: str, obligations=(), fulfilled=()) -> _Cover:
    return _Cover(
        Label.parse(label_text),
        frozenset(obligations),
        frozenset(fulfilled),
    )


class TestConfigurations:
    def test_atom_is_single_obligation(self):
        p = A.Prop("p")
        assert _configurations(p) == (frozenset({p}),)

    def test_true_is_empty_obligation(self):
        assert _configurations(A.TRUE) == (frozenset(),)

    def test_false_has_no_configuration(self):
        assert _configurations(A.FALSE) == ()

    def test_disjunction_offers_alternatives(self):
        f = parse("p || q")
        configs = _configurations(f)
        assert len(configs) == 2

    def test_conjunction_merges(self):
        f = parse("p && q")
        configs = _configurations(f)
        assert configs == (frozenset({A.Prop("p"), A.Prop("q")}),)

    def test_nested(self):
        f = parse("(p || q) && r")
        configs = set(_configurations(f))
        assert configs == {
            frozenset({A.Prop("p"), A.Prop("r")}),
            frozenset({A.Prop("q"), A.Prop("r")}),
        }


class TestPrune:
    def test_exact_duplicates_merged(self):
        covers = [cover("a"), cover("a")]
        assert len(_prune(covers)) == 1

    def test_weaker_label_dominates(self):
        covers = [cover("a"), cover("a & b")]
        pruned = _prune(covers)
        assert pruned == (cover("a"),)

    def test_fewer_obligations_dominate(self):
        g = nnf(parse("G x"))
        covers = [cover("a", obligations=[g]), cover("a")]
        assert _prune(covers) == (cover("a"),)

    def test_more_fulfilled_dominates(self):
        u = nnf(parse("p U q"))
        covers = [cover("a", fulfilled=[u]), cover("a")]
        assert _prune(covers) == (cover("a", fulfilled=[u]),)

    def test_incomparable_covers_kept(self):
        covers = [cover("a"), cover("b")]
        assert set(_prune(covers)) == set(covers)

    def test_combine_conflict_is_none(self):
        assert cover("a").combine(cover("!a")) is None

    def test_combine_unions_everything(self):
        u = nnf(parse("p U q"))
        g = nnf(parse("G x"))
        combined = cover("a", obligations=[g]).combine(
            cover("b", fulfilled=[u])
        )
        assert combined.label == Label.parse("a & b")
        assert combined.obligations == frozenset({g})
        assert combined.fulfilled == frozenset({u})


class TestTranslatorMemo:
    def test_covers_memoized(self):
        translator = _Translator(budget=1000)
        f = nnf(parse("G(a -> F b)"))
        first = translator.covers(f)
        second = translator.covers(f)
        assert first is second

    def test_state_covers_memoized(self):
        translator = _Translator(budget=1000)
        f = nnf(parse("G(a -> F b)"))
        state = frozenset({f})
        assert translator.state_covers(state) is translator.state_covers(state)

    def test_empty_state_is_true_selfloop(self):
        translator = _Translator(budget=1000)
        covers = translator.state_covers(frozenset())
        assert covers == (_Cover(TRUE_LABEL, frozenset(), frozenset()),)

    def test_contradictory_state_has_no_covers(self):
        translator = _Translator(budget=1000)
        state = frozenset({nnf(parse("a")), nnf(parse("!a"))})
        assert translator.state_covers(state) == ()
