"""Unit tests for BA text serialization."""

import json

import pytest

from repro.automata.buchi import BuchiAutomaton
from repro.automata.ltl2ba import translate
from repro.automata.serialize import (
    automaton_from_dict,
    automaton_to_dict,
    dumps,
    load,
    load_many,
    loads,
    save,
    save_many,
)
from repro.errors import AutomatonError
from repro.ltl.parser import parse
from repro.ltl.runs import Run


@pytest.fixture
def sample() -> BuchiAutomaton:
    return translate(parse("F(a && F b)"))


class TestRoundTrip:
    def test_dict_round_trip(self, sample):
        rebuilt = automaton_from_dict(automaton_to_dict(sample))
        assert rebuilt == sample.canonical()

    def test_string_round_trip(self, sample):
        rebuilt = loads(dumps(sample))
        assert rebuilt == sample.canonical()

    def test_language_preserved(self, sample):
        rebuilt = loads(dumps(sample))
        for run in (
            Run.from_events([["a"], ["b"]]),
            Run.from_events([["b"], ["a"]]),
        ):
            assert rebuilt.accepts(run) == sample.accepts(run)

    def test_file_round_trip(self, sample, tmp_path):
        path = tmp_path / "ba.json"
        save(sample, path)
        assert load(path) == sample.canonical()

    def test_many_round_trip(self, tmp_path):
        automata = [translate(parse(t)) for t in ("F a", "G b", "a U b")]
        path = tmp_path / "db.json"
        save_many(automata, path)
        loaded = load_many(path)
        assert loaded == [ba.canonical() for ba in automata]

    def test_output_is_deterministic(self, sample):
        assert dumps(sample) == dumps(sample)


class TestMalformedInput:
    def test_missing_field(self):
        with pytest.raises(AutomatonError):
            automaton_from_dict({"states": 1})

    def test_non_numeric_states(self):
        with pytest.raises(AutomatonError):
            automaton_from_dict(
                {"states": "x", "initial": 0, "final": [], "transitions": []}
            )

    def test_load_many_requires_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(AutomatonError):
            load_many(path)

    def test_transition_to_unknown_state(self):
        with pytest.raises(AutomatonError):
            automaton_from_dict(
                {
                    "states": 1,
                    "initial": 0,
                    "final": [],
                    "transitions": [[0, "a", 5]],
                }
            )
