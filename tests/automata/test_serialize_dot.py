"""Tests for Graphviz DOT export."""

from repro.automata.ltl2ba import translate
from repro.automata.serialize import to_dot
from repro.ltl.parser import parse


class TestToDot:
    def test_structure(self):
        dot = to_dot(translate(parse("F p")))
        assert dot.startswith("digraph buchi {")
        assert dot.rstrip().endswith("}")
        assert "doublecircle" in dot  # a final state
        assert "__start ->" in dot   # the entry arrow
        assert '[label="p"]' in dot

    def test_custom_name(self):
        dot = to_dot(translate(parse("G p")), name="ticket_a")
        assert "digraph ticket_a" in dot

    def test_deterministic(self):
        ba = translate(parse("F(a && F b)"))
        assert to_dot(ba) == to_dot(ba)

    def test_every_state_rendered(self):
        ba = translate(parse("F(a && F b)"))
        dot = to_dot(ba)
        for state in ba.canonical().states:
            assert f"s{state} [shape=" in dot

    def test_negative_literals_rendered(self):
        dot = to_dot(translate(parse("G !p")))
        assert "!p" in dot
