"""Unit tests for the Büchi automaton data structure."""

import pytest

from repro.automata.buchi import BuchiAutomaton, BuchiBuilder, Transition
from repro.automata.labels import Label, pos, neg
from repro.errors import AutomatonError
from repro.ltl.runs import Run


def figure_1b() -> BuchiAutomaton:
    """The query BA of Figure 1b: a refund after a missed flight."""
    return BuchiAutomaton.make(
        initial="init",
        transitions=[
            ("init", "true", "init"),
            ("init", "missedFlight", "s1"),
            ("s1", "true", "s1"),
            ("s1", "refund", "s2"),
            ("s2", "true", "s2"),
        ],
        final=["s2"],
    )


class TestConstruction:
    def test_make_infers_states(self):
        ba = figure_1b()
        assert ba.states == {"init", "s1", "s2"}
        assert ba.num_states == 3
        assert ba.num_transitions == 5

    def test_unknown_transition_state_rejected(self):
        with pytest.raises(AutomatonError):
            BuchiAutomaton(
                [0], 0, [Transition(0, Label.parse("a"), 99)], []
            )

    def test_unknown_initial_rejected(self):
        with pytest.raises(AutomatonError):
            BuchiAutomaton([0], 1, [], [])

    def test_final_must_be_subset(self):
        with pytest.raises(AutomatonError):
            BuchiAutomaton([0], 0, [], [5])

    def test_builder(self):
        ba = (
            BuchiBuilder()
            .add_state(0, initial=True)
            .add_state(1, final=True)
            .add_transition(0, "a", 1)
            .add_transition(1, "true", 1)
            .build()
        )
        assert ba.initial == 0
        assert ba.final == frozenset({1})

    def test_builder_dedups_transitions(self):
        builder = BuchiBuilder().add_state(0, initial=True)
        builder.add_transition(0, "a", 0)
        builder.add_transition(0, "a", 0)
        assert builder.build().num_transitions == 1

    def test_builder_requires_initial(self):
        with pytest.raises(AutomatonError):
            BuchiBuilder().add_state(0).build()

    def test_builder_rejects_second_initial(self):
        builder = BuchiBuilder().add_state(0, initial=True)
        with pytest.raises(AutomatonError):
            builder.add_state(1, initial=True)


class TestQueries:
    def test_successors_sorted_deterministically(self):
        ba1 = figure_1b()
        ba2 = figure_1b()
        assert [
            (str(l), d) for l, d in ba1.successors("init")
        ] == [(str(l), d) for l, d in ba2.successors("init")]

    def test_events_and_literals(self):
        ba = figure_1b()
        assert ba.events() == frozenset({"missedFlight", "refund"})
        assert pos("missedFlight") in ba.literals()

    def test_stats(self):
        stats = figure_1b().stats()
        assert stats["states"] == 3
        assert stats["transitions"] == 5
        assert stats["final"] == 1

    def test_str_contains_transitions(self):
        text = str(figure_1b())
        assert "missedFlight" in text


class TestAcceptance:
    """Example 6: Figure 1b accepts exactly the runs with a missed flight
    followed (strictly or loosely) by a refund."""

    def test_accepts_miss_then_refund(self):
        ba = figure_1b()
        run = Run.from_events([["missedFlight"], ["refund"]])
        assert ba.accepts(run)

    def test_accepts_with_gap(self):
        ba = figure_1b()
        run = Run.from_events(
            [["purchase"], ["missedFlight"], [], [], ["refund"]]
        )
        assert ba.accepts(run)

    def test_rejects_refund_before_miss(self):
        ba = figure_1b()
        run = Run.from_events([["refund"], ["missedFlight"]])
        assert not ba.accepts(run)

    def test_rejects_no_refund(self):
        ba = figure_1b()
        run = Run.from_events([["missedFlight"]])
        assert not ba.accepts(run)

    def test_rejects_empty_run(self):
        ba = figure_1b()
        assert not ba.accepts(Run.from_events([], [[]]))

    def test_acceptance_inside_loop(self):
        ba = figure_1b()
        run = Run.from_events([], [["missedFlight"], ["refund"]])
        assert ba.accepts(run)


class TestEmptiness:
    def test_nonempty(self):
        assert not figure_1b().is_empty()

    def test_empty_no_final(self):
        ba = BuchiAutomaton.make(0, [(0, "true", 0)], final=[])
        assert ba.is_empty()

    def test_empty_final_unreachable(self):
        ba = BuchiAutomaton.make(
            0, [(0, "true", 0), (1, "true", 1)], final=[1]
        )
        assert ba.is_empty()

    def test_empty_final_not_on_cycle(self):
        ba = BuchiAutomaton.make(0, [(0, "a", 1)], final=[1])
        assert ba.is_empty()


class TestWitnessRun:
    def test_find_accepted_run(self):
        ba = figure_1b()
        run = ba.find_accepted_run()
        assert run is not None
        assert ba.accepts(run)

    def test_none_for_empty_language(self):
        ba = BuchiAutomaton.make(0, [(0, "a", 1)], final=[1])
        assert ba.find_accepted_run() is None

    def test_self_loop_knot(self):
        ba = BuchiAutomaton.make(0, [(0, "a", 0)], final=[0])
        run = ba.find_accepted_run()
        assert run is not None and ba.accepts(run)


class TestTransforms:
    def test_map_states(self):
        ba = figure_1b().map_states(lambda s: f"x-{s}")
        assert ba.initial == "x-init"
        assert "x-s2" in ba.final

    def test_map_states_must_be_injective(self):
        with pytest.raises(AutomatonError):
            figure_1b().map_states(lambda s: "same")

    def test_canonical_renumbers_from_initial(self):
        ba = figure_1b().canonical()
        assert ba.initial == 0
        assert ba.states == {0, 1, 2}

    def test_canonical_preserves_acceptance(self):
        ba = figure_1b()
        canonical = ba.canonical()
        run = Run.from_events([["missedFlight"], ["refund"]])
        assert canonical.accepts(run) == ba.accepts(run)

    def test_equality(self):
        assert figure_1b() == figure_1b()
        assert figure_1b().canonical() != figure_1b()
