"""Tests for direct-simulation reduction."""

import pytest
from hypothesis import given, settings

from repro.automata.buchi import BuchiAutomaton
from repro.automata.ltl2ba import translate
from repro.automata.simulation import (
    direct_simulation,
    prune_dominated_transitions,
    quotient_by_simulation,
    reduce_with_simulation,
)
from repro.ltl.parser import parse

from ..strategies import buchi_automata, formulas, runs


class TestDirectSimulation:
    def test_reflexive(self):
        ba = translate(parse("F a"))
        relation = direct_simulation(ba)
        for state in ba.states:
            assert (state, state) in relation

    def test_final_only_simulated_by_final(self):
        ba = BuchiAutomaton.make(
            0, [(0, "a", 1), (1, "t", 1), (0, "a", 2), (2, "t", 2)],
            final=[1],
        )
        relation = direct_simulation(ba)
        assert (1, 2) not in relation  # final cannot be covered by non-final

    def test_weaker_guard_simulates(self):
        # from 0: [a&b] -> 1 and [a] -> 2, with identical sinks
        ba = BuchiAutomaton.make(
            0,
            [(0, "a & b", 1), (0, "a", 2), (1, "true", 1),
             (2, "true", 2)],
            final=[1, 2],
        )
        relation = direct_simulation(ba)
        assert (1, 2) in relation and (2, 1) in relation

    def test_dead_end_simulated_by_anything(self):
        ba = BuchiAutomaton.make(
            0, [(0, "a", 1), (0, "a", 2), (2, "t", 2)], final=[2],
        )
        relation = direct_simulation(ba)
        # 1 has no obligations at all, so every non-... state covers it
        assert (1, 2) in relation


class TestQuotientAndPruning:
    def test_quotient_merges_twins(self):
        ba = BuchiAutomaton.make(
            0,
            [(0, "a", 1), (0, "a", 2), (1, "b", 3), (2, "b", 3),
             (3, "true", 3)],
            final=[3],
        )
        merged = quotient_by_simulation(ba)
        assert merged.num_states == 3

    def test_prune_drops_stronger_parallel_edge(self):
        ba = BuchiAutomaton.make(
            0, [(0, "a & b", 1), (0, "a", 1), (1, "true", 1)], final=[1],
        )
        pruned = prune_dominated_transitions(ba)
        labels = {str(l) for l, _ in pruned.successors(0)}
        assert labels == {"a"}

    def test_prune_keeps_incomparable_edges(self):
        ba = BuchiAutomaton.make(
            0, [(0, "a", 1), (0, "b", 1), (1, "true", 1)], final=[1],
        )
        pruned = prune_dominated_transitions(ba)
        assert pruned.num_transitions == 3

    def test_identical_twins_keep_exactly_one(self):
        from repro.automata.buchi import Transition
        from repro.automata.labels import Label

        duplicate = Transition(0, Label.parse("a"), 1)
        ba = BuchiAutomaton(
            [0, 1], 0,
            [duplicate, duplicate,
             Transition(1, Label.parse("true"), 1)],
            [1],
        )
        pruned = prune_dominated_transitions(ba)
        assert pruned.num_transitions == 2


@pytest.mark.slow
class TestLanguagePreservation:
    @given(formulas(max_depth=3), runs())
    @settings(max_examples=150, deadline=None)
    def test_on_translated_automata(self, formula, run):
        ba = translate(formula, reduce=False)
        reduced = reduce_with_simulation(ba)
        assert reduced.accepts(run) == ba.accepts(run)
        assert reduced.num_states <= ba.num_states

    @given(buchi_automata(), runs())
    @settings(max_examples=200, deadline=None)
    def test_on_random_automata(self, ba, run):
        reduced = reduce_with_simulation(ba)
        assert reduced.accepts(run) == ba.accepts(run)

    @given(buchi_automata(), runs())
    @settings(max_examples=150, deadline=None)
    def test_quotient_alone(self, ba, run):
        assert quotient_by_simulation(ba).accepts(run) == ba.accepts(run)

    @given(buchi_automata(), runs())
    @settings(max_examples=150, deadline=None)
    def test_pruning_alone(self, ba, run):
        assert prune_dominated_transitions(ba).accepts(run) == ba.accepts(run)
