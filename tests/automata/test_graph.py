"""Unit tests for the shared graph algorithms."""

from repro.automata.graph import (
    backward_reachable,
    is_cyclic_component,
    reachable_from,
    scc_ids,
    states_on_accepting_cycles,
    strongly_connected_components,
)


def adjacency(edges: dict):
    return lambda n: edges.get(n, ())


class TestSCC:
    def test_single_node_no_loop(self):
        comps = strongly_connected_components([0], adjacency({}))
        assert comps == [[0]]

    def test_two_cycles_and_bridge(self):
        edges = {0: [1], 1: [0, 2], 2: [3], 3: [2]}
        comps = strongly_connected_components(range(4), adjacency(edges))
        as_sets = sorted(map(frozenset, comps), key=min)
        assert as_sets == [frozenset({0, 1}), frozenset({2, 3})]

    def test_reverse_topological_order(self):
        edges = {0: [1], 1: [2], 2: []}
        comps = strongly_connected_components([0, 1, 2], adjacency(edges))
        # downstream components come first
        assert comps == [[2], [1], [0]]

    def test_large_cycle(self):
        n = 3000  # would blow a recursive implementation's stack
        edges = {i: [(i + 1) % n] for i in range(n)}
        comps = strongly_connected_components(range(n), adjacency(edges))
        assert len(comps) == 1
        assert len(comps[0]) == n

    def test_scc_ids_consistent(self):
        edges = {0: [1], 1: [0], 2: [0]}
        ids = scc_ids([0, 1, 2], adjacency(edges))
        assert ids[0] == ids[1]
        assert ids[2] != ids[0]

    def test_self_loop_is_own_component(self):
        edges = {0: [0, 1], 1: []}
        comps = strongly_connected_components([0, 1], adjacency(edges))
        assert sorted(map(len, comps)) == [1, 1]


class TestCyclicComponent:
    def test_multi_node_component_is_cyclic(self):
        edges = {0: [1], 1: [0]}
        assert is_cyclic_component([0, 1], adjacency(edges))

    def test_singleton_with_self_loop(self):
        assert is_cyclic_component([0], adjacency({0: [0]}))

    def test_singleton_without_self_loop(self):
        assert not is_cyclic_component([0], adjacency({0: [1]}))


class TestReachability:
    EDGES = {0: [1, 2], 1: [3], 2: [], 3: [], 4: [0]}

    def test_forward(self):
        assert reachable_from(0, adjacency(self.EDGES)) == {0, 1, 2, 3}

    def test_forward_excludes_ancestors(self):
        assert 4 not in reachable_from(0, adjacency(self.EDGES))

    def test_backward(self):
        nodes = range(5)
        result = backward_reachable([3], nodes, adjacency(self.EDGES))
        assert result == {3, 1, 0, 4}

    def test_backward_multiple_targets(self):
        nodes = range(5)
        result = backward_reachable([2, 3], nodes, adjacency(self.EDGES))
        assert result == {0, 1, 2, 3, 4}


class TestAcceptingCycles:
    def test_states_on_accepting_cycles(self):
        # 0 -> 1 <-> 2(final), 3(final, no cycle)
        edges = {0: [1], 1: [2], 2: [1, 3], 3: []}
        result = states_on_accepting_cycles(
            range(4), adjacency(edges), lambda n: n in {2, 3}
        )
        assert result == {1, 2}

    def test_final_self_loop(self):
        edges = {0: [0]}
        result = states_on_accepting_cycles(
            [0], adjacency(edges), lambda n: True
        )
        assert result == {0}

    def test_cycle_without_final_excluded(self):
        edges = {0: [1], 1: [0]}
        result = states_on_accepting_cycles(
            [0, 1], adjacency(edges), lambda n: False
        )
        assert result == set()
