"""Tests for the flat int/bitset encoding (:mod:`repro.automata.encode`).

Structural properties of :func:`encode_automaton`, the
``to_dict``/``from_dict`` persistence round trip (including the
validation failures that drive the snapshot fallback ladder), and the
Definition-7 bit tables :func:`bind_query` precomputes.
"""

import pytest
from hypothesis import given, settings

from repro.automata.buchi import BuchiAutomaton
from repro.automata.encode import (
    EncodedAutomaton,
    bind_query,
    encode_automaton,
)
from repro.automata.labels import TRUE_LABEL, Label
from repro.automata.ltl2ba import translate
from repro.core.seeds import compute_seeds, compute_seeds_mask
from repro.errors import AutomatonError
from repro.ltl.parser import parse

from ..strategies import buchi_automata, formulas


def ba_of(text: str) -> BuchiAutomaton:
    return translate(parse(text))


class TestEncoding:
    def test_structure_mirrors_automaton(self):
        ba = ba_of("G(a -> F b)")
        enc = encode_automaton(ba)
        assert enc.num_states == len(ba.states)
        assert enc.num_transitions == ba.num_transitions
        assert enc.states[enc.initial] == ba.initial
        assert {enc.states[i] for i in range(enc.num_states)
                if enc.is_final(i)} == ba.final
        assert enc.events == tuple(sorted(ba.events()))

    def test_csr_preserves_successor_order(self):
        """The hot-loop parity argument rests on this: the CSR rows list
        each state's transitions in ``BuchiAutomaton.successors`` order."""
        ba = ba_of("(a U b) && G(c -> F a)")
        enc = encode_automaton(ba)
        for sid in range(enc.num_states):
            object_dsts = [
                enc.state_index[dst]
                for _, dst in ba.successors(enc.states[sid])
            ]
            assert list(enc.successor_ids(sid)) == object_dsts

    def test_label_classes_deduplicated(self):
        ba = ba_of("G a")
        enc = encode_automaton(ba)
        distinct = {
            label for state in ba.states for label, _ in ba.successors(state)
        }
        assert enc.num_label_classes == len(distinct)

    def test_vocabulary_can_widen_events(self):
        ba = ba_of("F a")
        enc = encode_automaton(ba, frozenset({"a", "zz"}))
        assert enc.events == ("a", "zz")
        assert enc.event_index["zz"] == 1

    def test_out_of_vocabulary_literals_dropped(self):
        """Contract literals on events outside the vocabulary vanish
        from the masks (sound: admissible queries can't cite them)."""
        ba = ba_of("G(a && !b)")
        enc = encode_automaton(ba, frozenset({"a"}))
        bit = 1 << enc.event_index["a"]
        assert all(m & ~bit == 0 for m in enc.label_pos)
        assert all(m == 0 for m in enc.label_neg)

    def test_state_mask_matches_seed_mask(self):
        ba = ba_of("G(a -> F b)")
        enc = encode_automaton(ba)
        assert enc.state_mask(compute_seeds(ba)) == compute_seeds_mask(enc)

    @settings(max_examples=30, deadline=None)
    @given(ba=buchi_automata())
    def test_random_automata_encode_consistently(self, ba):
        enc = encode_automaton(ba)
        assert enc.num_transitions == ba.num_transitions
        for sid in range(enc.num_states):
            assert list(enc.successor_ids(sid)) == [
                enc.state_index[dst]
                for _, dst in ba.successors(enc.states[sid])
            ]


class TestSerialization:
    def test_round_trip(self):
        ba = ba_of("G(a -> F(b || c))")
        enc = encode_automaton(ba)
        restored = EncodedAutomaton.from_dict(ba, enc.to_dict())
        assert restored.events == enc.events
        assert restored.states == enc.states
        assert restored.final_mask == enc.final_mask
        assert list(restored.offsets) == list(enc.offsets)
        assert list(restored.trans_labels) == list(enc.trans_labels)
        assert list(restored.trans_dsts) == list(enc.trans_dsts)
        assert restored.label_pos == enc.label_pos
        assert restored.label_neg == enc.label_neg

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("offsets"),
            lambda d: d.update(states=d["states"][:-1]),
            lambda d: d.update(initial=len(d["states"])),
            lambda d: d.update(final=[len(d["states"])]),
            lambda d: d.update(offsets=[1] + d["offsets"][1:]),
            lambda d: d.update(trans_dsts=d["trans_dsts"][:-1]),
            lambda d: d.update(
                trans_labels=[len(d["label_pos"])] + d["trans_labels"][1:]
            ),
            lambda d: d.update(label_neg=d["label_neg"] + [0]),
            lambda d: d.update(events=list(reversed(d["events"]))),
        ],
        ids=[
            "missing-key", "dropped-state", "bad-initial", "bad-final",
            "bad-offset-origin", "short-dsts", "unknown-label-class",
            "ragged-label-table", "unsorted-events",
        ],
    )
    def test_from_dict_rejects_corruption(self, mutate):
        """Every structural mismatch must raise ``AutomatonError`` so the
        snapshot loader falls back to re-encoding."""
        ba = ba_of("G(a -> F b)")
        doc = encode_automaton(ba).to_dict()
        mutate(doc)
        with pytest.raises(AutomatonError):
            EncodedAutomaton.from_dict(ba, doc)


class TestBindQuery:
    def test_admissible_query(self):
        contract = encode_automaton(ba_of("G(a -> F b)"))
        query = encode_automaton(ba_of("F b"))
        binding = bind_query(contract, query)
        assert all(binding.admissible)

    def test_out_of_vocabulary_query_label_inadmissible(self):
        contract = encode_automaton(ba_of("F a"))
        query = encode_automaton(ba_of("F(a && F c)"))
        binding = bind_query(contract, query)
        c_bit = query.event_index["c"]
        for lid in range(query.num_label_classes):
            cites_c = bool(
                ((query.label_pos[lid] | query.label_neg[lid]) >> c_bit) & 1
            )
            assert binding.admissible[lid] == (not cites_c)
            if cites_c:
                assert binding.compat[lid] == 0

    def test_compat_bits_match_definition_7(self):
        """Row bit ``c`` is set iff contract class ``c`` and the query
        class share no complementary literal pair."""
        contract = encode_automaton(ba_of("G(a && !b) || G b"))
        query = encode_automaton(ba_of("F(b && a)"))
        binding = bind_query(contract, query)
        for qid in range(query.num_label_classes):
            if not binding.admissible[qid]:
                continue
            q_pos = _remap(query, contract, query.label_pos[qid])
            q_neg = _remap(query, contract, query.label_neg[qid])
            for cid in range(contract.num_label_classes):
                expected = not (
                    (contract.label_pos[cid] & q_neg)
                    | (contract.label_neg[cid] & q_pos)
                )
                assert bool((binding.compat[qid] >> cid) & 1) == expected

    def test_true_label_compatible_with_everything(self):
        contract = encode_automaton(ba_of("G(a -> F b)"))
        query = encode_automaton(
            BuchiAutomaton.make(0, [(0, TRUE_LABEL, 0)], [0])
        )
        binding = bind_query(contract, query)
        true_id = query.trans_labels[0]
        assert binding.admissible[true_id]
        full = (1 << contract.num_label_classes) - 1
        assert binding.compat[true_id] == full


def _remap(query, contract, mask):
    out = 0
    for name, bit in query.event_index.items():
        if (mask >> bit) & 1:
            out |= 1 << contract.event_index[name]
    return out
