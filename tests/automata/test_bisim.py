"""Unit and property tests for bisimulation refinement and quotienting."""

from hypothesis import given, settings

from repro.automata.bisim import (
    bisimulation_partition,
    blocks_of,
    initial_partition,
    partition_signature,
    quotient,
    quotient_by_bisimulation,
)
from repro.automata.buchi import BuchiAutomaton
from repro.automata.ltl2ba import translate

from ..strategies import formulas, runs


def duplicated_chain() -> BuchiAutomaton:
    """Two parallel, label-identical branches into a final sink: states
    1/2 are bisimilar, as are 3/4."""
    return BuchiAutomaton.make(
        initial=0,
        transitions=[
            (0, "a", 1),
            (0, "a", 2),
            (1, "b", 3),
            (2, "b", 4),
            (3, "true", 3),
            (4, "true", 4),
        ],
        final=[3, 4],
    )


class TestInitialPartition:
    def test_final_nonfinal_split(self):
        ba = duplicated_chain()
        partition = initial_partition(ba)
        assert partition[3] == partition[4]
        assert partition[0] == partition[1] == partition[2]
        assert partition[0] != partition[3]


class TestBisimulationPartition:
    def test_merges_equivalent_states(self):
        ba = duplicated_chain()
        blocks = blocks_of(bisimulation_partition(ba))
        as_sets = {frozenset(b) for b in blocks}
        assert frozenset({1, 2}) in as_sets
        assert frozenset({3, 4}) in as_sets

    def test_distinguishes_on_labels(self):
        ba = BuchiAutomaton.make(
            initial=0,
            transitions=[(0, "a", 1), (0, "b", 2), (1, "true", 1),
                         (2, "true", 2)],
            final=[1, 2],
        )
        partition = bisimulation_partition(ba)
        # 1 and 2 have identical futures: they merge; 0 stays apart.
        assert partition[1] == partition[2]
        assert partition[0] != partition[1]

    def test_distinguishes_on_finality(self):
        ba = BuchiAutomaton.make(
            initial=0,
            transitions=[(0, "a", 1), (1, "a", 0)],
            final=[1],
        )
        partition = bisimulation_partition(ba)
        assert partition[0] != partition[1]

    def test_seeded_refinement_matches_unseeded(self):
        """Seeding with any coarser partition must give the same result
        (Theorem 3 is what makes the seed coarser in the store)."""
        ba = duplicated_chain()
        unseeded = bisimulation_partition(ba)
        coarse = {s: 0 for s in ba.states}
        seeded = bisimulation_partition(ba, seed=coarse)
        assert partition_signature(seeded) == partition_signature(unseeded)

    def test_seed_cannot_break_finality_split(self):
        ba = duplicated_chain()
        # a malicious seed putting finals and non-finals together
        seed = {s: 0 for s in ba.states}
        partition = bisimulation_partition(ba, seed=seed)
        assert partition[0] != partition[3]


class TestQuotient:
    def test_quotient_shrinks(self):
        ba = duplicated_chain()
        q = quotient_by_bisimulation(ba)
        assert q.num_states == 3
        assert len(q.final) == 1

    def test_quotient_preserves_acceptance_on_examples(self):
        from repro.ltl.runs import Run

        ba = duplicated_chain()
        q = quotient_by_bisimulation(ba)
        accepted = Run.from_events([["a"], ["b"]], [[]])
        rejected = Run.from_events([["b"]], [[]])
        assert q.accepts(accepted) and ba.accepts(accepted)
        assert not q.accepts(rejected) and not ba.accepts(rejected)

    def test_quotient_final_blocks_pure(self):
        ba = duplicated_chain()
        partition = bisimulation_partition(ba)
        q = quotient(ba, partition)
        # final blocks contain only final states (Definition 10.3)
        for block in blocks_of(partition):
            block_id = partition[next(iter(block))]
            if block_id in q.final:
                assert block <= ba.final

    @given(formulas(max_depth=3), runs())
    @settings(max_examples=150, deadline=None)
    def test_quotient_language_equal_on_random_automata(self, formula, run):
        """Theorem 8: the simplification accepts the same runs."""
        ba = translate(formula, reduce=False)
        q = quotient_by_bisimulation(ba)
        assert q.accepts(run) == ba.accepts(run)


class TestSignature:
    def test_equal_partitions_equal_signatures(self):
        ba = duplicated_chain()
        p1 = bisimulation_partition(ba)
        p2 = bisimulation_partition(ba)
        assert partition_signature(p1) == partition_signature(p2)

    def test_signature_independent_of_block_ids(self):
        p1 = {0: 0, 1: 1}
        p2 = {0: 5, 1: 3}
        assert partition_signature(p1) == partition_signature(p2)
