"""Unit tests for literals, labels, compatibility and expansion."""

import pytest

from repro.automata.labels import (
    TRUE_LABEL,
    Label,
    Literal,
    compatible,
    label_from_formula,
    label_to_formula,
    neg,
    pos,
)
from repro.ltl.parser import parse


class TestLiteral:
    def test_negate(self):
        assert pos("a").negate() == neg("a")
        assert neg("a").negate() == pos("a")

    def test_holds_in(self):
        snap = frozenset({"a"})
        assert pos("a").holds_in(snap)
        assert not pos("b").holds_in(snap)
        assert neg("b").holds_in(snap)
        assert not neg("a").holds_in(snap)

    def test_ordering_deterministic(self):
        lits = [pos("b"), neg("a"), pos("a"), neg("b")]
        assert sorted(map(str, sorted(lits))) == sorted(
            ["!a", "a", "!b", "b"]
        )

    def test_str(self):
        assert str(pos("x")) == "x"
        assert str(neg("x")) == "!x"


class TestLabelConstruction:
    def test_of_valid(self):
        label = Label.of([pos("a"), neg("b")])
        assert label.events() == frozenset({"a", "b"})

    def test_of_contradiction_raises(self):
        with pytest.raises(ValueError):
            Label.of([pos("a"), neg("a")])

    def test_try_of_contradiction_is_none(self):
        assert Label.try_of([pos("a"), neg("a")]) is None

    def test_parse_variants(self):
        assert Label.parse("true") == TRUE_LABEL
        assert Label.parse("") == TRUE_LABEL
        assert Label.parse("a & !b") == Label.of([pos("a"), neg("b")])
        assert Label.parse("a && !b") == Label.of([pos("a"), neg("b")])
        assert Label.parse("~b") == Label.of([neg("b")])

    @pytest.mark.parametrize(
        "text", ["a &", "& a", "!", "~", "a & & b", "a && && b", "! & a"]
    )
    def test_parse_rejects_malformed(self, text):
        """Regression: dangling operators, empty conjuncts and bare
        negations must raise instead of silently building a literal
        with an empty event name (which no snapshot can ever satisfy)."""
        with pytest.raises(ValueError):
            Label.parse(text)

    def test_str_sorted(self):
        assert str(Label.of([neg("b"), pos("a")])) == "a & !b"
        assert str(TRUE_LABEL) == "true"

    def test_len_and_iter(self):
        label = Label.parse("a & !b")
        assert len(label) == 2
        # ordering is by (event, polarity): 'a' sorts before '!b'
        assert [str(l) for l in label] == ["a", "!b"]


class TestLabelQueries:
    def test_is_true(self):
        assert TRUE_LABEL.is_true
        assert not Label.parse("a").is_true

    def test_polarity(self):
        label = Label.parse("a & !b")
        assert label.polarity("a") is True
        assert label.polarity("b") is False
        assert label.polarity("c") is None

    def test_satisfied_by(self):
        label = Label.parse("a & !b")
        assert label.satisfied_by(frozenset({"a"}))
        assert label.satisfied_by(frozenset({"a", "c"}))
        assert not label.satisfied_by(frozenset({"a", "b"}))
        assert not label.satisfied_by(frozenset())

    def test_true_label_satisfied_by_everything(self):
        assert TRUE_LABEL.satisfied_by(frozenset())
        assert TRUE_LABEL.satisfied_by(frozenset({"x"}))


class TestLabelAlgebra:
    def test_conjoin(self):
        a = Label.parse("a")
        b = Label.parse("!b")
        assert a.conjoin(b) == Label.parse("a & !b")

    def test_conjoin_conflict_is_none(self):
        assert Label.parse("a").conjoin(Label.parse("!a")) is None

    def test_conflicts(self):
        assert Label.parse("a").conflicts(Label.parse("!a"))
        assert not Label.parse("a").conflicts(Label.parse("b"))

    def test_restrict(self):
        label = Label.parse("a & !b & c")
        assert label.restrict([pos("a"), neg("b")]) == Label.parse("a & !b")
        assert label.restrict([]) == TRUE_LABEL
        # restrict matches literals, not events: !b is kept only if the
        # *negative* literal is in the kept set.
        assert label.restrict([pos("b")]) == TRUE_LABEL

    def test_restrict_events(self):
        label = Label.parse("a & !b & c")
        assert label.restrict_events({"a", "b"}) == Label.parse("a & !b")

    def test_implies(self):
        strong = Label.parse("a & !b")
        weak = Label.parse("a")
        assert strong.implies(weak)
        assert not weak.implies(strong)
        assert strong.implies(TRUE_LABEL)

    def test_pick_snapshot(self):
        label = Label.parse("a & !b & c")
        assert label.pick_snapshot() == frozenset({"a", "c"})

    def test_pick_snapshot_takes_no_arguments(self):
        """Regression: the dead ``default_false`` parameter is gone —
        it was never read, so passing it silently did nothing."""
        with pytest.raises(TypeError):
            Label.parse("a").pick_snapshot(default_false=True)


class TestExpansion:
    def test_example_11(self):
        """E(p & c) over vocabulary {p, c, m} = {p, c, m, !m} (§4.2)."""
        expansion = Label.parse("p & c").expansion(["p", "c", "m"])
        assert expansion == frozenset([pos("p"), pos("c"), pos("m"), neg("m")])

    def test_example_11_containment_checks(self):
        expansion = Label.parse("p & c").expansion(["p", "c", "m"])
        assert {pos("p"), pos("m")} <= expansion            # q = p & m
        assert not {pos("p"), neg("c")} <= expansion        # q' = p & !c
        assert not {pos("c"), pos("r")} <= expansion        # q'' = c & r

    def test_true_label_expansion_is_all_literals(self):
        expansion = TRUE_LABEL.expansion(["a", "b"])
        assert expansion == frozenset(
            [pos("a"), neg("a"), pos("b"), neg("b")]
        )


class TestCompatibility:
    """Definition 7, condition 3."""

    VOCAB = frozenset({"p", "c", "m"})

    def test_non_conflicting_within_vocabulary(self):
        assert compatible(Label.parse("p & !c"), Label.parse("p"), self.VOCAB)

    def test_conflicting_labels(self):
        assert not compatible(
            Label.parse("p & !c"), Label.parse("c"), self.VOCAB
        )

    def test_query_event_outside_vocabulary(self):
        assert not compatible(
            Label.parse("p"), Label.parse("classUpgrade"), self.VOCAB
        )

    def test_true_query_label_always_compatible(self):
        assert compatible(Label.parse("p & !c & m"), TRUE_LABEL, self.VOCAB)

    def test_contract_label_may_exceed_query(self):
        assert compatible(Label.parse("p & !c"), Label.parse("!c"), self.VOCAB)


class TestFormulaConversion:
    def test_from_formula(self):
        assert label_from_formula(parse("a && !b")) == Label.parse("a & !b")

    def test_from_formula_true(self):
        assert label_from_formula(parse("true")) == TRUE_LABEL

    def test_from_formula_rejects_disjunction(self):
        with pytest.raises(ValueError):
            label_from_formula(parse("a || b"))

    def test_from_formula_rejects_contradiction(self):
        with pytest.raises(ValueError):
            label_from_formula(parse("a && !a"))

    def test_round_trip(self):
        label = Label.parse("a & !b & c")
        assert label_from_formula(label_to_formula(label)) == label

    def test_to_formula_true(self):
        assert label_to_formula(TRUE_LABEL) == parse("true")
