"""Tests for the LTL-to-Büchi translation.

The decisive check is differential: on random formulas and random
ultimately-periodic runs, BA acceptance must coincide with the
ground-truth evaluator of :mod:`repro.ltl.semantics`.
"""

import pytest
from hypothesis import given, settings

from repro.automata.ltl2ba import translate, translate_text
from repro.errors import TranslationError
from repro.ltl.parser import parse
from repro.ltl.runs import Run
from repro.ltl.semantics import satisfies

from ..strategies import formulas, runs


class TestBasicShapes:
    def test_true_accepts_everything(self):
        ba = translate(parse("true"))
        assert ba.accepts(Run.from_events([], [[]]))
        assert ba.accepts(Run.from_events([["a"]], [["b"]]))

    def test_false_accepts_nothing(self):
        ba = translate(parse("false"))
        assert ba.is_empty()

    def test_contradiction_is_empty(self):
        assert translate(parse("G p && F !p")).is_empty()
        assert translate(parse("p && !p")).is_empty()

    def test_single_proposition(self):
        ba = translate(parse("p"))
        assert ba.accepts(Run.from_events([["p"]]))
        assert not ba.accepts(Run.from_events([[]], [["p"]]))

    def test_globally_single_state(self):
        ba = translate(parse("G p"))
        assert ba.num_states == 1
        assert ba.accepts(Run.from_events([], [["p"]]))
        assert not ba.accepts(Run.from_events([["p"], []], [["p"]]))

    def test_labels_restricted_to_formula_variables(self):
        ba = translate(parse("G(a -> F b)"))
        assert ba.events() <= {"a", "b"}

    def test_reduction_keeps_language(self):
        raw = translate(parse("F(a && F b)"), reduce=False)
        reduced = translate(parse("F(a && F b)"), reduce=True)
        assert reduced.num_states <= raw.num_states
        for run in (
            Run.from_events([["a"], ["b"]]),
            Run.from_events([["b"], ["a"]]),
            Run.from_events([], [["a"], ["b"]]),
        ):
            assert raw.accepts(run) == reduced.accepts(run)

    def test_translate_text_shortcut(self):
        assert translate_text("F p").accepts(Run.from_events([["p"]]))


class TestBudget:
    def test_budget_exceeded_raises(self):
        # A conjunction of many distinct untils needs many obligation sets.
        clause = " && ".join(f"(F p{i})" for i in range(8))
        with pytest.raises(TranslationError):
            translate(parse(clause), state_budget=3)

    def test_generous_budget_succeeds(self):
        clause = " && ".join(f"(F p{i})" for i in range(4))
        ba = translate(parse(clause), state_budget=10_000)
        assert not ba.is_empty()


class TestPaperAutomata:
    def test_figure_1b_equivalent(self):
        """Our BA for 'refund after missed flight' accepts the same runs
        Example 6 describes."""
        ba = translate(parse("F(missedFlight && F refund)"))
        assert ba.accepts(Run.from_events([["missedFlight"], ["refund"]]))
        assert ba.accepts(
            Run.from_events([[], ["missedFlight"], [], ["refund"], []])
        )
        assert not ba.accepts(Run.from_events([["refund"], ["missedFlight"]]))
        # the same instant counts for both only if both events hold there
        assert ba.accepts(
            Run.from_events([["missedFlight", "refund"], ["refund"]])
        )

    def test_ticket_a_clause(self):
        ba = translate(parse("G(dateChange -> !F refund)"))
        assert ba.accepts(Run.from_events([["dateChange"], ["use"]]))
        assert not ba.accepts(Run.from_events([["dateChange"], ["refund"]]))
        assert ba.accepts(Run.from_events([["refund"], ["dateChange"]]))

    def test_conjunction_of_clauses(self):
        spec = parse(
            "G(!refund) && G(dateChange -> X(!F dateChange)) "
            "&& G(missedFlight -> !F dateChange)"
        )
        ba = translate(spec)
        assert ba.accepts(Run.from_events([["dateChange"], ["use"]]))
        assert not ba.accepts(
            Run.from_events([["dateChange"], ["dateChange"]])
        )
        assert not ba.accepts(Run.from_events([["refund"]]))


class TestDifferential:
    @given(formulas(max_depth=4), runs())
    @settings(max_examples=400, deadline=None)
    def test_acceptance_matches_semantics(self, formula, run):
        ba = translate(formula)
        assert ba.accepts(run) == satisfies(run, formula)

    @given(formulas(max_depth=3))
    @settings(max_examples=150, deadline=None)
    def test_emptiness_matches_witness(self, formula):
        ba = translate(formula)
        witness = ba.find_accepted_run()
        if ba.is_empty():
            assert witness is None
        else:
            assert witness is not None
            assert satisfies(witness, formula)
