"""Shared fixtures for the test suite.

The airfare database (the paper's running example) is expensive enough
to build that it is shared at session scope; tests must not mutate it.
"""

from __future__ import annotations

import pytest

from repro.broker.database import BrokerConfig, ContractDatabase
from repro.core.faults import FAULTS
from repro.workload.airfare import all_ticket_specs


@pytest.fixture(autouse=True)
def _disarm_faults():
    """No fault armed by one test may leak into another."""
    FAULTS.reset()
    yield
    FAULTS.reset()


def pytest_addoption(parser):
    parser.addoption(
        "--runslow", action="store_true", default=False,
        help="also run tests marked @pytest.mark.slow (heavyweight "
             "hypothesis/differential tests; CI always passes this)",
    )
    parser.addoption(
        "--runfuzz", action="store_true", default=False,
        help="also run tests marked @pytest.mark.fuzz (large-budget "
             "conformance fuzzing; the nightly CI job passes this)",
    )


def pytest_collection_modifyitems(config, items):
    gates = [
        ("slow", "--runslow"),
        ("fuzz", "--runfuzz"),
    ]
    for marker, flag in gates:
        if config.getoption(flag):
            continue
        skip = pytest.mark.skip(reason=f"needs {flag} option to run")
        for item in items:
            if marker in item.keywords:
                item.add_marker(skip)


@pytest.fixture(scope="session")
def airfare_db() -> ContractDatabase:
    """Tickets A, B, C registered with all optimizations enabled."""
    db = ContractDatabase(BrokerConfig())
    for spec in all_ticket_specs():
        db.register(spec)
    return db


@pytest.fixture(scope="session")
def airfare_contracts(airfare_db):
    """Name -> Contract mapping for the airfare database."""
    return {c.name: c for c in airfare_db.contracts()}
