"""Randomized end-to-end soundness: on generated workloads, every
optimization combination must return exactly the same result sets.

This is the library's strongest integration guarantee — it exercises the
translator, the permission algorithm, the pruning conditions, the
set-trie, the projections and the broker glue in one go.
"""

import pytest

from repro.broker.database import BrokerConfig, ContractDatabase
from repro.bench.harness import build_database, specs_to_formulas
from repro.workload.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def random_world():
    generator = WorkloadGenerator(vocabulary_size=6, seed=20260705)
    contracts = generator.generate_specs(20, 2)
    queries = specs_to_formulas(generator.generate_specs(8, 1))
    queries += specs_to_formulas(generator.generate_specs(4, 2))
    return contracts, queries


MODES = [
    ("none", False, False),
    ("prefilter", True, False),
    ("projections", False, True),
    ("both", True, True),
]


class TestModeAgreement:
    def test_all_modes_return_identical_sets(self, random_world):
        contracts, queries = random_world
        db = build_database(contracts, BrokerConfig())
        for i, query in enumerate(queries):
            results = {}
            for name, prefilter, projections in MODES:
                result = db.query(
                    query, use_prefilter=prefilter,
                    use_projections=projections,
                )
                results[name] = frozenset(result.contract_ids)
            assert len(set(results.values())) == 1, (i, str(query), results)

    def test_candidates_always_cover_answers(self, random_world):
        contracts, queries = random_world
        db = build_database(contracts, BrokerConfig())
        for query in queries:
            result = db.query(query, use_prefilter=True)
            assert result.stats.candidates >= len(result.contract_ids)

    def test_ndfs_and_scc_brokers_agree(self, random_world):
        contracts, queries = random_world
        ndfs_db = build_database(
            contracts, BrokerConfig(permission_algorithm="ndfs")
        )
        scc_db = build_database(
            contracts, BrokerConfig(permission_algorithm="scc")
        )
        for query in queries:
            assert (
                ndfs_db.query(query).contract_ids
                == scc_db.query(query).contract_ids
            )

    def test_index_depths_agree(self, random_world):
        contracts, queries = random_world
        shallow = build_database(
            contracts, BrokerConfig(prefilter_depth=1)
        )
        deep = build_database(
            contracts, BrokerConfig(prefilter_depth=3)
        )
        for query in queries:
            assert (
                shallow.query(query).contract_ids
                == deep.query(query).contract_ids
            )

    def test_projection_caps_agree(self, random_world):
        contracts, queries = random_world
        small = build_database(
            contracts, BrokerConfig(projection_subset_cap=1)
        )
        large = build_database(
            contracts, BrokerConfig(projection_subset_cap=3)
        )
        for query in queries:
            assert (
                small.query(query).contract_ids
                == large.query(query).contract_ids
            )
