"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "specs.json"
    docs = [
        {"name": "refund-friendly", "clauses": ["F refund"],
         "attributes": {"price": 100}},
        {"name": "no-refunds", "clauses": ["G !refund"],
         "attributes": {"price": 50}},
    ]
    path.write_text(json.dumps(docs))
    return path


class TestGenerate:
    def test_writes_spec_file(self, tmp_path, capsys):
        out = tmp_path / "generated.json"
        code = main([
            "generate", "--count", "4", "--patterns", "2",
            "--vocabulary", "6", "--seed", "3", "--out", str(out),
        ])
        assert code == 0
        docs = json.loads(out.read_text())
        assert len(docs) == 4
        assert all(len(d["clauses"]) == 2 for d in docs)

    def test_generated_specs_parse_back(self, tmp_path):
        from repro.ltl.parser import parse

        out = tmp_path / "generated.json"
        main(["generate", "--count", "2", "--out", str(out)])
        for doc in json.loads(out.read_text()):
            for clause in doc["clauses"]:
                parse(clause)

    def test_pathological_profile(self, tmp_path):
        from repro.ltl.parser import parse

        out = tmp_path / "pathological.json"
        code = main([
            "generate", "--profile", "pathological",
            "--count", "6", "--out", str(out),
        ])
        assert code == 0
        docs = json.loads(out.read_text())
        assert len(docs) == 6
        for doc in docs:
            for clause in doc["clauses"]:
                parse(clause)
        # the monster contracts lead with a wide eventuality conjunction
        assert docs[0]["clauses"][0].count("F") >= 6


class TestQuery:
    def test_query_reports_matches(self, spec_file, capsys):
        code = main(["query", str(spec_file), "--query", "F refund"])
        assert code == 0
        out = capsys.readouterr().out
        assert "refund-friendly" in out
        assert "no-refunds" not in out.split("matched")[1].splitlines()[0]

    def test_multiple_queries(self, spec_file, capsys):
        code = main([
            "query", str(spec_file),
            "--query", "F refund", "--query", "G !refund",
        ])
        assert code == 0
        assert capsys.readouterr().out.count("query:") == 2

    def test_optimizations_can_be_disabled(self, spec_file, capsys):
        code = main([
            "query", str(spec_file), "--query", "F refund",
            "--no-prefilter", "--no-projections",
        ])
        assert code == 0
        assert "prefilter off" in capsys.readouterr().out

    def test_generous_deadline_not_degraded(self, spec_file, capsys):
        code = main([
            "query", str(spec_file), "--query", "F refund",
            "--deadline-ms", "60000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "refund-friendly" in out
        assert "DEGRADED" not in out

    def test_tight_budget_prints_degraded_line(self, tmp_path, capsys):
        specs = tmp_path / "pathological.json"
        main([
            "generate", "--profile", "pathological",
            "--count", "8", "--out", str(specs),
        ])
        capsys.readouterr()
        code = main([
            "query", str(specs), "--no-prefilter", "--no-projections",
            "--query", " && ".join(f"F ev{i}" for i in range(7)),
            "--step-budget", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "DEGRADED" in out
        assert "timed out" in out
        assert "maybe" in out

    def test_malformed_spec_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"not": "a list"}))
        code = main(["query", str(bad), "--query", "F a"])
        assert code == 1


class TestBuildAndLoad:
    def test_build_then_query_directory(self, spec_file, tmp_path, capsys):
        db_dir = tmp_path / "built"
        assert main(["build", str(spec_file), "--out", str(db_dir)]) == 0
        assert (db_dir / "contracts.json").exists()
        capsys.readouterr()
        assert main(["query", str(db_dir), "--query", "F refund"]) == 0
        out = capsys.readouterr().out
        assert "loaded 2 contracts" in out
        assert "refund-friendly" in out


class TestTranslate:
    def test_pretty(self, capsys):
        assert main(["translate", "F p"]) == 0
        assert "BuchiAutomaton" in capsys.readouterr().out

    def test_json(self, capsys):
        assert main(["translate", "F p", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {"states", "initial", "final", "transitions"} <= set(doc)


class TestStats:
    def test_stats_table(self, spec_file, capsys):
        assert main(["stats", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "states_avg" in out


class TestMetrics:
    def test_metrics_renders_cache_and_histograms(self, spec_file, capsys):
        code = main([
            "metrics", str(spec_file),
            "--query", "F refund", "--query", "G !refund",
            "--repeat", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 10 queries" in out
        # aggregate cache hit rate: 2 misses, 8 hits
        assert "8 hits / 2 misses (80% hit rate)" in out
        assert "query.cache.hits" in out
        assert "query.total_seconds" in out
        assert "histograms" in out

    def test_metrics_parallel_workers(self, spec_file, capsys):
        code = main([
            "metrics", str(spec_file), "--query", "F refund",
            "--repeat", "3", "--workers", "2",
        ])
        assert code == 0
        assert "workers=2" in capsys.readouterr().out

    def test_metrics_json_snapshot(self, spec_file, capsys):
        code = main([
            "metrics", str(spec_file), "--query", "F refund", "--json",
        ])
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["cache"]["misses"] == 1
        assert payload["counters"]["query.count"] == 1

    def test_metrics_counts_degraded_outcomes(self, tmp_path, capsys):
        specs = tmp_path / "pathological.json"
        main([
            "generate", "--profile", "pathological",
            "--count", "8", "--out", str(specs),
        ])
        capsys.readouterr()
        code = main([
            "metrics", str(specs), "--no-prefilter", "--no-projections",
            "--query", " && ".join(f"F ev{i}" for i in range(7)),
            "--step-budget", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 degraded" in out
        assert "query.degraded" in out

    def test_metrics_cache_can_be_disabled(self, spec_file, capsys):
        code = main([
            "metrics", str(spec_file), "--query", "F refund",
            "--repeat", "3", "--cache-capacity", "0",
        ])
        assert code == 0
        assert "0 hits / 3 misses" in capsys.readouterr().out


class TestCompare:
    def test_compare_reports_difference(self, spec_file, capsys):
        code = main([
            "compare", str(spec_file), "refund-friendly", "no-refunds",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "refund-friendly vs no-refunds" in out
        assert "allows" in out

    def test_unknown_contract_name(self, spec_file, capsys):
        code = main(["compare", str(spec_file), "nope", "no-refunds"])
        assert code == 1
        assert "unknown contract" in capsys.readouterr().err


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Ticket A" in out and "Ticket C" in out
