"""Every example script must run to completion (their internal asserts
double as integration checks)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "airfare_broker",
        "insurance_policies",
        "synthetic_workload",
        "lifecycle_monitoring",
    } <= names
