"""Integration tests for the paper's four design requirements (§1).

i.   Expressiveness: realistic temporal behavior is capturable.
ii.  Compact, stable interface: the vocabulary is small and governed.
iii. No forced revisions: publishing new contracts (or growing the
     vocabulary) never changes existing contracts' query behavior.
iv.  Declarative clauses close to natural language.
"""

from repro.broker.database import BrokerConfig, ContractDatabase
from repro.broker.vocabulary import EventVocabulary
from repro.workload.airfare import QUERIES, all_ticket_specs


class TestRequirementIII:
    """Published contracts need no revision when the world grows."""

    def test_new_contract_does_not_change_existing_answers(self):
        db = ContractDatabase()
        for spec in all_ticket_specs():
            db.register_spec(spec)
        before = {
            name: set(db.query(info["ltl"]).contract_names)
            for name, info in QUERIES.items()
        }
        # a very permissive newcomer
        db.register("Ticket Z", ["F classUpgrade", "G(a -> F b)"])
        for name, info in QUERIES.items():
            after = set(db.query(info["ltl"]).contract_names)
            assert before[name] <= after
            assert after - before[name] <= {"Ticket Z"}

    def test_vocabulary_growth_keeps_contracts_valid(self):
        vocab = EventVocabulary.of(
            "purchase", "use", "missedFlight", "refund", "dateChange"
        )
        db = ContractDatabase(vocabulary=vocab)
        for spec in all_ticket_specs():
            db.register_spec(spec)
        answers_before = set(
            db.query(QUERIES["refund_after_miss"]["ltl"]).contract_names
        )

        # grow the shared vocabulary (a new event appears in the market)
        db.vocabulary = db.vocabulary.extended(
            classUpgrade="cabin class upgraded"
        )
        db.register(
            "Upgrade-friendly",
            ["G(dateChange -> F classUpgrade)"],
        )
        # existing contracts were not revised, answers are unchanged
        answers_after = set(
            db.query(QUERIES["refund_after_miss"]["ltl"]).contract_names
        )
        assert answers_before == answers_after

    def test_deregistration_reverts_cleanly(self):
        db = ContractDatabase()
        for spec in all_ticket_specs():
            db.register_spec(spec)
        query = QUERIES["refund_or_change_after_miss"]["ltl"]
        baseline = set(db.query(query).contract_names)
        extra = db.register("Temp", ["F(missedFlight && F refund)"])
        assert set(db.query(query).contract_names) == baseline | {"Temp"}
        db.deregister(extra.contract_id)
        assert set(db.query(query).contract_names) == baseline


class TestRequirementII:
    def test_interface_is_the_vocabulary(self):
        """Customers and providers share only event names — queries over
        the same five events reach every airfare regardless of how each
        airline phrased its clauses."""
        db = ContractDatabase()
        for spec in all_ticket_specs():
            db.register_spec(spec)
        vocabularies = {c.vocabulary for c in db.contracts()}
        assert len(vocabularies) == 1  # one compact shared interface


class TestRequirementIV:
    def test_clause_counts_match_natural_language(self):
        """Example 2's natural-language policies map to at most a few
        declarative clauses each (beyond the shared domain axioms)."""
        from repro.workload.airfare import TICKET_CLAUSES

        assert len(TICKET_CLAUSES["Ticket A"]) == 1
        assert len(TICKET_CLAUSES["Ticket B"]) == 1
        assert len(TICKET_CLAUSES["Ticket C"]) == 3
