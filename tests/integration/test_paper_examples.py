"""End-to-end reproduction of the paper's worked examples through the
full broker pipeline (registration → index → projections → query)."""

from repro.broker.database import BrokerConfig, ContractDatabase
from repro.broker.relational import AttributeFilter, eq, le
from repro.workload.airfare import QUERIES, all_ticket_specs


class TestExample2EndToEnd:
    """'The cheapest fare from San Diego to New York that allows a
    partial refund or a date change after the first leg was missed.'"""

    def test_intro_scenario(self, airfare_db):
        result = airfare_db.query(
            QUERIES["refund_or_change_after_miss"]["ltl"],
            AttributeFilter.where(
                eq("origin", "SAN"), eq("destination", "JFK")
            ),
        )
        assert set(result.contract_names) == {"Ticket A", "Ticket B"}
        # the cheapest qualifying fare is Ticket B
        cheapest = min(
            (airfare_db.get(cid) for cid in result.contract_ids),
            key=lambda c: c.attributes["price"],
        )
        assert cheapest.name == "Ticket B"

    def test_every_paper_query(self, airfare_db):
        for name, info in QUERIES.items():
            result = airfare_db.query(info["ltl"])
            assert set(result.contract_names) == info["expected"], name


class TestOptimizationEquivalence:
    """The four optimization combinations must return identical results
    on every paper query — the paper's soundness claims for §4 and §5."""

    def test_all_modes_agree(self):
        configs = {
            "none": BrokerConfig(use_prefilter=False, use_projections=False),
            "prefilter": BrokerConfig(use_prefilter=True,
                                      use_projections=False),
            "projections": BrokerConfig(use_prefilter=False,
                                        use_projections=True),
            "both": BrokerConfig(use_prefilter=True, use_projections=True),
        }
        databases = {}
        for key, config in configs.items():
            db = ContractDatabase(config)
            for spec in all_ticket_specs():
                db.register_spec(spec)
            databases[key] = db
        for name, info in QUERIES.items():
            results = {
                key: set(db.query(info["ltl"]).contract_names)
                for key, db in databases.items()
            }
            assert len(set(map(frozenset, results.values()))) == 1, (
                name, results
            )

    def test_prefilter_reduces_checks(self, airfare_db):
        unoptimized = airfare_db.query(
            "F classUpgrade", use_prefilter=False, use_projections=False
        )
        optimized = airfare_db.query(
            "F classUpgrade", use_prefilter=True, use_projections=False
        )
        assert optimized.stats.checked <= unoptimized.stats.checked
        assert optimized.stats.checked == 0  # nobody cites classUpgrade
