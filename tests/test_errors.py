"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AutomatonError,
    BrokerError,
    IndexError_,
    LTLSyntaxError,
    ProjectionError,
    ReproError,
    TranslationError,
    WorkloadError,
)


class TestHierarchy:
    @pytest.mark.parametrize("cls", [
        LTLSyntaxError, AutomatonError, TranslationError, IndexError_,
        ProjectionError, BrokerError, WorkloadError,
    ])
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, ReproError)

    def test_single_guard_catches_everything(self):
        """A downstream application can wrap broker calls in one handler."""
        from repro.broker.database import ContractDatabase

        db = ContractDatabase()
        with pytest.raises(ReproError):
            db.get(123)
        with pytest.raises(ReproError):
            db.register("bad", "p &&")


class TestSyntaxErrorDetails:
    def test_position_carried(self):
        err = LTLSyntaxError("boom", text="p @", position=2)
        assert err.position == 2
        assert "offset 2" in str(err)

    def test_position_optional(self):
        err = LTLSyntaxError("boom")
        assert "offset" not in str(err)
