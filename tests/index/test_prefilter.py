"""Tests for the prefilter index, including the §4 soundness property:
the candidate set always contains every permitting contract."""

import pytest
from hypothesis import given, settings

from repro.automata.labels import Label
from repro.automata.ltl2ba import translate
from repro.core.permission import permits
from repro.errors import IndexError_
from repro.index.prefilter import PrefilterIndex
from repro.ltl.parser import parse

from ..strategies import formulas


class TestExample10:
    """Example 10: indexing Tickets A and C, querying Figure 1b."""

    @pytest.fixture
    def index(self, airfare_contracts):
        index = PrefilterIndex(depth=2)
        for name in ("Ticket A", "Ticket C"):
            c = airfare_contracts[name]
            index.add_contract(c.contract_id, c.ba, c.vocabulary)
        return index

    def test_single_literal_lookups(self, index, airfare_contracts):
        a = airfare_contracts["Ticket A"].contract_id
        c = airfare_contracts["Ticket C"].contract_id
        # S(m): both tickets have missedFlight transitions
        assert index.lookup(Label.parse("missedFlight")) == {a, c}
        # S(r): only Ticket A can ever refund
        assert index.lookup(Label.parse("refund")) == {a}

    def test_prefiltering_avoids_ticket_c(self, index, airfare_contracts):
        a = airfare_contracts["Ticket A"].contract_id
        q = translate(parse("F(missedFlight && F refund)"))
        assert index.candidates(q) == {a}


class TestLookupSemantics:
    def test_true_label_selects_universe(self, airfare_contracts):
        index = PrefilterIndex(depth=2)
        for c in airfare_contracts.values():
            index.add_contract(c.contract_id, c.ba, c.vocabulary)
        assert index.lookup(Label.parse("true")) == index.universe

    def test_long_label_returns_superset(self, airfare_contracts):
        index = PrefilterIndex(depth=1)
        for c in airfare_contracts.values():
            index.add_contract(c.contract_id, c.ba, c.vocabulary)
        long_label = Label.parse("!refund & !use & !dateChange")
        exact_like = Label.parse("!refund")
        assert index.lookup(long_label) <= index.lookup(exact_like)

    def test_unknown_event_excluded(self, airfare_contracts):
        index = PrefilterIndex(depth=2)
        c = airfare_contracts["Ticket A"]
        index.add_contract(c.contract_id, c.ba, c.vocabulary)
        assert index.lookup(Label.parse("classUpgrade")) == frozenset()


class TestRegistration:
    def test_duplicate_rejected(self, airfare_contracts):
        index = PrefilterIndex()
        c = airfare_contracts["Ticket A"]
        index.add_contract(c.contract_id, c.ba, c.vocabulary)
        with pytest.raises(IndexError_):
            index.add_contract(c.contract_id, c.ba, c.vocabulary)

    def test_remove(self, airfare_contracts):
        index = PrefilterIndex()
        c = airfare_contracts["Ticket A"]
        index.add_contract(c.contract_id, c.ba, c.vocabulary)
        index.remove_contract(c.contract_id)
        assert index.universe == frozenset()
        assert index.lookup(Label.parse("refund")) == frozenset()

    def test_remove_unknown_rejected(self):
        index = PrefilterIndex()
        with pytest.raises(IndexError_):
            index.remove_contract(42)

    def test_stats_populated(self, airfare_contracts):
        index = PrefilterIndex()
        c = airfare_contracts["Ticket A"]
        index.add_contract(c.contract_id, c.ba, c.vocabulary)
        assert index.stats.contracts == 1
        assert index.stats.labels_indexed > 0
        assert index.stats.node_insertions > 0


class TestSoundness:
    """§4.2: pruning must never lose a permitting contract, for any index
    depth, including labels longer than the cap."""

    @given(formulas(max_depth=3), formulas(max_depth=3),
           formulas(max_depth=3))
    @settings(max_examples=80, deadline=None)
    def test_candidates_superset_of_permitted(
        self, contract1, contract2, query_formula
    ):
        index = PrefilterIndex(depth=2)
        contracts = {}
        for cid, formula in enumerate((contract1, contract2)):
            ba = translate(formula)
            contracts[cid] = (ba, formula.variables())
            index.add_contract(cid, ba, formula.variables())
        query_ba = translate(query_formula)
        candidates = index.candidates(query_ba)
        permitted = {
            cid
            for cid, (ba, vocab) in contracts.items()
            if permits(ba, query_ba, vocab)
        }
        assert permitted <= candidates

    @given(formulas(max_depth=3), formulas(max_depth=3))
    @settings(max_examples=50, deadline=None)
    def test_depth_one_still_sound(self, contract_formula, query_formula):
        index = PrefilterIndex(depth=1)
        ba = translate(contract_formula)
        vocab = contract_formula.variables()
        index.add_contract(0, ba, vocab)
        query_ba = translate(query_formula)
        if permits(ba, query_ba, vocab):
            assert 0 in index.candidates(query_ba)


class TestProbeCostEstimate:
    """The structural probe-cost estimate the cost-based planner prices
    index evaluation with."""

    def test_short_label_costs_one_walk(self):
        from repro.index.condition import CondLabel

        index = PrefilterIndex(depth=2)
        assert index.estimate_probe_cost(
            CondLabel(Label.parse("refund"))
        ) == 2  # one trie walk + the leaf itself

    def test_long_label_fans_out_into_subset_probes(self):
        from math import comb

        from repro.index.condition import CondLabel

        index = PrefilterIndex(depth=2)
        label = Label.parse("!a & !b & !c & !d & !e")
        cost = index.estimate_probe_cost(CondLabel(label))
        assert cost == comb(5, 2) + 1

    def test_shared_subtrees_count_per_occurrence(self):
        from repro.index.condition import CondLabel, CondOr, make_and

        index = PrefilterIndex(depth=2)
        leaf = CondLabel(Label.parse("refund"))
        shared = CondOr((leaf, CondLabel(Label.parse("use"))))
        # evaluation revisits ``shared`` once per occurrence (only label
        # lookups are memoized), so doubling the occurrences must raise
        # the estimate even though no new distinct node appears
        once = index.estimate_probe_cost(make_and([shared, leaf]))
        twice = index.estimate_probe_cost(
            make_and([shared, CondOr((shared, leaf))])
        )
        assert twice > once

    def test_planner_prices_wide_conditions_off(self, airfare_contracts):
        # end to end: the wider a condition, the costlier the estimate
        index = PrefilterIndex(depth=2)
        for c in airfare_contracts.values():
            index.add_contract(c.contract_id, c.ba, c.vocabulary)
        from repro.index.pruning import pruning_condition

        narrow = pruning_condition(translate(parse("F refund")))
        wide = pruning_condition(translate(parse(
            "F(missedFlight && F(refund || dateChange)) && "
            "G(use -> !F refund) && F(dateChange && F use)"
        )))
        assert index.estimate_probe_cost(wide) > index.estimate_probe_cost(
            narrow
        )


class TestSerialization:
    def test_round_trip_preserves_candidates(self, airfare_contracts):
        import json

        index = PrefilterIndex(depth=2)
        for c in airfare_contracts.values():
            index.add_contract(c.contract_id, c.ba, c.vocabulary)
        doc = json.loads(json.dumps(index.to_dict()))
        restored = PrefilterIndex.from_dict(doc)
        assert restored.depth == index.depth
        assert restored.num_nodes == index.num_nodes
        assert restored.universe == index.universe
        query = translate(parse("F(missedFlight && F refund)"))
        assert restored.candidates(query) == index.candidates(query)

    def test_round_trip_with_id_remap(self, airfare_contracts):
        index = PrefilterIndex(depth=2)
        for c in airfare_contracts.values():
            index.add_contract(c.contract_id, c.ba, c.vocabulary)
        id_map = {
            cid: slot for slot, cid in enumerate(sorted(index.universe))
        }
        restored = PrefilterIndex.from_dict(index.to_dict(id_map))
        assert restored.universe == set(id_map.values())

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(IndexError_):
            PrefilterIndex.from_dict({"depth": 2})
        with pytest.raises(IndexError_):
            PrefilterIndex.from_dict(
                {"depth": 2, "contracts": [], "stats": {},
                 "trie": {"depth": 3, "nodes": []}}
            )
