"""Unit tests for the set-trie DAG."""

import pytest

from repro.automata.labels import neg, pos
from repro.errors import IndexError_
from repro.index.trie import SetTrie


class TestInsertion:
    def test_insert_indexes_all_consistent_subsets(self):
        trie = SetTrie(depth=2)
        expansion = frozenset([pos("a"), pos("b"), neg("c")])
        trie.insert_expansion(expansion, 7)
        assert trie.get([pos("a")]) == {7}
        assert trie.get([pos("a"), neg("c")]) == {7}
        assert trie.get([]) == {7}

    def test_contradictory_subsets_skipped(self):
        trie = SetTrie(depth=2)
        # expansions of unconstrained events contain both polarities
        expansion = frozenset([pos("a"), pos("m"), neg("m")])
        trie.insert_expansion(expansion, 1)
        assert trie.get([pos("m")]) == {1}
        assert trie.get([neg("m")]) == {1}
        assert trie.get([pos("m"), neg("m")]) == set()

    def test_depth_cap_respected(self):
        trie = SetTrie(depth=1)
        trie.insert_expansion(frozenset([pos("a"), pos("b")]), 1)
        assert trie.get([pos("a")]) == {1}
        with pytest.raises(IndexError_):
            trie.get([pos("a"), pos("b")])

    def test_multiple_contracts_share_nodes(self):
        trie = SetTrie(depth=1)
        trie.insert_expansion(frozenset([pos("a")]), 1)
        trie.insert_expansion(frozenset([pos("a")]), 2)
        assert trie.get([pos("a")]) == {1, 2}

    def test_insert_returns_touched_count(self):
        trie = SetTrie(depth=1)
        touched = trie.insert_expansion(frozenset([pos("a"), pos("b")]), 1)
        assert touched == 3  # root + {a} + {b}

    def test_reinsert_is_idempotent(self):
        trie = SetTrie(depth=1)
        expansion = frozenset([pos("a")])
        trie.insert_expansion(expansion, 1)
        assert trie.insert_expansion(expansion, 1) == 0


class TestLookup:
    def test_missing_node_is_empty(self):
        trie = SetTrie(depth=2)
        assert trie.get([pos("nope")]) == set()

    def test_root_lookup(self):
        trie = SetTrie(depth=2)
        assert trie.get([]) == set()
        trie.insert_expansion(frozenset([pos("a")]), 3)
        assert trie.get([]) == {3}

    def test_navigation_is_order_insensitive(self):
        trie = SetTrie(depth=2)
        trie.insert_expansion(frozenset([pos("a"), neg("b")]), 1)
        assert trie.get([neg("b"), pos("a")]) == {1}
        assert trie.get([pos("a"), neg("b")]) == {1}


class TestRemoval:
    def test_remove_contract(self):
        trie = SetTrie(depth=2)
        trie.insert_expansion(frozenset([pos("a"), pos("b")]), 1)
        trie.insert_expansion(frozenset([pos("a")]), 2)
        trie.remove_contract(1)
        assert trie.get([pos("a")]) == {2}
        assert trie.get([pos("b")]) == set()


class TestShape:
    def test_invalid_depth(self):
        with pytest.raises(IndexError_):
            SetTrie(depth=0)

    def test_node_and_size_accounting(self):
        trie = SetTrie(depth=2)
        trie.insert_expansion(frozenset([pos("a"), pos("b")]), 1)
        # nodes: root, {a}, {b}, {a,b}
        assert trie.num_nodes == 4
        assert trie.size_estimate() > 0

    def test_dag_sharing(self):
        """{a,b} is reachable through both {a} and {b} conceptually; the
        node exists once."""
        trie = SetTrie(depth=2)
        trie.insert_expansion(frozenset([pos("a"), pos("b"), pos("c")]), 1)
        keys = [node.key for node in trie.nodes()]
        assert len(keys) == len(set(keys))
