"""Unit tests for the set-trie DAG."""

import pytest

from repro.automata.labels import neg, pos
from repro.errors import IndexError_
from repro.index.trie import SetTrie


class TestInsertion:
    def test_insert_indexes_all_consistent_subsets(self):
        trie = SetTrie(depth=2)
        expansion = frozenset([pos("a"), pos("b"), neg("c")])
        trie.insert_expansion(expansion, 7)
        assert trie.get([pos("a")]) == {7}
        assert trie.get([pos("a"), neg("c")]) == {7}
        assert trie.get([]) == {7}

    def test_contradictory_subsets_skipped(self):
        trie = SetTrie(depth=2)
        # expansions of unconstrained events contain both polarities
        expansion = frozenset([pos("a"), pos("m"), neg("m")])
        trie.insert_expansion(expansion, 1)
        assert trie.get([pos("m")]) == {1}
        assert trie.get([neg("m")]) == {1}
        assert trie.get([pos("m"), neg("m")]) == set()

    def test_depth_cap_respected(self):
        trie = SetTrie(depth=1)
        trie.insert_expansion(frozenset([pos("a"), pos("b")]), 1)
        assert trie.get([pos("a")]) == {1}
        with pytest.raises(IndexError_):
            trie.get([pos("a"), pos("b")])

    def test_multiple_contracts_share_nodes(self):
        trie = SetTrie(depth=1)
        trie.insert_expansion(frozenset([pos("a")]), 1)
        trie.insert_expansion(frozenset([pos("a")]), 2)
        assert trie.get([pos("a")]) == {1, 2}

    def test_insert_returns_touched_count(self):
        trie = SetTrie(depth=1)
        touched = trie.insert_expansion(frozenset([pos("a"), pos("b")]), 1)
        assert touched == 3  # root + {a} + {b}

    def test_reinsert_is_idempotent(self):
        trie = SetTrie(depth=1)
        expansion = frozenset([pos("a")])
        trie.insert_expansion(expansion, 1)
        assert trie.insert_expansion(expansion, 1) == 0


class TestLookup:
    def test_missing_node_is_empty(self):
        trie = SetTrie(depth=2)
        assert trie.get([pos("nope")]) == set()

    def test_root_lookup(self):
        trie = SetTrie(depth=2)
        assert trie.get([]) == set()
        trie.insert_expansion(frozenset([pos("a")]), 3)
        assert trie.get([]) == {3}

    def test_navigation_is_order_insensitive(self):
        trie = SetTrie(depth=2)
        trie.insert_expansion(frozenset([pos("a"), neg("b")]), 1)
        assert trie.get([neg("b"), pos("a")]) == {1}
        assert trie.get([pos("a"), neg("b")]) == {1}


class TestRemoval:
    def test_remove_contract(self):
        trie = SetTrie(depth=2)
        trie.insert_expansion(frozenset([pos("a"), pos("b")]), 1)
        trie.insert_expansion(frozenset([pos("a")]), 2)
        trie.remove_contract(1)
        assert trie.get([pos("a")]) == {2}
        assert trie.get([pos("b")]) == set()

    def test_remove_prunes_emptied_nodes(self):
        trie = SetTrie(depth=2)
        trie.insert_expansion(frozenset([pos("a"), pos("b")]), 1)
        assert trie.num_nodes == 4
        trie.remove_contract(1)
        # only the root remains; emptied subset nodes are detached
        assert trie.num_nodes == 1
        assert trie.size_estimate() == 0

    def test_remove_keeps_nodes_shared_with_other_contracts(self):
        trie = SetTrie(depth=2)
        trie.insert_expansion(frozenset([pos("a"), pos("b")]), 1)
        trie.insert_expansion(frozenset([pos("a")]), 2)
        trie.remove_contract(1)
        # {a} survives for contract 2; {b} and {a,b} are pruned
        assert trie.num_nodes == 2
        assert trie.get([pos("a")]) == {2}

    def test_churn_does_not_grow_node_count(self):
        trie = SetTrie(depth=2)
        expansion = frozenset([pos("a"), pos("b"), neg("c")])
        trie.insert_expansion(expansion, 0)
        baseline = trie.num_nodes
        for cycle in range(1, 6):
            trie.remove_contract(cycle - 1)
            trie.insert_expansion(expansion, cycle)
            assert trie.num_nodes == baseline


class TestSerialization:
    def _sample(self):
        trie = SetTrie(depth=2)
        trie.insert_expansion(frozenset([pos("a"), neg("b")]), 1)
        trie.insert_expansion(frozenset([pos("a"), pos("c")]), 2)
        return trie

    def test_round_trip_preserves_lookups(self):
        import json

        trie = self._sample()
        doc = json.loads(json.dumps(trie.to_dict()))
        restored = SetTrie.from_dict(doc)
        assert restored.depth == trie.depth
        assert restored.num_nodes == trie.num_nodes
        assert restored.size_estimate() == trie.size_estimate()
        for query in ([], [pos("a")], [neg("b")], [pos("a"), pos("c")]):
            assert restored.get(query) == trie.get(query)

    def test_round_trip_with_id_remap(self):
        trie = self._sample()
        restored = SetTrie.from_dict(trie.to_dict(id_map={1: 0, 2: 1}))
        assert restored.get([pos("a")]) == {0, 1}
        assert restored.get([neg("b")]) == {0}

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(IndexError_):
            SetTrie.from_dict({"nodes": []})
        with pytest.raises(IndexError_):
            SetTrie.from_dict({"depth": 1, "nodes": "oops"})

    def test_from_dict_rejects_overdeep_key(self):
        doc = {
            "depth": 1,
            "nodes": [{"key": ["a", "b"], "contracts": [1]}],
        }
        with pytest.raises(IndexError_):
            SetTrie.from_dict(doc)


class TestShape:
    def test_invalid_depth(self):
        with pytest.raises(IndexError_):
            SetTrie(depth=0)

    def test_node_and_size_accounting(self):
        trie = SetTrie(depth=2)
        trie.insert_expansion(frozenset([pos("a"), pos("b")]), 1)
        # nodes: root, {a}, {b}, {a,b}
        assert trie.num_nodes == 4
        assert trie.size_estimate() > 0

    def test_dag_sharing(self):
        """{a,b} is reachable through both {a} and {b} conceptually; the
        node exists once."""
        trie = SetTrie(depth=2)
        trie.insert_expansion(frozenset([pos("a"), pos("b"), pos("c")]), 1)
        keys = [node.key for node in trie.nodes()]
        assert len(keys) == len(set(keys))
