"""Tests for the complete (exact-lasso) pruning conditions."""

from hypothesis import given, settings

from repro.automata.buchi import BuchiAutomaton
from repro.automata.labels import Label
from repro.automata.ltl2ba import translate
from repro.core.permission import permits
from repro.index.complete_pruning import complete_pruning_condition
from repro.index.condition import CondFalse, CondTrue, to_dnf
from repro.index.prefilter import PrefilterIndex
from repro.index.pruning import pruning_condition
from repro.ltl.parser import parse

from ..strategies import formulas


class TestExactEnumeration:
    def test_single_lasso(self):
        ba = BuchiAutomaton.make(
            "i", [("i", "a", "f"), ("f", "c", "f")], final=["f"]
        )
        dnf = to_dnf(complete_pruning_condition(ba))
        assert [
            {str(leaf.label) for leaf in term} for term in dnf
        ] == [{"a", "c"}]

    def test_two_prefixes(self):
        ba = BuchiAutomaton.make(
            "i",
            [("i", "a", "f"), ("i", "b", "f"), ("f", "c", "f")],
            final=["f"],
        )
        dnf = to_dnf(complete_pruning_condition(ba))
        terms = {frozenset(str(l.label) for l in term) for term in dnf}
        assert terms == {frozenset({"a", "c"}), frozenset({"b", "c"})}

    def test_multi_step_cycle_fully_required(self):
        """Unlike the approximation, the complete condition demands every
        label of the cycle, not just the knot's incoming one."""
        ba = BuchiAutomaton.make(
            "i",
            [("i", "a", "f"), ("f", "x", "m"), ("m", "y", "f")],
            final=["f"],
        )
        complete_terms = {
            frozenset(str(l.label) for l in term)
            for term in to_dnf(complete_pruning_condition(ba))
        }
        assert complete_terms == {frozenset({"a", "x", "y"})}
        approx_terms = {
            frozenset(str(l.label) for l in term)
            for term in to_dnf(pruning_condition(ba))
        }
        # the approximation only requires the incoming 'y'
        assert approx_terms == {frozenset({"a", "y"})}

    def test_no_cycle_is_false(self):
        ba = BuchiAutomaton.make("i", [("i", "a", "f")], final=["f"])
        assert isinstance(complete_pruning_condition(ba), CondFalse)

    def test_unconstrained_is_true(self):
        ba = BuchiAutomaton.make("i", [("i", "true", "i")], final=["i"])
        assert isinstance(complete_pruning_condition(ba), CondTrue)

    def test_budget_falls_back_to_true_prefix(self):
        # a dense automaton with many simple paths; budget 1 must give a
        # sound (weaker) condition rather than an exponential enumeration
        ba = BuchiAutomaton.make(
            "i",
            [("i", "a", "m1"), ("i", "b", "m2"), ("m1", "c", "f"),
             ("m2", "d", "f"), ("f", "e", "f")],
            final=["f"],
        )
        condition = complete_pruning_condition(ba, max_paths=1)
        # must still select at least everything the exact condition does
        sets = {
            Label.parse("a"): frozenset({1}),
            Label.parse("c"): frozenset({1}),
            Label.parse("e"): frozenset({1}),
        }
        assert 1 in condition.evaluate(
            lambda l: sets.get(l, frozenset()), frozenset({1, 2})
        )


class TestSoundnessAndPrecision:
    @given(formulas(max_depth=3), formulas(max_depth=3))
    @settings(max_examples=60, deadline=None)
    def test_sound_and_no_looser_needed(self, contract_formula, query_formula):
        """Complete conditions are sound: they keep every permitting
        contract."""
        index = PrefilterIndex(depth=2)
        ba = translate(contract_formula)
        vocabulary = contract_formula.variables()
        index.add_contract(0, ba, vocabulary)
        query_ba = translate(query_formula)
        candidates = index.evaluate(complete_pruning_condition(query_ba))
        if permits(ba, query_ba, vocabulary):
            assert 0 in candidates

    @given(formulas(max_depth=3))
    @settings(max_examples=60, deadline=None)
    def test_at_most_as_many_candidates_as_approximation(self, query_formula):
        """On a fixed database, the complete condition never selects more
        candidates than the approximated one."""
        index = PrefilterIndex(depth=2)
        for cid, text in enumerate(
            ("G(a -> F b)", "F(b && F c)", "G !c", "a U (b U c)")
        ):
            formula = parse(text)
            index.add_contract(cid, translate(formula), formula.variables())
        query_ba = translate(query_formula)
        complete = index.evaluate(complete_pruning_condition(query_ba))
        approx = index.evaluate(pruning_condition(query_ba))
        assert complete <= approx
