"""Tests for the condition nodes' cached hashing and the index's
per-evaluation lookup memoization."""

from repro.automata.labels import Label
from repro.index.condition import (
    CondAnd,
    CondLabel,
    CondOr,
    make_and,
    make_or,
)
from repro.index.prefilter import PrefilterIndex


def leaf(name: str) -> CondLabel:
    return CondLabel(Label.parse(name))


class TestCachedHash:
    def test_equal_trees_equal_hash(self):
        a = make_and([leaf("a"), make_or([leaf("b"), leaf("c")])])
        b = make_and([leaf("a"), make_or([leaf("b"), leaf("c")])])
        assert a == b
        assert hash(a) == hash(b)

    def test_different_trees_differ(self):
        a = make_and([leaf("a"), leaf("b")])
        b = make_or([leaf("a"), leaf("b")])
        assert a != b

    def test_and_or_distinguished_by_hash_tag(self):
        children = (leaf("a"), leaf("b"))
        assert hash(CondAnd(children)) != hash(CondOr(children))

    def test_deep_tree_hashing_is_fast(self):
        """Building a deep chain must stay well under a second — the
        regression this guards took tens of milliseconds per query."""
        import time

        start = time.perf_counter()
        condition = leaf("x0")
        for i in range(1, 300):
            condition = make_and([condition, make_or([leaf(f"x{i}"),
                                                      leaf(f"y{i}")])])
        # deduplication requires hashing the whole tree repeatedly
        _ = {condition, condition}
        assert time.perf_counter() - start < 1.0


class TestEvaluationMemo:
    def test_lookup_called_once_per_label(self):
        index = PrefilterIndex(depth=2)
        calls = []
        original = index.lookup

        def counting_lookup(label):
            calls.append(label)
            return original(label)

        index.lookup = counting_lookup  # type: ignore[method-assign]
        condition = make_or([
            make_and([leaf("a"), leaf("b")]),
            make_and([leaf("a"), leaf("c")]),
            leaf("a"),
        ])
        index.evaluate(condition)
        assert calls.count(Label.parse("a")) == 1
