"""Property tests of the set-trie against a brute-force reference.

The trie's contract: for any label ``λ`` with ``|λ| <= depth``,
``lookup(λ)`` returns exactly the contracts owning a label whose
expansion contains ``λ``; for longer labels the result is a superset of
that exact set.  We check both against a naive scan over all stored
expansions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.labels import Label
from repro.index.prefilter import PrefilterIndex
from repro.automata.ltl2ba import translate

from ..strategies import EVENTS, formulas, labels


def brute_force_s(contracts: dict, label: Label) -> frozenset:
    """The exact S(λ): contracts with a label compatible with λ."""
    out = set()
    for contract_id, (ba, vocabulary) in contracts.items():
        for gamma in ba.labels():
            if label.literals <= gamma.expansion(vocabulary):
                out.add(contract_id)
                break
    return frozenset(out)


@st.composite
def contract_sets(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    contracts = {}
    for contract_id in range(count):
        formula = draw(formulas(max_depth=3))
        contracts[contract_id] = (translate(formula), formula.variables())
    return contracts


@pytest.mark.slow
class TestLookupAgainstBruteForce:
    @given(contract_sets(), labels())
    @settings(max_examples=100, deadline=None)
    def test_exact_for_short_labels(self, contracts, label):
        index = PrefilterIndex(depth=3)
        for contract_id, (ba, vocabulary) in contracts.items():
            index.add_contract(contract_id, ba, vocabulary)
        if len(label.literals) <= 3:
            assert index.lookup(label) == brute_force_s(contracts, label)

    @given(contract_sets(), labels())
    @settings(max_examples=100, deadline=None)
    def test_superset_for_long_labels(self, contracts, label):
        index = PrefilterIndex(depth=1)
        for contract_id, (ba, vocabulary) in contracts.items():
            index.add_contract(contract_id, ba, vocabulary)
        assert brute_force_s(contracts, label) <= index.lookup(label)

    @given(contract_sets())
    @settings(max_examples=60, deadline=None)
    def test_true_label_is_contracts_with_some_label(self, contracts):
        index = PrefilterIndex(depth=2)
        for contract_id, (ba, vocabulary) in contracts.items():
            index.add_contract(contract_id, ba, vocabulary)
        expected = frozenset(
            cid for cid, (ba, _) in contracts.items()
            if ba.num_transitions > 0
        )
        assert index.lookup(Label.parse("true")) == expected
