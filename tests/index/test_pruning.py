"""Tests for pruning-condition extraction (Algorithm 1).

Includes a hand-built version of the Figure 2d query from Example 9, the
paper's worked pruning-condition example.
"""

from repro.automata.buchi import BuchiAutomaton
from repro.automata.labels import Label
from repro.automata.ltl2ba import translate
from repro.index.condition import (
    CondFalse,
    CondLabel,
    CondTrue,
    to_dnf,
)
from repro.index.pruning import pruning_condition
from repro.ltl.parser import parse


def figure_2d() -> BuchiAutomaton:
    """Figure 2d: tickets changeable indefinitely even after a cancel or
    a miss-plus-reschedule.  Final state: s2."""
    return BuchiAutomaton.make(
        initial="init",
        transitions=[
            ("init", "true", "init"),
            ("init", "flightCanceled", "s2"),
            ("init", "miss", "s1"),
            ("s1", "true", "s1"),
            ("s1", "changeApproved", "s2"),
            ("s2", "true", "s3"),
            ("s3", "requestChange", "s4"),
            ("s4", "changeApproved", "s2"),
        ],
        final=["s2"],
    )


class TestExample9:
    def test_condition_structure(self):
        cond = pruning_condition(figure_2d())
        dnf = to_dnf(cond)
        # Expected (Example 9, with the implementation's cycle
        # approximation): prefixes (fc | (m & ca)) AND cycle entry (ca),
        # i.e. DNF {fc, ca} | {m, ca}.
        term_sets = {
            frozenset(str(leaf.label) for leaf in term) for term in dnf
        }
        assert term_sets == {
            frozenset({"flightCanceled", "changeApproved"}),
            frozenset({"miss", "changeApproved"}),
        }

    def test_candidates_require_cycle_label(self):
        cond = pruning_condition(figure_2d())
        sets = {
            Label.parse("flightCanceled"): frozenset({1}),
            Label.parse("miss"): frozenset({2}),
            Label.parse("requestChange"): frozenset({1, 2}),
            # changeApproved missing: nobody can close the cycle
        }
        result = cond.evaluate(
            lambda l: sets.get(l, frozenset()), frozenset({1, 2, 3})
        )
        assert result == frozenset()


class TestDegenerateShapes:
    def test_true_label_cycle_gives_unprunable_condition(self):
        ba = BuchiAutomaton.make(
            "i", [("i", "a", "f"), ("f", "true", "f")], final=["f"]
        )
        cond = pruning_condition(ba)
        # prefix needs S(a); the cycle is unconstrained
        assert to_dnf(cond) == [[CondLabel(Label.parse("a"))]]

    def test_fully_unconstrained_query_is_true(self):
        ba = BuchiAutomaton.make(
            "i", [("i", "true", "i")], final=["i"]
        )
        assert isinstance(pruning_condition(ba), CondTrue)

    def test_final_without_cycle_contributes_nothing(self):
        ba = BuchiAutomaton.make("i", [("i", "a", "f")], final=["f"])
        assert isinstance(pruning_condition(ba), CondFalse)

    def test_unreachable_final_ignored(self):
        ba = BuchiAutomaton.make(
            "i",
            [("i", "a", "i"), ("x", "b", "x")],
            final=["x"],
        )
        assert isinstance(pruning_condition(ba), CondFalse)

    def test_multiple_final_states_union(self):
        ba = BuchiAutomaton.make(
            "i",
            [
                ("i", "a", "f1"), ("f1", "c1", "f1"),
                ("i", "b", "f2"), ("f2", "c2", "f2"),
            ],
            final=["f1", "f2"],
        )
        dnf = to_dnf(pruning_condition(ba))
        term_sets = {
            frozenset(str(leaf.label) for leaf in term) for term in dnf
        }
        assert term_sets == {
            frozenset({"a", "c1"}), frozenset({"b", "c2"})
        }


class TestOnTranslatedQueries:
    def test_figure_1b_condition(self):
        """The Example 10 condition: S(m) & S(r) (modulo label combos)."""
        q = translate(parse("F(missedFlight && F refund)"))
        cond = pruning_condition(q)
        labels = {str(l) for l in cond.labels()}
        assert any("missedFlight" in l for l in labels)
        assert any("refund" in l for l in labels)

    def test_simple_eventuality(self):
        q = translate(parse("F p"))
        dnf = to_dnf(pruning_condition(q))
        assert [
            {str(leaf.label) for leaf in term} for term in dnf
        ] == [{"p"}]

    def test_globally_query(self):
        q = translate(parse("G p"))
        dnf = to_dnf(pruning_condition(q))
        assert [
            {str(leaf.label) for leaf in term} for term in dnf
        ] == [{"p"}]
