"""Unit tests for pruning-condition ASTs."""

from repro.automata.labels import Label
from repro.index.condition import (
    FALSE_CONDITION,
    TRUE_CONDITION,
    CondAnd,
    CondLabel,
    CondOr,
    make_and,
    make_or,
    to_dnf,
)

A = CondLabel(Label.parse("a"))
B = CondLabel(Label.parse("b"))
C = CondLabel(Label.parse("c"))

UNIVERSE = frozenset({1, 2, 3, 4})
SETS = {
    Label.parse("a"): frozenset({1, 2}),
    Label.parse("b"): frozenset({2, 3}),
    Label.parse("c"): frozenset({4}),
}


def lookup(label):
    return SETS.get(label, frozenset())


class TestEvaluation:
    def test_true_selects_universe(self):
        assert TRUE_CONDITION.evaluate(lookup, UNIVERSE) == UNIVERSE

    def test_false_selects_nothing(self):
        assert FALSE_CONDITION.evaluate(lookup, UNIVERSE) == frozenset()

    def test_label_lookup(self):
        assert A.evaluate(lookup, UNIVERSE) == frozenset({1, 2})

    def test_unknown_label_is_empty(self):
        unknown = CondLabel(Label.parse("zzz"))
        assert unknown.evaluate(lookup, UNIVERSE) == frozenset()

    def test_and_intersects(self):
        assert make_and([A, B]).evaluate(lookup, UNIVERSE) == frozenset({2})

    def test_or_unions(self):
        assert make_or([A, C]).evaluate(lookup, UNIVERSE) == frozenset(
            {1, 2, 4}
        )

    def test_nested(self):
        cond = make_or([make_and([A, B]), C])
        assert cond.evaluate(lookup, UNIVERSE) == frozenset({2, 4})

    def test_example_9_shape(self):
        """(S(fc) | (S(m) & S(ca))) & (S(rc) & S(ca)) evaluates correctly."""
        sets = {
            Label.parse("fc"): frozenset({1, 2}),
            Label.parse("m"): frozenset({3}),
            Label.parse("ca"): frozenset({1, 3}),
            Label.parse("rc"): frozenset({1, 3}),
        }
        cond = make_and([
            make_or([
                CondLabel(Label.parse("fc")),
                make_and([CondLabel(Label.parse("m")),
                          CondLabel(Label.parse("ca"))]),
            ]),
            make_and([CondLabel(Label.parse("rc")),
                      CondLabel(Label.parse("ca"))]),
        ])
        assert cond.evaluate(sets.get, UNIVERSE) == frozenset({1, 3})


class TestConstruction:
    def test_and_identity(self):
        assert make_and([TRUE_CONDITION, A]) == A

    def test_and_absorbing(self):
        assert make_and([A, FALSE_CONDITION]) == FALSE_CONDITION

    def test_and_empty_is_true(self):
        assert make_and([]) == TRUE_CONDITION

    def test_and_dedup_and_flatten(self):
        cond = make_and([A, CondAnd((A, B))])
        assert cond == CondAnd((A, B))

    def test_or_identity(self):
        assert make_or([FALSE_CONDITION, A]) == A

    def test_or_absorbing(self):
        assert make_or([A, TRUE_CONDITION]) == TRUE_CONDITION

    def test_or_empty_is_false(self):
        assert make_or([]) == FALSE_CONDITION

    def test_operators(self):
        assert (A & B) == CondAnd((A, B))
        assert (A | B) == CondOr((A, B))

    def test_labels_collects_leaves(self):
        cond = make_or([make_and([A, B]), C])
        assert cond.labels() == {
            Label.parse("a"), Label.parse("b"), Label.parse("c")
        }

    def test_str(self):
        assert str(A) == "S(a)"
        assert str(make_and([A, B])) == "(S(a) & S(b))"
        assert str(TRUE_CONDITION) == "TRUE"


class TestDNF:
    def test_true_false(self):
        assert to_dnf(TRUE_CONDITION) == [[]]
        assert to_dnf(FALSE_CONDITION) == []

    def test_leaf(self):
        assert to_dnf(A) == [[A]]

    def test_distributes(self):
        cond = make_and([make_or([A, B]), C])
        dnf = to_dnf(cond)
        assert [set(term) for term in dnf] == [{A, C}, {B, C}]

    def test_monotone_equivalence(self):
        """DNF evaluation equals tree evaluation."""
        cond = make_and([make_or([A, B]), make_or([C, A])])
        direct = cond.evaluate(lookup, UNIVERSE)
        via_dnf = frozenset()
        for term in to_dnf(cond):
            result = UNIVERSE
            for leaf in term:
                result &= leaf.evaluate(lookup, UNIVERSE)
            via_dnf |= result
        assert direct == via_dnf
