"""Tests for the query compilation cache and its database integration."""

import pytest

from repro.broker.cache import (
    QueryCompilationCache,
    normalized_query_key,
)
from repro.broker.database import BrokerConfig, ContractDatabase
from repro.ltl.parser import parse
from repro.workload.airfare import all_ticket_specs


def _db(**config_kwargs) -> ContractDatabase:
    db = ContractDatabase(BrokerConfig(**config_kwargs))
    for spec in all_ticket_specs():
        db.register_spec(spec)
    return db


class TestCacheUnit:
    def test_miss_then_hit(self):
        cache = QueryCompilationCache(capacity=4)
        first, hit1 = cache.compile(parse("F a"))
        second, hit2 = cache.compile(parse("F a"))
        assert (hit1, hit2) == (False, True)
        assert second is first
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_normalization_equivalent_queries_share_an_entry(self):
        # F a rewrites to true U a; the two texts must share one entry
        assert normalized_query_key(parse("F a")) == normalized_query_key(
            parse("true U a")
        )
        cache = QueryCompilationCache(capacity=4)
        entry, _ = cache.compile(parse("F a"))
        other, hit = cache.compile(parse("true U a"))
        assert hit
        assert other is entry
        assert len(cache) == 1

    def test_eviction_at_capacity(self):
        cache = QueryCompilationCache(capacity=2)
        cache.compile(parse("F a"))
        cache.compile(parse("F b"))
        cache.compile(parse("F c"))  # evicts the LRU entry (F a)
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.size == 2
        assert parse("F a") not in cache
        assert parse("F b") in cache and parse("F c") in cache

    def test_lru_order_refreshed_by_hits(self):
        cache = QueryCompilationCache(capacity=2)
        cache.compile(parse("F a"))
        cache.compile(parse("F b"))
        cache.compile(parse("F a"))  # refresh: F b becomes the LRU entry
        cache.compile(parse("F c"))
        assert parse("F a") in cache
        assert parse("F b") not in cache

    def test_zero_capacity_disables_storage(self):
        cache = QueryCompilationCache(capacity=0)
        cache.compile(parse("F a"))
        _, hit = cache.compile(parse("F a"))
        assert not hit
        assert len(cache) == 0
        assert cache.stats().misses == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueryCompilationCache(capacity=-1)

    def test_condition_is_lazy_and_memoized(self):
        cache = QueryCompilationCache()
        entry, _ = cache.compile(parse("F a"))
        assert not entry.has_condition
        condition = entry.condition
        assert entry.has_condition
        assert entry.condition is condition

    def test_clear_keeps_lifetime_counters(self):
        cache = QueryCompilationCache()
        cache.compile(parse("F a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().misses == 1


class TestDatabaseIntegration:
    def test_repeated_query_hits_cache(self):
        db = _db()
        q = "F(missedFlight && F refund)"
        cold = db.query(q)
        assert not cold.stats.cache_hit
        for _ in range(3):
            assert db.query(q).stats.cache_hit
        stats = db.cache_stats()
        assert stats.misses == 1 and stats.hits == 3

    def test_warm_workload_compilation_collapses(self):
        """Acceptance: a warm repeated workload pays translation and
        pruning-condition extraction only on the first call."""
        db = _db()
        q = ("F(missedFlight && F(refund || dateChange)) && "
             "G(dateChange -> F confirmation)")
        cold = db.query(q)
        warm = [db.query(q) for _ in range(20)]
        assert db.cache_stats().hits == 20
        assert all(r.stats.cache_hit for r in warm)
        # identical answers, and the warm calls' compile-side cost
        # (cache lookup + index evaluation) stays below the cold compile
        assert all(r.contract_ids == cold.contract_ids for r in warm)
        cold_compile = (cold.stats.translation_seconds
                        + cold.stats.prefilter_seconds)
        warm_compile = sorted(
            r.stats.translation_seconds + r.stats.prefilter_seconds
            for r in warm
        )[len(warm) // 2]
        assert warm_compile < cold_compile

    def test_cache_shared_across_query_entry_points(self):
        db = _db()
        db.query("F refund")
        assert db.permits_contract(1, "F refund")
        db.query_planned("F refund")
        db.explain(1, "F refund")
        stats = db.cache_stats()
        assert stats.misses == 1
        assert stats.hits == 3

    def test_precompute_for_workload_warms_the_cache(self):
        db = _db()
        db.precompute_for_workload(["F refund"])
        result = db.query("F refund")
        assert result.stats.cache_hit

    def test_capacity_configured_on_broker_config(self):
        db = _db(query_cache_capacity=1)
        db.query("F refund")
        db.query("F dateChange")  # evicts F refund
        assert db.cache_stats().evictions == 1
        repeat = db.query("F refund")
        assert not repeat.stats.cache_hit

    def test_disabled_cache_still_answers_correctly(self):
        db = _db(query_cache_capacity=0)
        first = db.query("F refund")
        second = db.query("F refund")
        assert first.contract_ids == second.contract_ids
        assert not second.stats.cache_hit

    def test_cached_results_identical_across_modes(self):
        db = _db()
        q = "F(missedFlight && F(refund || dateChange))"
        baseline = db.query(
            q, use_prefilter=False, use_projections=False
        ).contract_ids
        for pf in (False, True):
            for pj in (False, True):
                assert db.query(
                    q, use_prefilter=pf, use_projections=pj
                ).contract_ids == baseline

    def test_metrics_track_cache_counters(self):
        db = _db()
        db.query("F refund")
        db.query("F refund")
        assert db.metrics.counter_value("query.cache.misses") == 1
        assert db.metrics.counter_value("query.cache.hits") == 1
        snapshot = db.metrics_snapshot()
        assert snapshot["cache"]["hit_rate"] == pytest.approx(0.5)
        report = db.metrics_report()
        assert "hit rate" in report
        assert "query.total_seconds" in report


class TestTupleFastPathRemoved:
    def test_query_rejects_formula_ba_tuples(self):
        """The undocumented ``(formula, query_ba)`` tuple fast-path is
        gone: ``query`` accepts exactly what its annotation says."""
        from repro.automata.ltl2ba import translate

        db = _db()
        formula = parse("F refund")
        with pytest.raises(TypeError):
            db.query((formula, translate(formula)))

    def test_query_planned_reuses_compilation(self):
        db = _db()
        result = db.query_planned("F refund")
        assert "Ticket B" in result.contract_names
        assert db.cache_stats().misses == 1
        again = db.query_planned("F refund")
        assert again.stats.cache_hit
        assert again.contract_ids == result.contract_ids


class TestCacheUnderDistinctOptions:
    """One compiled entry serves every QueryOptions combination.

    The cache key is the normalized formula alone — the attribute
    filter, budgets, degradation policy, and index toggles are all
    applied *after* compilation, so a warm entry must never leak one
    call's options into the next call's answer.
    """

    QUERY = "F(missedFlight && F(refund || dateChange))"

    def test_hit_across_distinct_filters_stays_filter_correct(self):
        from repro.broker.options import QueryOptions
        from repro.broker.relational import AttributeFilter, eq

        db = _db()
        reference = _db(query_cache_capacity=0)  # never caches
        filters = [
            AttributeFilter.where(eq("airline", "United")),
            AttributeFilter.where(eq("cabin", "economy")),
            AttributeFilter.where(eq("price", 980)),
        ]
        db.query(self.QUERY)  # warm the entry
        for attribute_filter in filters:
            options = QueryOptions(attribute_filter=attribute_filter)
            warm = db.query(self.QUERY, options)
            assert warm.stats.cache_hit
            assert warm.contract_names == reference.query(
                self.QUERY, options
            ).contract_names

    def test_hit_across_budget_and_degradation_policies(self):
        from repro.broker.options import Degradation, QueryOptions

        db = _db()
        exact = db.query(self.QUERY)
        exact_names = set(exact.contract_names)

        degraded = db.query(
            self.QUERY,
            QueryOptions(step_budget=1, degradation=Degradation.MAYBE),
        )
        assert degraded.stats.cache_hit
        got = set(degraded.contract_names)
        maybe = set(degraded.maybe_names)
        assert got <= exact_names <= got | maybe

        dropped = db.query(
            self.QUERY,
            QueryOptions(step_budget=1, degradation=Degradation.DROP),
        )
        assert dropped.stats.cache_hit
        assert set(dropped.contract_names) <= exact_names

    def test_degraded_call_does_not_poison_exact_answers(self):
        from repro.broker.options import Degradation, QueryOptions

        db = _db()
        reference = _db(query_cache_capacity=0)
        # the *cold* call is the degraded one: whatever it caches must
        # still serve exact queries exactly
        db.query(
            self.QUERY,
            QueryOptions(step_budget=1, degradation=Degradation.MAYBE),
        )
        warm_exact = db.query(self.QUERY)
        assert warm_exact.stats.cache_hit
        assert not warm_exact.maybe_names
        assert warm_exact.contract_names == reference.query(
            self.QUERY
        ).contract_names

    def test_hit_across_index_toggle_overrides(self):
        from repro.broker.options import QueryOptions

        db = _db()
        baseline = db.query(
            self.QUERY,
            QueryOptions(use_prefilter=False, use_projections=False),
        )
        for use_prefilter in (False, True):
            for use_projections in (False, True):
                outcome = db.query(
                    self.QUERY,
                    QueryOptions(
                        use_prefilter=use_prefilter,
                        use_projections=use_projections,
                    ),
                )
                assert outcome.contract_ids == baseline.contract_ids
        # 4 toggle combinations after the cold compile = 4 hits
        assert db.cache_stats().misses == 1
        assert db.cache_stats().hits == 4
