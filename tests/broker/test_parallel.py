"""Tests for parallel registration."""

import pytest

from repro.broker.database import BrokerConfig, ContractDatabase
from repro.broker.parallel import register_many
from repro.workload.airfare import QUERIES, all_ticket_specs
from repro.workload.generator import WorkloadGenerator


def _specs():
    from repro.broker.contract import ContractSpec

    generator = WorkloadGenerator(vocabulary_size=6, seed=77)
    return [
        ContractSpec(name=f"c{i}", clauses=spec.clauses)
        for i, spec in enumerate(generator.generate_specs(6, 2))
    ]


class TestRegisterMany:
    def test_serial_path(self):
        db = ContractDatabase()
        contracts = register_many(db, _specs(), workers=1)
        assert len(contracts) == 6
        assert len(db) == 6

    def test_parallel_matches_serial(self):
        specs = _specs()
        serial = ContractDatabase(BrokerConfig())
        register_many(serial, specs, workers=1)
        parallel = ContractDatabase(BrokerConfig())
        try:
            register_many(parallel, specs, workers=2)
        except Exception as exc:  # pragma: no cover - restricted sandboxes
            pytest.skip(f"no process pool available: {exc}")
        assert len(parallel) == len(serial)
        # identical automata => identical answers
        generator = WorkloadGenerator(vocabulary_size=6, seed=78)
        for spec in generator.generate_specs(4, 1):
            from repro.ltl.ast import conj

            query = conj(spec.clauses)
            assert (
                parallel.query(query).contract_ids
                == serial.query(query).contract_ids
            )

    def test_parallel_airfare_outcomes(self):
        db = ContractDatabase()
        try:
            register_many(db, all_ticket_specs(), workers=2)
        except Exception as exc:  # pragma: no cover
            pytest.skip(f"no process pool available: {exc}")
        for info in QUERIES.values():
            assert set(db.query(info["ltl"]).contract_names) == info[
                "expected"
            ]

    def test_ids_in_input_order(self):
        db = ContractDatabase()
        contracts = register_many(db, _specs(), workers=1)
        assert [c.contract_id for c in contracts] == list(range(6))
        assert [c.name for c in contracts] == [f"c{i}" for i in range(6)]


class TestBrokenPoolFallback:
    def test_broken_process_pool_falls_back_serially(self, monkeypatch):
        """Regression: a worker crash (BrokenProcessPool) escaped instead
        of triggering the documented serial fallback."""
        from concurrent.futures.process import BrokenProcessPool

        import repro.broker.parallel as parallel_module

        class ExplodingPool:
            def __init__(self, max_workers=None):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

            def submit(self, fn, *args):
                raise BrokenProcessPool("worker died")

        monkeypatch.setattr(
            parallel_module, "ProcessPoolExecutor", ExplodingPool
        )
        db = ContractDatabase()
        specs = _specs()
        report = register_many(db, specs, workers=2, backoff_seconds=0.0)
        assert len(report) == len(specs)
        assert report.pool_fallback
        assert report.pool_retries == parallel_module.DEFAULT_MAX_RETRIES
        assert len(db) == len(specs)
        assert db.registration_stats.contracts == len(specs)

    def test_fallback_keeps_translation_accounting(self, monkeypatch):
        """The wall clock burned before the pool broke must show up in
        translation_seconds alongside the serial re-translation."""
        import repro.broker.parallel as parallel_module

        class SlowBrokenPool:
            def __init__(self, max_workers=None):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

            def submit(self, fn, *args):
                import time as _time

                from concurrent.futures.process import BrokenProcessPool

                _time.sleep(0.01)
                raise BrokenProcessPool("worker died")

        monkeypatch.setattr(
            parallel_module, "ProcessPoolExecutor", SlowBrokenPool
        )
        db = ContractDatabase()
        register_many(db, _specs(), workers=2, backoff_seconds=0.0)
        # includes both the 10 ms burned in the broken pool and the
        # serial translations
        assert db.registration_stats.translation_seconds >= 0.01
