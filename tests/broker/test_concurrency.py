"""Thread-safety of the database: the register/deregister/query hammer.

Invariant 11 (docs/DEVELOPMENT.md): any number of queries run
concurrently, mutations are exclusive, and no query ever observes a
half-applied mutation — a contract is in the answer set with its index
entry and artifacts complete, or not at all.
"""

import threading

import pytest

from repro.broker.database import BrokerConfig, ContractDatabase
from repro.broker.options import QueryOptions
from repro.ltl.parser import parse


def _spec(name, i):
    from repro.broker.contract import ContractSpec

    # every contract permits "F common" plus a private eventuality
    return ContractSpec(
        name=name,
        clauses=(parse(f"G(p{i % 5} -> F common)"),),
        attributes={"slot": i},
    )


class TestHammer:
    def test_register_deregister_query_hammer(self):
        db = ContractDatabase(BrokerConfig())
        errors = []
        stop = threading.Event()
        registered_ids = []
        ids_lock = threading.Lock()

        # a stable population so queries always have work to do
        base = [db.register(_spec(f"base-{i}", i)) for i in range(4)]

        def registrar(thread_id):
            try:
                for i in range(12):
                    contract = db.register(_spec(f"t{thread_id}-{i}", i))
                    with ids_lock:
                        registered_ids.append(contract.contract_id)
            except Exception as exc:
                errors.append(exc)

        def deregistrar():
            try:
                removed = 0
                while removed < 8 and not stop.is_set():
                    with ids_lock:
                        victim = registered_ids.pop() if registered_ids else None
                    if victim is None:
                        continue
                    db.deregister(victim)
                    removed += 1
            except Exception as exc:
                errors.append(exc)

        def querier():
            try:
                while not stop.is_set():
                    outcome = db.query("F common")
                    # the stable population is always present: a query
                    # mid-mutation must never lose unrelated contracts
                    got = set(outcome.contract_ids)
                    assert {c.contract_id for c in base} <= got
            except Exception as exc:
                errors.append(exc)

        threads = (
            [threading.Thread(target=registrar, args=(t,)) for t in range(2)]
            + [threading.Thread(target=deregistrar)]
            + [threading.Thread(target=querier) for _ in range(3)]
        )
        for t in threads:
            t.start()
        for t in threads[:3]:  # both registrars + the deregistrar
            t.join(timeout=30)
        stop.set()
        for t in threads[3:]:
            t.join(timeout=30)

        assert errors == []
        assert not any(t.is_alive() for t in threads)
        # ledger consistency: 4 base + 24 registered - 8 deregistered
        assert len(db) == 4 + 2 * 12 - 8
        assert db.registration_stats.contracts == len(db)
        # index consistency: prefilter answers match a full scan
        with_pf = db.query("F common", QueryOptions(use_prefilter=True))
        without_pf = db.query("F common", QueryOptions(use_prefilter=False))
        assert set(with_pf.contract_ids) == set(without_pf.contract_ids)

    def test_parallel_queries_during_registration(self):
        """query_many's thread pool (read lock) interleaved with
        registration (write lock)."""
        db = ContractDatabase()
        for i in range(3):
            db.register(_spec(f"seed-{i}", i))
        errors = []

        def mutator():
            try:
                for i in range(10):
                    db.register(_spec(f"new-{i}", i))
            except Exception as exc:
                errors.append(exc)

        def batch_querier():
            try:
                for _ in range(10):
                    outcomes = db.query_many(
                        ["F common", "F nothing"], QueryOptions(workers=2)
                    )
                    assert len(outcomes[0].contract_ids) >= 3
                    assert outcomes[1].contract_ids == ()
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=mutator),
            threading.Thread(target=batch_querier),
            threading.Thread(target=batch_querier),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        assert len(db) == 13

    def test_save_during_mutation_burst_is_consistent(self, tmp_path):
        """save_database takes the write lock: the snapshot is a
        point-in-time image, never a half-applied one."""
        from repro.broker.journal import open_database
        from repro.broker.persist import load_database, save_database

        db = open_database(tmp_path / "db")
        errors = []

        def mutator():
            try:
                for i in range(10):
                    db.register(_spec(f"m-{i}", i))
            except Exception as exc:
                errors.append(exc)

        def saver():
            try:
                for _ in range(3):
                    db.dirty = True
                    save_database(db, tmp_path / "db")
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=mutator),
            threading.Thread(target=saver),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        # the directory recovers everything: snapshot + journal tail
        recovered = open_database(tmp_path / "db")
        assert len(recovered) == 10
