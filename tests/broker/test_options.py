"""Tests for the unified QueryOptions surface and the deprecation shims.

The contract of the 1.3 API redesign: every entry point funnels into one
options-driven path, the old kwargs still work (with a warning), and a
shim call returns answers identical to its new-style spelling.
"""

import warnings

import pytest

from repro.broker.database import BrokerConfig, ContractDatabase
from repro.broker.options import (
    Degradation,
    PrebuiltArtifacts,
    QueryOptions,
    coerce_query_options,
)
from repro.broker.query import QueryOutcome, QueryResult
from repro.broker.relational import MATCH_ALL, AttributeFilter, le
from repro.workload.airfare import QUERIES, all_ticket_specs

QUERY = "F(missedFlight && F(refund || dateChange))"


def _airfare_db() -> ContractDatabase:
    db = ContractDatabase(BrokerConfig())
    for spec in all_ticket_specs():
        db.register(spec)
    return db


class TestQueryOptions:
    def test_defaults_are_unbudgeted(self):
        options = QueryOptions()
        assert not options.budgeted
        assert options.degradation is Degradation.MAYBE
        assert options.workers == 1

    @pytest.mark.parametrize("field, value", [
        ("deadline_seconds", -1.0),
        ("contract_deadline_seconds", -0.5),
        ("step_budget", 0),
        ("budget_check_interval", 0),
        ("workers", 0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            QueryOptions(**{field: value})

    @pytest.mark.parametrize("field, value", [
        ("deadline_seconds", 0.1),
        ("contract_deadline_seconds", 0.1),
        ("step_budget", 100),
    ])
    def test_any_budget_field_makes_it_budgeted(self, field, value):
        assert QueryOptions(**{field: value}).budgeted

    def test_evolve(self):
        options = QueryOptions(deadline_seconds=1.0)
        changed = options.evolve(workers=4)
        assert changed.workers == 4
        assert changed.deadline_seconds == 1.0
        assert options.workers == 1  # frozen original untouched


class TestCoercion:
    def test_none_gives_defaults(self):
        assert coerce_query_options("query", None, {}) == QueryOptions()

    def test_options_passed_through(self):
        options = QueryOptions(step_budget=5)
        assert coerce_query_options("query", options, {}) is options

    def test_positional_attribute_filter_warns(self):
        f = AttributeFilter.where(le("price", 700))
        with pytest.warns(DeprecationWarning, match="QueryOptions"):
            resolved = coerce_query_options("query", f, {})
        assert resolved.attribute_filter is f

    def test_legacy_kwargs_warn_and_map(self):
        with pytest.warns(DeprecationWarning):
            resolved = coerce_query_options(
                "query", None,
                {"use_prefilter": False, "explain": True, "workers": 3},
            )
        assert resolved.use_prefilter is False
        assert resolved.explain is True
        assert resolved.workers == 3

    def test_legacy_none_means_default(self):
        with pytest.warns(DeprecationWarning):
            resolved = coerce_query_options(
                "query", None, {"use_prefilter": None}
            )
        assert resolved.use_prefilter is None

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            coerce_query_options("query", None, {"prefilter": True})

    def test_mixing_options_and_legacy_rejected(self):
        with pytest.raises(TypeError, match="mixes"):
            coerce_query_options(
                "query", QueryOptions(), {"explain": True}
            )

    def test_double_attribute_filter_rejected(self):
        f = MATCH_ALL
        with pytest.raises(TypeError):
            coerce_query_options("query", f, {"attribute_filter": f})

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="expected QueryOptions"):
            coerce_query_options("query", 42, {})


class TestEncodedToggle:
    """``use_encoded`` three-way resolution: per-query option overrides
    the ``BrokerConfig`` default, ``None`` inherits it, and both paths
    return identical answers (the encoded decider is bit-identical)."""

    def test_config_default_is_encoded(self, airfare_db):
        outcome = airfare_db.query(QUERY, QueryOptions(explain=True))
        assert outcome.stats.used_encoded

    def test_per_query_override_disables(self, airfare_db):
        outcome = airfare_db.query(
            QUERY, QueryOptions(use_encoded=False, explain=True)
        )
        assert not outcome.stats.used_encoded

    def test_per_query_override_enables_on_object_database(self):
        db = ContractDatabase(BrokerConfig(use_encoded=False))
        for spec in all_ticket_specs():
            db.register(spec)
        cold = db.query(QUERY, QueryOptions(explain=True))
        assert not cold.stats.used_encoded
        hot = db.query(QUERY, QueryOptions(use_encoded=True, explain=True))
        assert hot.stats.used_encoded
        assert hot.contract_ids == cold.contract_ids

    def test_answers_identical_both_ways(self, airfare_db):
        for info in QUERIES.values():
            encoded = airfare_db.query(
                info["ltl"], QueryOptions(use_encoded=True)
            )
            plain = airfare_db.query(
                info["ltl"], QueryOptions(use_encoded=False)
            )
            assert encoded.contract_names == plain.contract_names


class TestOutcomeShape:
    def test_outcome_is_a_query_result(self, airfare_db):
        outcome = airfare_db.query(QUERY)
        assert isinstance(outcome, QueryOutcome)
        assert isinstance(outcome, QueryResult)
        assert not outcome.degraded
        assert outcome.maybe_ids == ()

    def test_verdicts_cover_every_candidate(self, airfare_db):
        outcome = airfare_db.query(
            QUERY, QueryOptions(use_prefilter=False)
        )
        assert set(outcome.verdicts) == {
            c.contract_id for c in airfare_db.contracts()
        }
        for cid in outcome.contract_ids:
            assert outcome.verdict_for(cid).conclusive

    def test_str_mentions_degradation_only_when_degraded(self, airfare_db):
        rendered = str(airfare_db.query(QUERY))
        assert "DEGRADED" not in rendered
        assert rendered.startswith("QueryOutcome(")


class TestDeprecatedShims:
    """Each legacy spelling must agree exactly with its replacement."""

    def test_query_legacy_kwargs_identical(self):
        db = _airfare_db()
        new = db.query(QUERY, QueryOptions(
            use_prefilter=False, use_projections=False
        ))
        with pytest.warns(DeprecationWarning):
            old = db.query(
                QUERY, use_prefilter=False, use_projections=False
            )
        assert old.contract_ids == new.contract_ids
        assert old.contract_names == new.contract_names
        assert old.stats.candidates == new.stats.candidates
        assert old.stats.checked == new.stats.checked

    def test_query_positional_filter_identical(self):
        db = _airfare_db()
        f = AttributeFilter.where(le("price", 700))
        new = db.query(QUERY, QueryOptions(attribute_filter=f))
        with pytest.warns(DeprecationWarning):
            old = db.query(QUERY, f)
        assert old.contract_ids == new.contract_ids

    def test_query_planned_identical(self):
        db = _airfare_db()
        new = db.query(QUERY, QueryOptions(use_planner=True))
        with pytest.warns(DeprecationWarning):
            old = db.query_planned(QUERY)
        assert old.contract_ids == new.contract_ids
        assert old.stats.used_prefilter == new.stats.used_prefilter
        assert old.stats.used_projections == new.stats.used_projections

    def test_permits_contract_identical(self):
        db = _airfare_db()
        options = QueryOptions(
            contract_ids=(0,), use_prefilter=False, use_projections=False
        )
        new = 0 in db.query(QUERY, options).contract_ids
        with pytest.warns(DeprecationWarning):
            old = db.permits_contract(0, QUERY)
        assert old == new is True

    def test_permits_contract_unknown_id_raises(self):
        from repro.errors import BrokerError

        db = _airfare_db()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(BrokerError):
                db.permits_contract(99, QUERY)

    def test_explain_identical(self):
        db = _airfare_db()
        options = QueryOptions(
            contract_ids=(0,), use_prefilter=False,
            use_projections=False, explain=True,
        )
        new = db.query(QUERY, options).witnesses.get(0)
        with pytest.warns(DeprecationWarning):
            old = db.explain(0, QUERY)
        assert (old is None) == (new is None)
        if old is not None:
            assert db.get(0).ba.accepts(old.to_run())

    def test_register_spec_identical(self):
        specs = all_ticket_specs()
        db_new = ContractDatabase()
        db_old = ContractDatabase()
        for spec in specs:
            db_new.register(spec)
        with pytest.warns(DeprecationWarning):
            for spec in specs:
                db_old.register_spec(spec)
        assert [c.name for c in db_old.contracts()] == [
            c.name for c in db_new.contracts()
        ]
        assert db_old.query(QUERY).contract_ids == \
            db_new.query(QUERY).contract_ids

    def test_query_many_legacy_workers_identical(self):
        db = _airfare_db()
        queries = [info["ltl"] for info in QUERIES.values()]
        new = db.query_many(queries, QueryOptions(workers=2))
        with pytest.warns(DeprecationWarning):
            old = db.query_many(queries, workers=2)
        assert [r.contract_ids for r in old] == [
            r.contract_ids for r in new
        ]

    def test_new_style_calls_do_not_warn(self):
        db = _airfare_db()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            db.query(QUERY)
            db.query(QUERY, QueryOptions(explain=True))
            db.query_many([QUERY], QueryOptions(workers=2))
            db.register(all_ticket_specs()[0])


class TestRegisterUnification:
    def test_spec_with_clauses_rejected(self):
        db = ContractDatabase()
        spec = all_ticket_specs()[0]
        with pytest.raises(TypeError):
            db.register(spec, ["F refund"])

    def test_name_without_clauses_rejected(self):
        with pytest.raises(TypeError):
            ContractDatabase().register("nameless")

    def test_prebuilt_artifacts_skip_recomputation(self):
        spec = all_ticket_specs()[0]
        source = ContractDatabase()
        original = source.register(spec)
        target = ContractDatabase()
        contract = target.register(
            spec,
            prebuilt=PrebuiltArtifacts(
                ba=original.ba,
                seeds=original.seeds,
                projections=original.projections,
            ),
        )
        assert contract.ba is original.ba
        assert contract.seeds is original.seeds
        assert contract.projections is original.projections
        assert target.registration_stats.translation_seconds == \
            pytest.approx(0.0, abs=1e-3)
