"""Tests for runtime contract monitoring."""

import pytest

from repro.automata.ltl2ba import translate
from repro.broker.monitor import ContractMonitor, MonitorStatus
from repro.ltl.parser import parse


def monitor_for(text: str) -> ContractMonitor:
    formula = parse(text)
    return ContractMonitor(translate(formula), formula.variables())


class TestStatusTracking:
    def test_fresh_monitor_active(self):
        assert monitor_for("G(a -> F b)").status == MonitorStatus.ACTIVE

    def test_unsatisfiable_contract_immediately_violated(self):
        assert monitor_for("false").status == MonitorStatus.VIOLATED

    def test_safety_violation_detected(self):
        monitor = monitor_for("G !refund")
        assert monitor.advance({"purchase"}) == MonitorStatus.ACTIVE
        assert monitor.advance({"refund"}) == MonitorStatus.VIOLATED

    def test_violated_is_absorbing(self):
        monitor = monitor_for("G !a")
        monitor.advance({"a"})
        assert monitor.advance({}) == MonitorStatus.VIOLATED

    def test_liveness_never_violated_by_finite_prefix(self):
        monitor = monitor_for("F p")
        for _ in range(10):
            assert monitor.advance({}) == MonitorStatus.ACTIVE

    def test_next_obligation(self):
        monitor = monitor_for("a && X b")
        assert monitor.advance({"a"}) == MonitorStatus.ACTIVE
        assert monitor.advance({"c"}) == MonitorStatus.VIOLATED

    def test_single_change_contract(self):
        monitor = monitor_for("G(d -> X(!F d))")
        assert monitor.advance({"d"}) == MonitorStatus.ACTIVE
        assert monitor.advance({"d"}) == MonitorStatus.VIOLATED

    def test_history_recorded(self):
        monitor = monitor_for("G !a")
        monitor.advance_all([{"x"}, {"y"}])
        assert monitor.history == (frozenset({"x"}), frozenset({"y"}))


class TestCanStill:
    def test_future_query_after_events(self):
        monitor = monitor_for("G(dateChange -> !F refund)")
        monitor.advance({"purchase"})
        assert monitor.can_still("F refund")
        monitor.advance({"dateChange"})
        assert not monitor.can_still("F refund")
        assert monitor.can_still("F dateChange")

    def test_can_still_false_after_violation(self):
        monitor = monitor_for("G !a")
        monitor.advance({"a"})
        assert not monitor.can_still("true")

    def test_can_still_respects_vocabulary(self):
        """Underspecification semantics carries over: a query about an
        event the contract never cites is never possible (Definition 1)."""
        monitor = monitor_for("G(a -> F b)")
        assert not monitor.can_still("F classUpgrade")

    def test_accepts_prebuilt_ba_and_formula(self):
        monitor = monitor_for("G(a -> F b)")
        assert monitor.can_still(parse("F b"))
        assert monitor.can_still(translate(parse("F b")))


class TestBrokerIntegration:
    def test_for_contract(self, airfare_contracts):
        ticket_c = airfare_contracts["Ticket C"]
        monitor = ContractMonitor.for_contract(ticket_c)
        assert monitor.advance({"purchase"}) == MonitorStatus.ACTIVE
        # Ticket C never allows a refund
        assert monitor.advance({"refund"}) == MonitorStatus.VIOLATED

    def test_ticket_a_lifecycle(self, airfare_contracts):
        ticket_a = airfare_contracts["Ticket A"]
        monitor = ContractMonitor.for_contract(ticket_a)
        monitor.advance({"purchase"})
        assert monitor.can_still("F refund")
        monitor.advance({"dateChange"})
        assert monitor.status == MonitorStatus.ACTIVE
        # the A policy: no refunds after a date change
        assert not monitor.can_still("F refund")
        assert monitor.can_still("F use")

    def test_possible_states_shrink_monotonically_informative(self,
                                                              airfare_contracts):
        ticket_b = airfare_contracts["Ticket B"]
        monitor = ContractMonitor.for_contract(ticket_b)
        assert monitor.possible_states
        monitor.advance({"purchase"})
        assert monitor.possible_states
