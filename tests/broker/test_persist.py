"""Tests for database persistence (snapshot format v2)."""

import dataclasses
import hashlib
import json

import pytest

from repro.broker.database import BrokerConfig, ContractDatabase
from repro.broker.persist import load_database, save_database
from repro.errors import BrokerError
from repro.workload.airfare import QUERIES
from repro.workload.generator import WorkloadGenerator

ARTIFACT_FILES = [
    "automata.json", "seeds.json", "encoded.json", "projections.json",
    "index.json", "stats.json",
]


@pytest.fixture
def saved_airfare(tmp_path, airfare_db):
    return save_database(airfare_db, tmp_path / "db")


def _rehash_artifact(directory, filename):
    """Patch the manifest checksum after a deliberate artifact edit, so
    tests can exercise content-level fallbacks past the checksum gate."""
    manifest = json.loads((directory / "contracts.json").read_text())
    manifest["artifacts"][filename] = hashlib.sha256(
        (directory / filename).read_bytes()
    ).hexdigest()
    (directory / "contracts.json").write_text(json.dumps(manifest, indent=2))


class TestRoundTrip:
    def test_files_written(self, saved_airfare):
        assert (saved_airfare / "contracts.json").exists()
        for filename in ARTIFACT_FILES:
            assert (saved_airfare / filename).exists()

    def test_no_temp_files_left(self, saved_airfare):
        leftovers = [
            p.name for p in saved_airfare.iterdir() if ".tmp" in p.name
        ]
        assert leftovers == []

    def test_reload_preserves_contracts(self, saved_airfare, airfare_db):
        reloaded = load_database(saved_airfare)
        assert len(reloaded) == len(airfare_db)
        assert {c.name for c in reloaded.contracts()} == {
            c.name for c in airfare_db.contracts()
        }

    def test_reload_preserves_attributes(self, saved_airfare):
        reloaded = load_database(saved_airfare)
        ticket_a = next(
            c for c in reloaded.contracts() if c.name == "Ticket A"
        )
        assert ticket_a.attributes["price"] == 980

    def test_reload_preserves_query_results(self, saved_airfare, airfare_db):
        reloaded = load_database(saved_airfare)
        for info in QUERIES.values():
            assert set(reloaded.query(info["ltl"]).contract_names) == set(
                airfare_db.query(info["ltl"]).contract_names
            )

    def test_reload_skips_translation(self, saved_airfare):
        reloaded = load_database(saved_airfare)
        # prebuilt automata short-circuit the translator, so translation
        # time is (near) zero compared to fresh registration
        assert reloaded.registration_stats.translation_seconds < 0.05

    def test_config_restored(self, tmp_path):
        db = ContractDatabase(BrokerConfig(prefilter_depth=3,
                                           permission_algorithm="scc"))
        db.register("t", "G a")
        directory = save_database(db, tmp_path / "cfg")
        reloaded = load_database(directory)
        assert reloaded.config.prefilter_depth == 3
        assert reloaded.config.permission_algorithm == "scc"

    def test_config_override(self, saved_airfare):
        reloaded = load_database(
            saved_airfare, BrokerConfig(use_projections=False)
        )
        assert next(reloaded.contracts()).projections is None

    def test_duplicate_contract_names_round_trip(self, tmp_path):
        db = ContractDatabase(BrokerConfig())
        db.register("twin", "G a")
        db.register("twin", "F b")
        directory = save_database(db, tmp_path / "twins")
        reloaded = load_database(directory)
        assert reloaded.load_report.automata_restored == 2
        assert set(reloaded.query("F b").contract_ids) == set(
            db.query("F b").contract_ids
        )


class TestSnapshotRestore:
    """The v2 tentpole: derived artifacts come back without a rebuild."""

    def test_full_restore_report(self, saved_airfare, airfare_db):
        reloaded = load_database(saved_airfare)
        report = reloaded.load_report
        assert report.contracts == len(airfare_db)
        assert report.automata_restored == report.contracts
        assert report.seeds_restored == report.contracts
        assert report.encoded_restored == report.contracts
        assert report.projections_restored == report.contracts
        assert report.index_restored
        assert report.retranslated == []
        assert report.checksum_failures == []
        assert report.warnings == []

    def test_restored_index_matches_rebuilt(self, saved_airfare, airfare_db):
        reloaded = load_database(saved_airfare)
        assert reloaded.index.num_nodes == airfare_db.index.num_nodes
        assert reloaded.index.size_estimate() == (
            airfare_db.index.size_estimate()
        )

    def test_restored_seeds_match_computed(self, saved_airfare):
        from repro.core.seeds import compute_seeds

        reloaded = load_database(saved_airfare)
        for contract in reloaded.contracts():
            assert contract.seeds == compute_seeds(contract.ba)

    def test_restored_projections_match_computed(self, saved_airfare,
                                                 airfare_db):
        reloaded = load_database(saved_airfare)
        by_name = {c.name: c for c in airfare_db.contracts()}
        for contract in reloaded.contracts():
            original = by_name[contract.name].projections
            restored = contract.projections
            assert restored.num_subsets == original.num_subsets
            assert restored.num_distinct_partitions == (
                original.num_distinct_partitions
            )

    def test_restored_encoding_matches_computed(self, saved_airfare):
        from repro.automata.encode import encode_automaton

        reloaded = load_database(saved_airfare)
        for contract in reloaded.contracts():
            assert contract.encoded is not None
            fresh = encode_automaton(contract.ba, contract.vocabulary)
            assert contract.encoded.events == fresh.events
            assert contract.encoded.final_mask == fresh.final_mask
            assert list(contract.encoded.trans_dsts) == list(fresh.trans_dsts)
            assert contract.encoded.label_pos == fresh.label_pos
            assert contract.encoded.label_neg == fresh.label_neg
            assert contract.encoded_seeds_mask == (
                contract.encoded.state_mask(contract.seeds)
            )

    def test_invalid_encoding_re_encoded_with_warning(self, saved_airfare,
                                                      airfare_db):
        """A structurally stale ``encoded.json`` entry (here: a dropped
        transition) is rejected by validation and rebuilt, and the
        database still answers exactly like the original."""
        docs = json.loads((saved_airfare / "encoded.json").read_text())
        first = next(iter(docs.values()))[0]
        first["trans_dsts"] = first["trans_dsts"][:-1]
        first["trans_labels"] = first["trans_labels"][:-1]
        (saved_airfare / "encoded.json").write_text(json.dumps(docs))
        _rehash_artifact(saved_airfare, "encoded.json")

        reloaded = load_database(saved_airfare)
        report = reloaded.load_report
        assert report.encoded_restored == report.contracts - 1
        assert any("re-encoding" in w for w in report.warnings)
        assert all(c.encoded is not None for c in reloaded.contracts())
        for info in QUERIES.values():
            assert set(reloaded.query(info["ltl"]).contract_names) == set(
                airfare_db.query(info["ltl"]).contract_names
            )

    def test_manifest_checksums_cover_every_artifact(self, saved_airfare):
        manifest = json.loads((saved_airfare / "contracts.json").read_text())
        assert set(manifest["artifacts"]) == set(ARTIFACT_FILES)
        for filename, expected in manifest["artifacts"].items():
            actual = hashlib.sha256(
                (saved_airfare / filename).read_bytes()
            ).hexdigest()
            assert actual == expected

    def test_depth_override_rebuilds_index(self, saved_airfare, airfare_db):
        reloaded = load_database(
            saved_airfare, BrokerConfig(prefilter_depth=3)
        )
        assert not reloaded.load_report.index_restored
        for info in QUERIES.values():
            assert set(reloaded.query(info["ltl"]).contract_names) == set(
                airfare_db.query(info["ltl"]).contract_names
            )


class TestConfigPersistence:
    """Satellite: every BrokerConfig field must be persisted (a dropped
    field silently reverts to its default on reload)."""

    def test_manifest_persists_every_config_field(self, saved_airfare):
        manifest = json.loads((saved_airfare / "contracts.json").read_text())
        field_names = {f.name for f in dataclasses.fields(BrokerConfig)}
        # fails when a future BrokerConfig field is not persisted (or a
        # stale key lingers in the manifest)
        assert set(manifest["config"]) == field_names

    def test_query_cache_capacity_round_trips(self, tmp_path):
        db = ContractDatabase(BrokerConfig(query_cache_capacity=7))
        db.register("t", "G a")
        directory = save_database(db, tmp_path / "cache")
        reloaded = load_database(directory)
        assert reloaded.config.query_cache_capacity == 7
        assert reloaded.query_cache.stats().capacity == 7

    def test_every_field_round_trips(self, tmp_path):
        config = BrokerConfig(
            use_prefilter=False,
            use_projections=True,
            use_seeds=False,
            prefilter_depth=3,
            projection_subset_cap=None,
            permission_algorithm="scc",
            state_budget=12_345,
            query_cache_capacity=9,
        )
        db = ContractDatabase(config)
        db.register("t", "G a")
        directory = save_database(db, tmp_path / "full")
        assert load_database(directory).config == config


class TestDirtyFlag:
    def test_fresh_database_is_dirty(self):
        assert ContractDatabase(BrokerConfig()).dirty

    def test_save_clears_and_mutations_set(self, tmp_path):
        db = ContractDatabase(BrokerConfig())
        contract = db.register("t", "G a")
        save_database(db, tmp_path / "d")
        assert not db.dirty
        db.deregister(contract.contract_id)
        assert db.dirty

    def test_load_returns_clean_database(self, saved_airfare):
        assert not load_database(saved_airfare).dirty

    def test_only_if_dirty_skips_clean_save(self, tmp_path):
        db = ContractDatabase(BrokerConfig())
        db.register("t", "G a")
        directory = save_database(db, tmp_path / "d")
        before = (directory / "contracts.json").read_bytes()
        (directory / "contracts.json").write_bytes(b"sentinel")
        save_database(db, directory, only_if_dirty=True)
        assert (directory / "contracts.json").read_bytes() == b"sentinel"
        db.register("u", "F b")
        save_database(db, directory, only_if_dirty=True)
        assert (directory / "contracts.json").read_bytes() != b"sentinel"
        assert (directory / "contracts.json").read_bytes() != before

    def test_only_if_dirty_still_writes_missing_snapshot(self, tmp_path):
        db = ContractDatabase(BrokerConfig())
        db.register("t", "G a")
        save_database(db, tmp_path / "first")
        directory = save_database(
            db, tmp_path / "second", only_if_dirty=True
        )
        # clean database, but the target has no manifest yet
        assert (directory / "contracts.json").exists()


class TestRobustness:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(BrokerError):
            load_database(tmp_path / "nope")

    def test_malformed_manifest(self, tmp_path):
        directory = tmp_path / "bad"
        directory.mkdir()
        (directory / "contracts.json").write_text("{not json")
        with pytest.raises(BrokerError):
            load_database(directory)

    def test_wrong_format_version(self, tmp_path):
        directory = tmp_path / "v99"
        directory.mkdir()
        (directory / "contracts.json").write_text(
            json.dumps({"format_version": 99, "contracts": []})
        )
        with pytest.raises(BrokerError):
            load_database(directory)

    @pytest.mark.parametrize("filename", ARTIFACT_FILES)
    def test_corrupt_artifact_falls_back(self, tmp_path, airfare_db,
                                         filename):
        directory = save_database(airfare_db, tmp_path / "corrupt")
        (directory / filename).write_bytes(b'{"mangled": true}')
        reloaded = load_database(directory)
        assert filename in reloaded.load_report.checksum_failures
        for info in QUERIES.values():
            assert set(reloaded.query(info["ltl"]).contract_names) == set(
                airfare_db.query(info["ltl"]).contract_names
            )

    @pytest.mark.parametrize("filename", ARTIFACT_FILES)
    def test_missing_artifact_falls_back(self, tmp_path, airfare_db,
                                         filename):
        directory = save_database(airfare_db, tmp_path / "missing")
        (directory / filename).unlink()
        reloaded = load_database(directory)
        assert reloaded.load_report.warnings
        assert len(reloaded) == len(airfare_db)
        info = QUERIES["refund_or_change_after_miss"]
        assert set(reloaded.query(info["ltl"]).contract_names) == info[
            "expected"
        ]

    def test_stale_automaton_retranslated(self, tmp_path, airfare_db):
        directory = save_database(airfare_db, tmp_path / "stale")
        # corrupt the stored automata: give them an alien event (and
        # re-hash so only the vocabulary check can reject them)
        automata = json.loads((directory / "automata.json").read_text())
        for docs in automata.values():
            for doc in docs:
                for transition in doc["transitions"]:
                    transition[1] = "alienEvent"
        (directory / "automata.json").write_text(json.dumps(automata))
        _rehash_artifact(directory, "automata.json")
        reloaded = load_database(directory)
        assert len(reloaded.load_report.retranslated) == len(airfare_db)
        # results still correct because the loader fell back to
        # re-translating from the clauses
        info = QUERIES["refund_or_change_after_miss"]
        assert set(reloaded.query(info["ltl"]).contract_names) == info[
            "expected"
        ]

    def test_name_miss_retranslates_with_warning(self, tmp_path, airfare_db):
        """A shortened automata file no longer shifts pairings: entries
        are keyed by contract name, and a missing name re-translates."""
        directory = save_database(airfare_db, tmp_path / "short")
        automata = json.loads((directory / "automata.json").read_text())
        del automata["Ticket A"]
        (directory / "automata.json").write_text(json.dumps(automata))
        _rehash_artifact(directory, "automata.json")
        reloaded = load_database(directory)
        report = reloaded.load_report
        assert report.retranslated == ["Ticket A"]
        assert any("Ticket A" in w for w in report.warnings)
        assert report.automata_restored == len(airfare_db) - 1
        for info in QUERIES.values():
            assert set(reloaded.query(info["ltl"]).contract_names) == set(
                airfare_db.query(info["ltl"]).contract_names
            )

    def test_crash_mid_save_keeps_snapshot_loadable(self, tmp_path,
                                                    airfare_db):
        """A crash between artifact renames leaves the old manifest whose
        checksums disown the half-updated artifact — the loader rebuilds
        instead of trusting it."""
        directory = save_database(airfare_db, tmp_path / "crash")
        # simulate: a later save replaced automata.json, then died before
        # writing the new manifest
        automata = json.loads((directory / "automata.json").read_text())
        automata["Ticket Z"] = automata.pop("Ticket A")
        (directory / "automata.json").write_text(json.dumps(automata))
        reloaded = load_database(directory)
        assert "automata.json" in reloaded.load_report.checksum_failures
        for info in QUERIES.values():
            assert set(reloaded.query(info["ltl"]).contract_names) == set(
                airfare_db.query(info["ltl"]).contract_names
            )


class TestRoundTripEquivalence:
    """Acceptance: identical query results on the original database, a
    snapshot-restored one, and a rebuild-fallback (corrupted) one."""

    def test_generated_workload_equivalence(self, tmp_path):
        generator = WorkloadGenerator(vocabulary_size=8, seed=42)
        db = ContractDatabase(BrokerConfig())
        for i, spec in enumerate(generator.generate_specs(12, 2)):
            db.register(f"contract-{i}", list(spec.clauses))
        queries = [
            spec.clauses[0] for spec in generator.generate_specs(6, 1)
        ]
        baseline = [db.query(q).contract_names for q in queries]

        directory = save_database(db, tmp_path / "snap")
        snapshot = load_database(directory)
        assert snapshot.load_report.index_restored
        assert [
            snapshot.query(q).contract_names for q in queries
        ] == baseline

        for filename in ARTIFACT_FILES:
            (directory / filename).write_bytes(b"garbage")
        fallback = load_database(directory)
        assert not fallback.load_report.index_restored
        assert [
            fallback.query(q).contract_names for q in queries
        ] == baseline


class TestKillBetweenArtifactWrites:
    """1.5 (S3): every artifact individually killed after a good save —
    the loader must name the rebuilt artifact and answer identically."""

    @pytest.mark.parametrize("filename", ARTIFACT_FILES)
    def test_deleted_artifact_named_and_rebuilt(
        self, saved_airfare, airfare_db, filename
    ):
        (saved_airfare / filename).unlink()
        reloaded = load_database(saved_airfare)
        assert any(
            filename in warning for warning in reloaded.load_report.warnings
        )
        for info in QUERIES.values():
            assert set(reloaded.query(info["ltl"]).contract_names) == set(
                airfare_db.query(info["ltl"]).contract_names
            )

    @pytest.mark.parametrize("filename", ARTIFACT_FILES)
    def test_truncated_artifact_named_and_rebuilt(
        self, saved_airfare, airfare_db, filename
    ):
        raw = (saved_airfare / filename).read_bytes()
        (saved_airfare / filename).write_bytes(raw[: len(raw) // 2])
        reloaded = load_database(saved_airfare)
        assert filename in reloaded.load_report.checksum_failures
        assert any(
            filename in warning for warning in reloaded.load_report.warnings
        )
        for info in QUERIES.values():
            assert set(reloaded.query(info["ltl"]).contract_names) == set(
                airfare_db.query(info["ltl"]).contract_names
            )


class TestCrashDurability:
    def test_stale_tmp_files_cleaned_on_save(self, tmp_path):
        db = ContractDatabase()
        db.register("t", "G a")
        directory = tmp_path / "db"
        directory.mkdir()
        # debris a previous crashed save left behind
        stale = directory / ".automata.json.4242.tmp"
        stale.write_text("half-written")
        save_database(db, directory)
        assert not stale.exists()
        assert [p for p in directory.iterdir() if ".tmp" in p.name] == []

    def test_injected_crash_mid_save_leaves_loadable_directory(
        self, tmp_path
    ):
        from repro.core import faults
        from repro.core.faults import SimulatedCrash

        db = ContractDatabase()
        for i in range(3):
            db.register(f"c{i}", f"G(a{i} -> F b{i})")
        directory = save_database(db, tmp_path / "db")
        baseline = {c.name for c in load_database(directory).contracts()}

        for position in range(1, 6):  # 4 artifacts + the manifest
            db.dirty = True
            faults.fail_at("persist.artifact_write", nth=position)
            with pytest.raises(SimulatedCrash):
                save_database(db, directory)
            faults.reset()
            reloaded = load_database(directory)
            assert {c.name for c in reloaded.contracts()} == baseline
