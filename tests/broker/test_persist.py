"""Tests for database persistence."""

import json

import pytest

from repro.broker.database import BrokerConfig, ContractDatabase
from repro.broker.persist import load_database, save_database
from repro.errors import BrokerError
from repro.workload.airfare import QUERIES, all_ticket_specs


@pytest.fixture
def saved_airfare(tmp_path, airfare_db):
    return save_database(airfare_db, tmp_path / "db")


class TestRoundTrip:
    def test_files_written(self, saved_airfare):
        assert (saved_airfare / "contracts.json").exists()
        assert (saved_airfare / "automata.json").exists()

    def test_reload_preserves_contracts(self, saved_airfare, airfare_db):
        reloaded = load_database(saved_airfare)
        assert len(reloaded) == len(airfare_db)
        assert {c.name for c in reloaded.contracts()} == {
            c.name for c in airfare_db.contracts()
        }

    def test_reload_preserves_attributes(self, saved_airfare):
        reloaded = load_database(saved_airfare)
        ticket_a = next(
            c for c in reloaded.contracts() if c.name == "Ticket A"
        )
        assert ticket_a.attributes["price"] == 980

    def test_reload_preserves_query_results(self, saved_airfare, airfare_db):
        reloaded = load_database(saved_airfare)
        for info in QUERIES.values():
            assert set(reloaded.query(info["ltl"]).contract_names) == set(
                airfare_db.query(info["ltl"]).contract_names
            )

    def test_reload_skips_translation(self, saved_airfare):
        reloaded = load_database(saved_airfare)
        # prebuilt automata short-circuit the translator, so translation
        # time is (near) zero compared to fresh registration
        assert reloaded.registration_stats.translation_seconds < 0.05

    def test_config_restored(self, tmp_path):
        db = ContractDatabase(BrokerConfig(prefilter_depth=3,
                                           permission_algorithm="scc"))
        db.register("t", "G a")
        directory = save_database(db, tmp_path / "cfg")
        reloaded = load_database(directory)
        assert reloaded.config.prefilter_depth == 3
        assert reloaded.config.permission_algorithm == "scc"

    def test_config_override(self, saved_airfare):
        reloaded = load_database(
            saved_airfare, BrokerConfig(use_projections=False)
        )
        assert next(reloaded.contracts()).projections is None


class TestRobustness:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(BrokerError):
            load_database(tmp_path / "nope")

    def test_malformed_manifest(self, tmp_path):
        directory = tmp_path / "bad"
        directory.mkdir()
        (directory / "contracts.json").write_text("{not json")
        with pytest.raises(BrokerError):
            load_database(directory)

    def test_wrong_format_version(self, tmp_path):
        directory = tmp_path / "v99"
        directory.mkdir()
        (directory / "contracts.json").write_text(
            json.dumps({"format_version": 99, "contracts": []})
        )
        with pytest.raises(BrokerError):
            load_database(directory)

    def test_stale_automaton_retranslated(self, tmp_path, airfare_db):
        directory = save_database(airfare_db, tmp_path / "stale")
        # corrupt the stored automata: give them an alien event
        automata = json.loads((directory / "automata.json").read_text())
        for doc in automata:
            for transition in doc["transitions"]:
                transition[1] = "alienEvent"
        (directory / "automata.json").write_text(json.dumps(automata))
        reloaded = load_database(directory)
        # results still correct because the loader fell back to
        # re-translating from the clauses
        info = QUERIES["refund_or_change_after_miss"]
        assert set(reloaded.query(info["ltl"]).contract_names) == info[
            "expected"
        ]

    def test_missing_automata_file_is_fine(self, tmp_path, airfare_db):
        directory = save_database(airfare_db, tmp_path / "noba")
        (directory / "automata.json").unlink()
        reloaded = load_database(directory)
        assert len(reloaded) == len(airfare_db)
