"""Registration-churn stability: repeated register/deregister cycles
must not leak index state or surface stale contracts in results."""

import pytest

from repro.broker.database import BrokerConfig, ContractDatabase
from repro.workload.airfare import TICKET_CLAUSES, ticket_spec

QUERY = "F(missedFlight && F(refund || dateChange))"


def _register_tickets(db):
    return {
        name: db.register_spec(ticket_spec(name)) for name in TICKET_CLAUSES
    }


@pytest.fixture
def db():
    return ContractDatabase(BrokerConfig())


class TestChurnLoop:
    def test_index_returns_to_baseline(self, db):
        contracts = _register_tickets(db)
        baseline_nodes = db.index.num_nodes
        baseline_size = db.index.size_estimate()

        for _ in range(3):
            db.query(QUERY)
            for contract in contracts.values():
                db.deregister(contract.contract_id)
            contracts = _register_tickets(db)

        # pruning on deregister means the node count is churn-stable,
        # not monotonically growing
        assert db.index.num_nodes == baseline_nodes
        assert db.index.size_estimate() == baseline_size

    def test_empty_database_index_fully_pruned(self, db):
        contracts = _register_tickets(db)
        for contract in contracts.values():
            db.deregister(contract.contract_id)
        # only the root node survives a full drain
        assert db.index.num_nodes == 1
        assert db.index.size_estimate() == 0

    def test_deregistered_contracts_never_match(self, db):
        contracts = _register_tickets(db)
        assert "Ticket A" in db.query(QUERY).contract_names

        old_a = contracts["Ticket A"]
        db.deregister(old_a.contract_id)
        result = db.query(QUERY)
        assert "Ticket A" not in result.contract_names
        assert old_a.contract_id not in result.contract_ids

        new_a = db.register_spec(ticket_spec("Ticket A"))
        result = db.query(QUERY)
        assert "Ticket A" in result.contract_names
        # the re-registration is a fresh contract, not the stale id
        assert new_a.contract_id != old_a.contract_id
        assert old_a.contract_id not in result.contract_ids

    def test_stats_stay_consistent(self, db):
        contracts = _register_tickets(db)
        expected = db.database_stats()

        for _ in range(2):
            for contract in contracts.values():
                db.deregister(contract.contract_id)
            assert db.registration_stats.contracts == 0
            assert db.database_stats() == {"contracts": 0}
            contracts = _register_tickets(db)

        stats = db.database_stats()
        assert db.registration_stats.contracts == len(contracts)
        assert stats["contracts"] == expected["contracts"]
        assert stats["index_nodes"] == expected["index_nodes"]
        assert stats["index_size"] == expected["index_size"]
        assert stats["states_avg"] == expected["states_avg"]

    def test_churn_marks_database_dirty(self, db):
        contracts = _register_tickets(db)
        db.dirty = False
        db.deregister(next(iter(contracts.values())).contract_id)
        assert db.dirty
