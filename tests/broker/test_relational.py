"""Unit tests for the relational pre-selection substrate."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broker.relational import (
    MATCH_ALL,
    AttributeCondition,
    AttributeFilter,
    OpaqueCondition,
    condition_from_doc,
    contains,
    eq,
    ge,
    gt,
    is_in,
    le,
    lt,
    ne,
)
from repro.errors import BrokerError

ATTRS = {
    "price": 420,
    "airline": "United",
    "stops": ["DEN"],
    "refundable": True,
}


class TestConditions:
    def test_eq(self):
        assert eq("airline", "United").matches(ATTRS)
        assert not eq("airline", "Delta").matches(ATTRS)

    def test_ne(self):
        assert ne("airline", "Delta").matches(ATTRS)
        assert not ne("airline", "United").matches(ATTRS)

    def test_ordering(self):
        assert lt("price", 500).matches(ATTRS)
        assert le("price", 420).matches(ATTRS)
        assert gt("price", 400).matches(ATTRS)
        assert ge("price", 420).matches(ATTRS)
        assert not lt("price", 420).matches(ATTRS)
        assert not gt("price", 420).matches(ATTRS)

    def test_is_in(self):
        assert is_in("airline", ["United", "AA"]).matches(ATTRS)
        assert not is_in("airline", ["Delta"]).matches(ATTRS)

    def test_contains(self):
        assert contains("stops", "DEN").matches(ATTRS)
        assert not contains("stops", "ORD").matches(ATTRS)

    def test_missing_attribute_never_matches(self):
        assert not eq("cabin", "economy").matches(ATTRS)
        assert not lt("weight", 5).matches(ATTRS)

    def test_type_error_is_no_match(self):
        assert not lt("airline", 5).matches(ATTRS)

    def test_str(self):
        assert "price" in str(le("price", 500))


class TestFilter:
    def test_match_all(self):
        assert MATCH_ALL.matches(ATTRS)
        assert MATCH_ALL.matches({})

    def test_conjunction(self):
        f = AttributeFilter.where(le("price", 500), eq("airline", "United"))
        assert f.matches(ATTRS)

    def test_conjunction_fails_on_any(self):
        f = AttributeFilter.where(le("price", 100), eq("airline", "United"))
        assert not f.matches(ATTRS)

    def test_str(self):
        assert str(MATCH_ALL) == "TRUE"
        f = AttributeFilter.where(le("price", 500))
        assert "AND" not in str(f)
        f2 = AttributeFilter.where(le("price", 500), eq("airline", "U"))
        assert "AND" in str(f2)


_scalars = st.one_of(
    st.integers(-10_000, 10_000),
    st.text(max_size=8),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.none(),
)

_conditions = st.one_of(
    st.builds(
        AttributeCondition,
        st.text(min_size=1, max_size=6),
        st.sampled_from(["==", "!=", "<", "<=", ">", ">=", "contains"]),
        _scalars,
    ),
    st.builds(
        is_in,
        st.text(min_size=1, max_size=6),
        st.lists(_scalars, min_size=1, max_size=4),
    ),
)


class TestConditionAST:
    def test_condition_is_data(self):
        c = le("price", 500)
        assert (c.attribute, c.op, c.value) == ("price", "<=", 500)
        assert c.estimable

    def test_unknown_operator_rejected(self):
        with pytest.raises(BrokerError):
            AttributeCondition("price", "=~", 5)

    def test_in_rejects_scalar_string(self):
        with pytest.raises(BrokerError):
            AttributeCondition("route", "in", "SAN-NYC")

    def test_in_value_normalized(self):
        a = is_in("route", ["B", "A", "B"])
        b = is_in("route", ("A", "B"))
        assert a == b
        assert a.cache_key() == b.cache_key()

    def test_to_dict_from_dict_round_trip(self):
        c = is_in("route", ["SAN-NYC", "LAX-SEA"])
        doc = json.loads(json.dumps(c.to_dict()))
        assert AttributeCondition.from_dict(doc) == c

    def test_from_dict_missing_keys_rejected(self):
        with pytest.raises(BrokerError):
            AttributeCondition.from_dict({"attribute": "price"})

    def test_condition_from_doc_accepts_triple_and_mapping(self):
        triple = condition_from_doc(["price", "<=", 500])
        mapping = condition_from_doc(
            {"attribute": "price", "op": "<=", "value": 500}
        )
        assert triple == mapping == le("price", 500)
        with pytest.raises(BrokerError):
            condition_from_doc(["price", "<="])
        with pytest.raises(BrokerError):
            condition_from_doc(42)

    def test_equality_and_hash(self):
        assert le("price", 500) == le("price", 500)
        assert hash(le("price", 500)) == hash(le("price", 500))
        assert le("price", 500) != le("price", 501)
        assert le("price", 500) != lt("price", 500)

    @given(condition=_conditions)
    @settings(max_examples=100, deadline=None)
    def test_round_trip_through_json(self, condition):
        doc = json.loads(json.dumps(condition.to_dict()))
        restored = AttributeCondition.from_dict(doc)
        assert restored == condition
        assert restored.cache_key() == condition.cache_key()


class TestLegacyShim:
    def test_legacy_construction_warns_and_evaluates(self):
        with pytest.warns(DeprecationWarning):
            c = AttributeCondition(
                "price", "<= 500", lambda price: price <= 500
            )
        assert isinstance(c, OpaqueCondition)
        assert c.matches(ATTRS)
        assert not c.matches({"price": 900})
        assert not c.matches({})

    def test_legacy_keyword_construction_warns(self):
        with pytest.warns(DeprecationWarning):
            c = AttributeCondition(
                "price", description="cheap",
                predicate=lambda price: price < 100,
            )
        assert isinstance(c, OpaqueCondition)
        assert "cheap" in str(c)

    def test_opaque_is_opaque(self):
        with pytest.warns(DeprecationWarning):
            c = AttributeCondition("price", "any", lambda _: True)
        assert not c.estimable
        assert c.cache_key() is None
        with pytest.raises(BrokerError):
            c.to_dict()

    def test_opaque_identity_equality(self):
        with pytest.warns(DeprecationWarning):
            a = AttributeCondition("p", "x", lambda _: True)
        with pytest.warns(DeprecationWarning):
            b = AttributeCondition("p", "x", lambda _: True)
        assert a == a
        assert a != b
        assert a != eq("p", "x")
        assert eq("p", "x") != a

    def test_type_error_in_predicate_is_no_match(self):
        with pytest.warns(DeprecationWarning):
            c = AttributeCondition("price", "half", lambda v: v / 2 > 10)
        assert not c.matches({"price": "not-a-number"})


class TestFilterSerialization:
    def test_to_list_from_list_round_trip(self):
        f = AttributeFilter.where(
            le("price", 500), is_in("route", ["A", "B"])
        )
        restored = AttributeFilter.from_list(
            json.loads(json.dumps(f.to_list()))
        )
        assert restored == f
        assert restored.cache_key() == f.cache_key()

    def test_distinct_filters_have_distinct_cache_keys(self):
        pairs = [
            AttributeFilter.where(le("price", 500)),
            AttributeFilter.where(le("price", 501)),
            AttributeFilter.where(lt("price", 500)),
            AttributeFilter.where(le("cost", 500)),
            AttributeFilter.where(le("price", 500), eq("route", "X")),
            MATCH_ALL,
        ]
        keys = [f.cache_key() for f in pairs]
        assert len(set(keys)) == len(keys)

    def test_opaque_member_poisons_cache_key(self):
        with pytest.warns(DeprecationWarning):
            opaque = AttributeCondition("price", "any", lambda _: True)
        f = AttributeFilter.where(le("price", 500), opaque)
        assert f.cache_key() is None
        assert not f.estimable
