"""Unit tests for the relational pre-selection substrate."""

from repro.broker.relational import (
    MATCH_ALL,
    AttributeFilter,
    contains,
    eq,
    ge,
    gt,
    is_in,
    le,
    lt,
    ne,
)

ATTRS = {
    "price": 420,
    "airline": "United",
    "stops": ["DEN"],
    "refundable": True,
}


class TestConditions:
    def test_eq(self):
        assert eq("airline", "United").matches(ATTRS)
        assert not eq("airline", "Delta").matches(ATTRS)

    def test_ne(self):
        assert ne("airline", "Delta").matches(ATTRS)
        assert not ne("airline", "United").matches(ATTRS)

    def test_ordering(self):
        assert lt("price", 500).matches(ATTRS)
        assert le("price", 420).matches(ATTRS)
        assert gt("price", 400).matches(ATTRS)
        assert ge("price", 420).matches(ATTRS)
        assert not lt("price", 420).matches(ATTRS)
        assert not gt("price", 420).matches(ATTRS)

    def test_is_in(self):
        assert is_in("airline", ["United", "AA"]).matches(ATTRS)
        assert not is_in("airline", ["Delta"]).matches(ATTRS)

    def test_contains(self):
        assert contains("stops", "DEN").matches(ATTRS)
        assert not contains("stops", "ORD").matches(ATTRS)

    def test_missing_attribute_never_matches(self):
        assert not eq("cabin", "economy").matches(ATTRS)
        assert not lt("weight", 5).matches(ATTRS)

    def test_type_error_is_no_match(self):
        assert not lt("airline", 5).matches(ATTRS)

    def test_str(self):
        assert "price" in str(le("price", 500))


class TestFilter:
    def test_match_all(self):
        assert MATCH_ALL.matches(ATTRS)
        assert MATCH_ALL.matches({})

    def test_conjunction(self):
        f = AttributeFilter.where(le("price", 500), eq("airline", "United"))
        assert f.matches(ATTRS)

    def test_conjunction_fails_on_any(self):
        f = AttributeFilter.where(le("price", 100), eq("airline", "United"))
        assert not f.matches(ATTRS)

    def test_str(self):
        assert str(MATCH_ALL) == "TRUE"
        f = AttributeFilter.where(le("price", 500))
        assert "AND" not in str(f)
        f2 = AttributeFilter.where(le("price", 500), eq("airline", "U"))
        assert "AND" in str(f2)
