"""The declarative query API: QuerySpec documents, validation, file
loading, and execution through ``db.query(spec)``."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broker.database import ContractDatabase
from repro.broker.options import Degradation, QueryOptions
from repro.broker.relational import AttributeFilter, eq, is_in, le
from repro.broker.spec import QuerySpec
from repro.errors import BrokerError


class TestFromDict:
    def test_minimal(self):
        spec = QuerySpec.from_dict({"query": "F refund"})
        assert spec.query == "F refund"
        assert not spec.filter.conditions
        assert spec.options == QueryOptions()

    def test_full_document(self):
        spec = QuerySpec.from_dict({
            "query": "F refund",
            "filter": [
                ["price", "<=", 500],
                {"attribute": "route", "op": "==", "value": "SAN-NYC"},
            ],
            "options": {"use_planner": True, "deadline_seconds": 0.5,
                        "degradation": "drop"},
        })
        assert spec.filter == AttributeFilter.where(
            le("price", 500), eq("route", "SAN-NYC")
        )
        assert spec.options.use_planner
        assert spec.options.deadline_seconds == 0.5
        assert spec.options.degradation is Degradation.DROP

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(BrokerError):
            QuerySpec.from_dict({"query": "F a", "fliter": []})

    def test_missing_or_empty_query_rejected(self):
        with pytest.raises(BrokerError):
            QuerySpec.from_dict({})
        with pytest.raises(BrokerError):
            QuerySpec.from_dict({"query": "   "})
        with pytest.raises(BrokerError):
            QuerySpec.from_dict(["F a"])

    def test_unknown_option_rejected(self):
        with pytest.raises(BrokerError):
            QuerySpec.from_dict(
                {"query": "F a", "options": {"use_plannner": True}}
            )

    def test_invalid_option_value_rejected(self):
        with pytest.raises(BrokerError):
            QuerySpec.from_dict(
                {"query": "F a", "options": {"workers": 0}}
            )
        with pytest.raises(BrokerError):
            QuerySpec.from_dict(
                {"query": "F a", "options": {"degradation": "explode"}}
            )

    def test_bad_filter_rejected(self):
        with pytest.raises(BrokerError):
            QuerySpec.from_dict(
                {"query": "F a", "filter": [["price", "=~", 5]]}
            )


class TestFiles:
    def test_from_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "query": "F refund",
            "filter": [["price", "<=", 500]],
        }), encoding="utf-8")
        spec = QuerySpec.from_file(path)
        assert spec.query == "F refund"
        assert spec.filter == AttributeFilter.where(le("price", 500))

    def test_missing_file_raises_broker_error(self, tmp_path):
        with pytest.raises(BrokerError):
            QuerySpec.from_file(tmp_path / "nope.json")

    def test_malformed_json_raises_broker_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(BrokerError):
            QuerySpec.from_file(path)

    def test_yaml_file(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "spec.yaml"
        path.write_text(
            yaml.safe_dump({"query": "F refund",
                            "filter": [["price", "<=", 500]]}),
            encoding="utf-8",
        )
        spec = QuerySpec.from_file(path)
        assert spec.filter == AttributeFilter.where(le("price", 500))


class TestExecution:
    @pytest.fixture()
    def db(self):
        db = ContractDatabase()
        db.register("cheap", ["G(a -> F b)"], attributes={"price": 100})
        db.register("pricey", ["G(a -> F b)"], attributes={"price": 900})
        return db

    def test_query_accepts_spec(self, db):
        spec = QuerySpec.from_dict({
            "query": "F a",
            "filter": [["price", "<=", 500]],
        })
        outcome = db.query(spec)
        assert outcome.contract_names == ("cheap",)

    def test_spec_equals_explicit_options(self, db):
        spec = QuerySpec.from_dict({
            "query": "F a",
            "filter": [["price", "<=", 500]],
            "options": {"use_planner": True},
        })
        explicit = db.query("F a", QueryOptions(
            attribute_filter=AttributeFilter.where(le("price", 500)),
            use_planner=True,
        ))
        assert db.query(spec).contract_names == explicit.contract_names

    def test_spec_with_extra_options_rejected(self, db):
        spec = QuerySpec.from_dict({"query": "F a"})
        with pytest.raises(TypeError):
            db.query(spec, QueryOptions())
        with pytest.raises(TypeError):
            db.plan_query(spec, QueryOptions())

    def test_plan_query_accepts_spec(self, db):
        spec = QuerySpec.from_dict({
            "query": "F a",
            "filter": [["price", "<=", 500]],
        })
        plan = db.plan_query(spec)
        assert plan.to_dict()["stages"]
        assert "attribute-filter" in plan.explain()


_scalars = st.one_of(
    st.integers(-1000, 1000),
    st.text(max_size=6),
    st.booleans(),
    st.none(),
)

_filter_items = st.one_of(
    st.tuples(
        st.text(min_size=1, max_size=6),
        st.sampled_from(["==", "!=", "<", "<=", ">", ">=", "contains"]),
        _scalars,
    ).map(list),
    st.tuples(
        st.text(min_size=1, max_size=6),
        st.just("in"),
        st.lists(_scalars, min_size=1, max_size=3),
    ).map(list),
)

_option_docs = st.fixed_dictionaries({}, optional={
    "use_prefilter": st.booleans(),
    "use_projections": st.booleans(),
    "use_encoded": st.booleans(),
    "use_planner": st.booleans(),
    "stage_order": st.sampled_from(["attr_first", "prefilter_first"]),
    "explain": st.booleans(),
    "deadline_seconds": st.floats(0.001, 10.0),
    "step_budget": st.integers(1, 10_000),
    "workers": st.integers(1, 8),
    "degradation": st.sampled_from([d.value for d in Degradation]),
})

_spec_docs = st.builds(
    lambda query, flt, options: {
        "query": query,
        **({"filter": flt} if flt else {}),
        **({"options": options} if options else {}),
    },
    query=st.text(min_size=1, max_size=20).filter(lambda s: s.strip()),
    flt=st.lists(_filter_items, max_size=3),
    options=_option_docs,
)


class TestRoundTrip:
    def test_to_dict_emits_only_non_defaults(self):
        spec = QuerySpec.from_dict({"query": "F a"})
        assert spec.to_dict() == {"query": "F a"}

    @given(doc=_spec_docs)
    @settings(max_examples=100, deadline=None)
    def test_spec_round_trips_through_json(self, doc):
        spec = QuerySpec.from_dict(doc)
        wire = json.loads(json.dumps(spec.to_dict()))
        assert QuerySpec.from_dict(wire) == spec

    def test_round_trip_preserves_membership_filter(self):
        spec = QuerySpec(
            query="F a",
            filter=AttributeFilter.where(is_in("route", ["B", "A"])),
        )
        assert QuerySpec.from_dict(spec.to_dict()) == spec
