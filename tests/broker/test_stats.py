"""The planner's database statistics: incremental maintenance under
churn, selectivity estimates, and snapshot round-trips."""

import json

import pytest

from repro.broker.database import ContractDatabase
from repro.broker.persist import load_database, save_database
from repro.broker.relational import (
    AttributeCondition,
    AttributeFilter,
    contains,
    eq,
    ge,
    is_in,
    le,
    ne,
)
from repro.broker.stats import (
    DEFAULT_SELECTIVITY,
    AttributeStatistics,
    DatabaseStatistics,
)


def _populated() -> AttributeStatistics:
    stats = AttributeStatistics()
    for price, route in [
        (100, "A"), (200, "A"), (300, "B"), (400, "B"), (500, "C"),
    ]:
        stats.add({"price": price, "route": route})
    return stats


class TestSelectivityEstimates:
    def test_empty_database_estimates_one(self):
        assert AttributeStatistics().estimate_condition(
            eq("price", 100)
        ) == 1.0

    def test_equality_is_exact(self):
        stats = _populated()
        assert stats.estimate_condition(eq("route", "A")) == 2 / 5
        assert stats.estimate_condition(ne("route", "A")) == 3 / 5

    def test_range_sums_histogram(self):
        stats = _populated()
        assert stats.estimate_condition(le("price", 300)) == 3 / 5
        assert stats.estimate_condition(ge("price", 500)) == 1 / 5

    def test_membership_sums_equalities(self):
        stats = _populated()
        assert stats.estimate_condition(
            is_in("route", ["A", "C"])
        ) == 3 / 5

    def test_unseen_value_gets_pseudocount(self):
        stats = _populated()
        estimate = stats.estimate_condition(eq("route", "Z"))
        assert 0.0 < estimate < 1 / 5

    def test_unseen_attribute_gets_pseudocount(self):
        stats = _populated()
        estimate = stats.estimate_condition(eq("cabin", "economy"))
        assert 0.0 < estimate < 1 / 5

    def test_contains_and_opaque_fall_back(self):
        stats = _populated()
        assert stats.estimate_condition(
            contains("route", "A")
        ) == DEFAULT_SELECTIVITY
        with pytest.warns(DeprecationWarning):
            opaque = AttributeCondition("price", "any", lambda _: True)
        assert stats.estimate_condition(opaque) == DEFAULT_SELECTIVITY

    def test_filter_estimate_multiplies(self):
        stats = _populated()
        f = AttributeFilter.where(le("price", 300), eq("route", "A"))
        assert stats.estimate_filter(f) == pytest.approx(
            (3 / 5) * (2 / 5)
        )
        assert stats.estimate_filter(AttributeFilter()) == 1.0

    def test_estimates_stay_in_unit_interval(self):
        stats = _populated()
        for condition in [
            eq("price", 100), ne("price", 100), le("price", 10_000),
            ge("price", -5), is_in("route", ["A", "B", "C", "Z"]),
        ]:
            assert 0.0 <= stats.estimate_condition(condition) <= 1.0


class TestChurn:
    def test_add_remove_returns_to_baseline(self):
        stats = _populated()
        baseline = stats.to_dict()
        extra = {"price": 999, "route": "Z", "cabin": "first"}
        for _ in range(3):
            stats.add(extra)
        for _ in range(3):
            stats.remove(extra)
        assert stats.to_dict() == baseline

    def test_unhashable_values_land_in_other_bucket(self):
        stats = AttributeStatistics()
        stats.add({"stops": ["DEN", "ORD"]})
        assert stats.presence("stops") == 1
        assert stats.distinct("stops") == 0
        doc = stats.to_dict()
        assert doc["attributes"]["stops"]["other"] == 1
        stats.remove({"stops": ["DEN", "ORD"]})
        assert stats.presence("stops") == 0

    def test_database_maintains_stats_under_churn(self):
        db = ContractDatabase()
        a = db.register("A", ["G(a -> F b)"], attributes={"price": 100})
        baseline = db.statistics.to_dict()
        version = db.statistics.version
        b = db.register("B", ["F c"], attributes={"price": 200})
        assert db.statistics.version > version
        assert db.statistics.contracts == 2
        db.deregister(b.contract_id)
        assert db.statistics.to_dict() == baseline
        assert db.statistics.contracts == 1
        assert db.statistics.avg_states > 0
        assert a.contract_id in db

    def test_version_bumps_invalidate_plan_cache_keys(self):
        db = ContractDatabase()
        db.register("A", ["F a"], attributes={"price": 100})
        v1 = db.statistics.version
        db.register("B", ["F b"], attributes={"price": 200})
        assert db.statistics.version != v1


class TestSnapshotRoundTrip:
    def test_to_dict_from_dict_round_trip(self):
        db = ContractDatabase()
        db.register("A", ["G(a -> F b)"],
                    attributes={"price": 100, "route": "X"})
        db.register("B", ["F c"], attributes={"price": 200})
        doc = json.loads(json.dumps(db.statistics.to_dict()))
        assert DatabaseStatistics.from_dict(doc).to_dict() == doc
        assert db.statistics.matches_snapshot(doc)

    def test_save_load_verifies_stats(self, tmp_path):
        db = ContractDatabase()
        db.register("A", ["G(a -> F b)"],
                    attributes={"price": 100, "route": "X"})
        db.register("B", ["F c"], attributes={"price": 200})
        save_database(db, tmp_path)
        loaded = load_database(tmp_path)
        assert loaded.load_report.stats_restored
        assert loaded.statistics.to_dict() == db.statistics.to_dict()

    def test_corrupt_stats_artifact_falls_back_to_rebuilt(self, tmp_path):
        db = ContractDatabase()
        db.register("A", ["F a"], attributes={"price": 100})
        save_database(db, tmp_path)
        (tmp_path / "stats.json").write_text("not json", encoding="utf-8")
        loaded = load_database(tmp_path)
        assert not loaded.load_report.stats_restored
        assert any("stats.json" in w for w in loaded.load_report.warnings)
        # the rebuilt statistics are still correct
        assert loaded.statistics.to_dict() == db.statistics.to_dict()
