"""Tests for the broker's statistics plumbing and prebuilt registration."""

import pytest

from repro.automata.ltl2ba import translate
from repro.broker.contract import ContractSpec
from repro.broker.database import BrokerConfig, ContractDatabase
from repro.ltl.parser import parse


class TestPrebuiltRegistration:
    def test_prebuilt_ba_used_verbatim(self):
        db = ContractDatabase()
        spec = ContractSpec("t", (parse("F a"),))
        ba = translate(spec.formula)
        contract = db.register_spec(spec, prebuilt_ba=ba)
        assert contract.ba is ba

    def test_prebuilt_skips_translation_cost(self):
        spec = ContractSpec("t", (parse("G(a -> F b) && G(c -> !a)"),))
        fresh = ContractDatabase()
        fresh.register_spec(spec)
        cost = fresh.registration_stats.translation_seconds

        ba = translate(spec.formula)
        reused = ContractDatabase()
        reused.register_spec(spec, prebuilt_ba=ba)
        assert reused.registration_stats.translation_seconds < max(
            cost, 0.001
        )


class TestQueryStatsPlumbing:
    def test_phase_times_sum_to_total(self, airfare_db):
        result = airfare_db.query("F(missedFlight && F refund)")
        s = result.stats
        parts = (
            s.translation_seconds
            + s.prefilter_seconds
            + s.selection_seconds
            + s.permission_seconds
        )
        assert parts <= s.total_seconds + 1e-6

    def test_selection_time_negligible_without_projections(self, airfare_db):
        result = airfare_db.query(
            "F refund", use_projections=False
        )
        # only the branch dispatch is timed; no store is consulted
        assert result.stats.selection_seconds < 0.01

    def test_prefilter_time_zero_when_disabled(self, airfare_db):
        result = airfare_db.query("F refund", use_prefilter=False)
        assert result.stats.prefilter_seconds == 0.0
        assert result.stats.pruning_condition == ""

    def test_registration_totals(self):
        db = ContractDatabase(BrokerConfig(use_projections=True))
        db.register("a", "G(a -> F b)")
        db.register("b", "F c")
        stats = db.registration_stats
        assert stats.contracts == 2
        assert stats.projection_seconds > 0
        assert stats.total_seconds >= (
            stats.translation_seconds + stats.projection_seconds
        )


class TestDatabaseStatsAggregates:
    def test_index_metrics_present(self, airfare_db):
        stats = airfare_db.database_stats()
        assert stats["index_nodes"] >= 1
        assert stats["index_size"] >= stats["index_nodes"] - 1
