"""Tests for the governed event vocabulary."""

import pytest

from repro.broker.database import ContractDatabase
from repro.broker.vocabulary import EventVocabulary
from repro.errors import BrokerError
from repro.ltl.parser import parse


@pytest.fixture
def airfare_vocab():
    return EventVocabulary.describe(
        purchase="the ticket is purchased",
        use="the ticket is used",
        missedFlight="the customer misses the flight",
        refund="the customer is refunded",
        dateChange="the flight is rescheduled",
    )


class TestCatalog:
    def test_membership_and_iteration(self, airfare_vocab):
        assert "refund" in airfare_vocab
        assert "classUpgrade" not in airfare_vocab
        assert list(airfare_vocab) == sorted(airfare_vocab.names())
        assert len(airfare_vocab) == 5

    def test_descriptions(self, airfare_vocab):
        assert airfare_vocab.description("refund") == (
            "the customer is refunded"
        )
        with pytest.raises(KeyError):
            airfare_vocab.description("nope")

    def test_of_constructor(self):
        vocab = EventVocabulary.of("a", "b")
        assert vocab.names() == frozenset({"a", "b"})
        assert vocab.description("a") == ""

    def test_unknown_events(self, airfare_vocab):
        formula = parse("G(purchase -> !clasUpgrade)")
        assert airfare_vocab.unknown_events(formula) == {"clasUpgrade"}

    def test_extended_keeps_old(self, airfare_vocab):
        grown = airfare_vocab.extended(classUpgrade="cabin upgraded")
        assert "classUpgrade" in grown
        assert "refund" in grown
        # the original is untouched (requirement iii: no revisions forced)
        assert "classUpgrade" not in airfare_vocab

    def test_str(self, airfare_vocab):
        assert "refund" in str(airfare_vocab)


class TestValidation:
    def test_validate_passes_conforming(self, airfare_vocab):
        airfare_vocab.validate_contract(
            "ok", [parse("G(dateChange -> !F refund)")]
        )

    def test_validate_rejects_unknown(self, airfare_vocab):
        with pytest.raises(BrokerError) as info:
            airfare_vocab.validate_contract(
                "bad", [parse("G(dateChang -> !F refund)")]
            )
        assert "dateChang" in str(info.value)


class TestBrokerEnforcement:
    def test_registration_guard(self, airfare_vocab):
        db = ContractDatabase(vocabulary=airfare_vocab)
        db.register("fine", "G(dateChange -> !F refund)")
        with pytest.raises(BrokerError):
            db.register("typo", "G(dateChage -> !F refund)")
        assert len(db) == 1

    def test_queries_not_rejected(self, airfare_vocab):
        """Queries may cite events no contract knows — Definition 1 makes
        them match nothing on those events, which is the point."""
        db = ContractDatabase(vocabulary=airfare_vocab)
        db.register("fine", "G(dateChange -> !F refund)")
        result = db.query("F classUpgrade")
        assert result.contract_ids == ()

    def test_no_vocabulary_means_no_guard(self):
        db = ContractDatabase()
        db.register("anything", "G someUnusualEvent")
        assert len(db) == 1


class TestExplainFlag:
    def test_witnesses_on_request(self, airfare_db):
        query = "F(missedFlight && F(refund || dateChange))"
        plain = airfare_db.query(query)
        assert plain.witnesses == {}
        explained = airfare_db.query(query, explain=True)
        assert set(explained.witnesses) == set(explained.contract_ids)
        for contract_id in explained.contract_ids:
            witness = explained.witness_for(contract_id)
            run = witness.to_run()
            contract = airfare_db.get(contract_id)
            assert contract.ba.accepts(run)

    def test_witness_for_missing_raises(self, airfare_db):
        result = airfare_db.query("F refund")
        with pytest.raises(KeyError):
            result.witness_for(0)
