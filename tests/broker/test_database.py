"""Unit tests for the contract database (registration + query pipeline)."""

import pytest

from repro.broker.database import BrokerConfig, ContractDatabase
from repro.broker.relational import AttributeFilter, eq, le
from repro.errors import BrokerError
from repro.ltl.parser import parse
from repro.workload.airfare import QUERIES, all_ticket_specs


class TestRegistration:
    def test_register_parses_strings(self):
        db = ContractDatabase()
        contract = db.register("t", ["G(a -> F b)"])
        assert contract.vocabulary == frozenset({"a", "b"})
        assert len(db) == 1

    def test_register_accepts_single_clause(self):
        db = ContractDatabase()
        contract = db.register("t", "G a")
        assert contract.spec.clauses == (parse("G a"),)

    def test_register_accepts_formula_objects(self):
        db = ContractDatabase()
        contract = db.register("t", [parse("G a"), "F b"])
        assert len(contract.spec.clauses) == 2

    def test_ids_are_sequential(self):
        db = ContractDatabase()
        c0 = db.register("a", "G a")
        c1 = db.register("b", "G b")
        assert (c0.contract_id, c1.contract_id) == (0, 1)

    def test_registration_stats_accumulate(self):
        db = ContractDatabase()
        db.register("a", "G(a -> F b)")
        stats = db.registration_stats
        assert stats.contracts == 1
        assert stats.translation_seconds > 0
        assert stats.total_seconds >= stats.translation_seconds

    def test_projections_skipped_when_disabled(self):
        db = ContractDatabase(BrokerConfig(use_projections=False))
        contract = db.register("a", "G a")
        assert contract.projections is None

    def test_deregister(self):
        db = ContractDatabase()
        contract = db.register("a", "F a")
        db.deregister(contract.contract_id)
        assert len(db) == 0
        assert db.query("F a").contract_ids == ()

    def test_deregister_unknown_raises(self):
        db = ContractDatabase()
        with pytest.raises(BrokerError):
            db.deregister(9)

    def test_deregister_decrements_registration_stats(self):
        # regression: register -> deregister used to leave the contracts
        # counter at 1 while len(db) was 0
        db = ContractDatabase()
        contract = db.register("a", "F a")
        assert db.registration_stats.contracts == 1
        db.deregister(contract.contract_id)
        assert db.registration_stats.contracts == 0
        assert len(db) == 0

    def test_deregister_reregister_query_lifecycle(self):
        db = ContractDatabase()
        first = db.register("a", "F a")
        db.deregister(first.contract_id)
        second = db.register("a", "F a")
        assert db.registration_stats.contracts == 1
        assert second.contract_id != first.contract_id
        result = db.query("F a")
        assert result.contract_ids == (second.contract_id,)
        assert result.stats.database_size == 1


class TestQueryPipeline:
    def test_paper_queries(self, airfare_db):
        for name, info in QUERIES.items():
            result = airfare_db.query(info["ltl"])
            assert set(result.contract_names) == info["expected"], name

    def test_optimizations_do_not_change_results(self, airfare_db):
        for info in QUERIES.values():
            baseline = set(
                airfare_db.query(
                    info["ltl"], use_prefilter=False, use_projections=False
                ).contract_names
            )
            for pf in (False, True):
                for pj in (False, True):
                    got = set(
                        airfare_db.query(
                            info["ltl"], use_prefilter=pf, use_projections=pj
                        ).contract_names
                    )
                    assert got == baseline

    def test_attribute_filter_pre_selects(self, airfare_db):
        result = airfare_db.query(
            "F(missedFlight && F(refund || dateChange))",
            AttributeFilter.where(le("price", 700)),
        )
        # Ticket A costs 980 and is filtered out relationally.
        assert set(result.contract_names) == {"Ticket B"}
        assert result.stats.relational_matches == 2

    def test_attribute_filter_no_match(self, airfare_db):
        result = airfare_db.query(
            "F refund", AttributeFilter.where(eq("airline", "NoSuch"))
        )
        assert result.contract_ids == ()
        assert result.stats.candidates == 0

    def test_stats_phases(self, airfare_db):
        result = airfare_db.query("F(missedFlight && F refund)")
        s = result.stats
        assert s.database_size == 3
        assert s.translation_seconds > 0
        assert s.total_seconds >= s.permission_seconds
        assert s.checked == s.candidates
        assert s.used_prefilter and s.used_projections
        assert s.pruning_condition

    def test_pruning_ratio(self, airfare_db):
        # classUpgrade queries prune everything
        result = airfare_db.query("F classUpgrade")
        assert result.stats.candidates == 0
        assert result.stats.pruning_ratio == 1.0

    def test_query_accepts_formula(self, airfare_db):
        result = airfare_db.query(parse("F refund"))
        assert "Ticket B" in result.contract_names


class TestDirectChecks:
    def test_permits_contract(self, airfare_db, airfare_contracts):
        a = airfare_contracts["Ticket A"].contract_id
        assert airfare_db.permits_contract(a, "F dateChange")
        assert not airfare_db.permits_contract(a, "F classUpgrade")

    def test_explain_returns_witness(self, airfare_db, airfare_contracts):
        a = airfare_contracts["Ticket A"].contract_id
        witness = airfare_db.explain(a, "F(missedFlight && F dateChange)")
        assert witness is not None
        run = witness.to_run()
        assert airfare_contracts["Ticket A"].ba.accepts(run)

    def test_explain_none_when_not_permitted(self, airfare_db,
                                             airfare_contracts):
        c = airfare_contracts["Ticket C"].contract_id
        assert airfare_db.explain(c, "F refund") is None

    def test_get_unknown_raises(self, airfare_db):
        with pytest.raises(BrokerError):
            airfare_db.get(999)

    def test_contains_and_iter(self, airfare_db):
        ids = [c.contract_id for c in airfare_db.contracts()]
        assert len(ids) == 3
        assert ids[0] in airfare_db
        assert 999 not in airfare_db


class TestConfig:
    def test_unoptimized_clone(self):
        config = BrokerConfig().unoptimized()
        assert not config.use_prefilter
        assert not config.use_projections
        assert config.use_seeds  # seeds are part of the base algorithm

    def test_scc_algorithm_config(self):
        db = ContractDatabase(BrokerConfig(permission_algorithm="scc"))
        for spec in all_ticket_specs():
            db.register_spec(spec)
        result = db.query("F(missedFlight && F(refund || dateChange))")
        assert set(result.contract_names) == {"Ticket A", "Ticket B"}

    def test_database_stats(self, airfare_db):
        stats = airfare_db.database_stats()
        assert stats["contracts"] == 3
        assert stats["states_avg"] > 0
        assert stats["index_nodes"] > 0

    def test_empty_database_stats(self):
        assert ContractDatabase().database_stats() == {"contracts": 0}
