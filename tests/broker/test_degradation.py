"""End-to-end tests of budgeted query execution and graceful degradation.

The correctness contract of a degraded answer (QueryOutcome docstring):

    contract_ids  ⊆  exact_permitted  ⊆  contract_ids ∪ maybe_ids

Wall-clock tests use generous margins; the determinism-sensitive ones
drive a step budget instead, which trips at exactly the same point on
every run.
"""

import pytest

from repro.broker.database import BrokerConfig, ContractDatabase
from repro.broker.options import Degradation, QueryOptions
from repro.broker.query import Verdict
from repro.errors import QueryBudgetError
from repro.ltl.printer import format_formula
from repro.workload.generator import pathological_query, pathological_specs


@pytest.fixture(scope="module")
def adversarial_db() -> ContractDatabase:
    """A small pathological database: eventuality-conjunction contracts
    whose scan-mode checks against :func:`pathological_query` are all
    exhaustive (False) searches, led by one slow "monster" contract."""
    db = ContractDatabase(BrokerConfig(use_projections=False))
    for i, spec in enumerate(pathological_specs(10, monsters=1, seed=3)):
        db.register(f"c{i}", list(spec.clauses))
    return db


@pytest.fixture(scope="module")
def adversarial_query() -> str:
    return format_formula(pathological_query())


SCAN = dict(use_prefilter=False)


class TestDeadlineDegradation:
    def test_tight_deadline_degrades_promptly(
        self, adversarial_db, adversarial_query
    ):
        outcome = adversarial_db.query(
            adversarial_query,
            QueryOptions(deadline_seconds=0.05, **SCAN),
        )
        assert outcome.degraded
        assert outcome.stats.timed_out >= 1
        # the first (monster) check straddles the deadline: TIMED_OUT,
        # everything queued behind it is cancelled
        assert outcome.verdicts[0] is Verdict.TIMED_OUT
        assert outcome.stats.total_seconds < 1.0

    def test_candidates_ledger_balances(
        self, adversarial_db, adversarial_query
    ):
        outcome = adversarial_db.query(
            adversarial_query,
            QueryOptions(deadline_seconds=0.05, **SCAN),
        )
        s = outcome.stats
        assert s.candidates == s.checked + s.timed_out + s.skipped
        assert s.deadline_seconds == 0.05

    def test_no_deadline_runs_to_exact_answer(
        self, adversarial_db, adversarial_query
    ):
        outcome = adversarial_db.query(
            adversarial_query, QueryOptions(**SCAN)
        )
        assert not outcome.degraded
        assert outcome.stats.checked == outcome.stats.candidates
        assert all(v.conclusive for v in outcome.verdicts.values())

    def test_skipped_checks_report_no_permission_time(
        self, adversarial_db, adversarial_query
    ):
        outcome = adversarial_db.query(
            adversarial_query,
            QueryOptions(deadline_seconds=0.05, **SCAN),
        )
        skipped = [
            cid for cid, v in outcome.verdicts.items()
            if v is Verdict.SKIPPED
        ]
        assert skipped  # the monster burned the whole budget


class TestStepBudgetDegradation:
    def test_superset_consistency_deterministic(
        self, adversarial_db, adversarial_query
    ):
        exact = adversarial_db.query(adversarial_query, QueryOptions(**SCAN))
        degraded = adversarial_db.query(
            adversarial_query,
            QueryOptions(step_budget=50, **SCAN),
        )
        assert degraded.degraded
        assert set(degraded.contract_ids) <= set(exact.contract_ids)
        assert set(exact.contract_ids) <= (
            set(degraded.contract_ids) | set(degraded.maybe_ids)
        )

    def test_step_budget_reproducible(
        self, adversarial_db, adversarial_query
    ):
        options = QueryOptions(step_budget=50, **SCAN)
        first = adversarial_db.query(adversarial_query, options)
        second = adversarial_db.query(adversarial_query, options)
        assert first.verdicts == second.verdicts
        assert first.maybe_ids == second.maybe_ids

    def test_per_contract_budget_times_out_every_candidate(
        self, adversarial_db, adversarial_query
    ):
        outcome = adversarial_db.query(
            adversarial_query,
            QueryOptions(step_budget=10, **SCAN),
        )
        # a step budget is per candidate, so nothing is ever skipped
        assert outcome.stats.skipped == 0
        assert outcome.stats.timed_out == outcome.stats.candidates

    def test_generous_step_budget_is_exact(self, airfare_db):
        query = "F(missedFlight && F(refund || dateChange))"
        exact = airfare_db.query(query)
        budgeted = airfare_db.query(
            query, QueryOptions(step_budget=10_000_000)
        )
        assert budgeted.contract_ids == exact.contract_ids
        assert not budgeted.degraded


class TestDegradationPolicies:
    def test_maybe_is_default(self, adversarial_db, adversarial_query):
        outcome = adversarial_db.query(
            adversarial_query, QueryOptions(step_budget=10, **SCAN)
        )
        assert len(outcome.maybe_ids) == outcome.stats.candidates
        assert outcome.maybe_names == tuple(
            adversarial_db.get(cid).name for cid in outcome.maybe_ids
        )

    def test_drop_hides_maybe_but_keeps_verdicts(
        self, adversarial_db, adversarial_query
    ):
        outcome = adversarial_db.query(
            adversarial_query,
            QueryOptions(
                step_budget=10, degradation=Degradation.DROP, **SCAN
            ),
        )
        assert outcome.degraded
        assert outcome.maybe_ids == ()
        assert any(
            not v.conclusive for v in outcome.verdicts.values()
        )

    def test_fail_raises(self, adversarial_db, adversarial_query):
        with pytest.raises(QueryBudgetError, match="budget exhausted"):
            adversarial_db.query(
                adversarial_query,
                QueryOptions(
                    step_budget=10, degradation=Degradation.FAIL, **SCAN
                ),
            )

    def test_fail_without_exhaustion_answers_normally(self, airfare_db):
        outcome = airfare_db.query(
            "F refund",
            QueryOptions(
                step_budget=10_000_000, degradation=Degradation.FAIL
            ),
        )
        assert not outcome.degraded


class TestConsistencyAfterCancellation:
    def test_cache_and_metrics_stay_consistent(self, adversarial_query):
        db = ContractDatabase(BrokerConfig(use_projections=False))
        for i, spec in enumerate(pathological_specs(6, monsters=1, seed=4)):
            db.register(f"c{i}", list(spec.clauses))

        degraded = db.query(
            adversarial_query, QueryOptions(step_budget=10, **SCAN)
        )
        assert degraded.degraded
        assert db.metrics.counter_value("query.degraded") == 1
        assert db.metrics.counter_value("query.contracts_timed_out") == \
            degraded.stats.timed_out

        # the compiled query was cached despite the degraded first run,
        # and an unbudgeted re-run is exact
        exact = db.query(adversarial_query, QueryOptions(**SCAN))
        assert exact.stats.cache_hit
        assert not exact.degraded
        assert db.metrics.counter_value("query.degraded") == 1
        assert db.metrics.counter_value("query.count") == 2

    def test_failed_query_still_recorded(self, adversarial_query):
        db = ContractDatabase(BrokerConfig(use_projections=False))
        for i, spec in enumerate(pathological_specs(4, monsters=1, seed=5)):
            db.register(f"c{i}", list(spec.clauses))
        with pytest.raises(QueryBudgetError):
            db.query(
                adversarial_query,
                QueryOptions(
                    step_budget=10, degradation=Degradation.FAIL, **SCAN
                ),
            )
        assert db.metrics.counter_value("query.count") == 1
        assert db.metrics.counter_value("query.degraded") == 1


class TestBudgetedQueryMany:
    def test_each_query_gets_its_own_deadline(
        self, adversarial_db, adversarial_query
    ):
        outcomes = adversarial_db.query_many(
            [adversarial_query, "F ev0"],
            QueryOptions(deadline_seconds=0.05, workers=2, **SCAN),
        )
        assert outcomes[0].degraded
        # the cheap query is not starved by the pathological one
        assert not outcomes[1].degraded
        assert outcomes[1].stats.checked == outcomes[1].stats.candidates

    def test_parallel_step_budget_matches_serial(
        self, adversarial_db, adversarial_query
    ):
        options = QueryOptions(step_budget=50, **SCAN)
        serial = adversarial_db.query(adversarial_query, options)
        (parallel,) = adversarial_db.query_many(
            [adversarial_query], options.evolve(workers=4)
        )
        assert parallel.verdicts == serial.verdicts
        assert parallel.contract_ids == serial.contract_ids
        assert parallel.maybe_ids == serial.maybe_ids


class TestBudgetedWitnesses:
    def test_witnesses_still_extracted_when_time_remains(self, airfare_db):
        outcome = airfare_db.query(
            "F refund",
            QueryOptions(deadline_seconds=30.0, explain=True),
        )
        assert not outcome.degraded
        for cid in outcome.contract_ids:
            assert cid in outcome.witnesses
