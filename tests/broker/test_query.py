"""Unit tests for query-result objects."""

from repro.broker.query import QueryResult, QueryStats
from repro.ltl.parser import parse


def result(ids=(1, 3), names=("a", "b"), **stats_kwargs) -> QueryResult:
    return QueryResult(
        formula=parse("F p"),
        contract_ids=tuple(ids),
        contract_names=tuple(names),
        stats=QueryStats(**stats_kwargs),
    )


class TestQueryResult:
    def test_len_iter_contains(self):
        r = result()
        assert len(r) == 2
        assert list(r) == [1, 3]
        assert 3 in r
        assert 2 not in r

    def test_str_mentions_names(self):
        assert "a, b" in str(result())

    def test_str_empty(self):
        assert "(none)" in str(result(ids=(), names=()))


class TestQueryStats:
    def test_pruning_ratio(self):
        stats = QueryStats(relational_matches=10, candidates=2)
        assert stats.pruning_ratio == 0.8

    def test_pruning_ratio_empty_database(self):
        assert QueryStats().pruning_ratio == 0.0

    def test_no_pruning(self):
        stats = QueryStats(relational_matches=5, candidates=5)
        assert stats.pruning_ratio == 0.0
