"""Tests for batched (and parallel) query evaluation."""

import pytest

from repro.broker.database import BrokerConfig, ContractDatabase
from repro.broker.parallel import query_many
from repro.broker.relational import AttributeFilter, le
from repro.ltl.ast import conj
from repro.workload.airfare import QUERIES, all_ticket_specs
from repro.workload.generator import WorkloadGenerator


def _airfare_db(**config_kwargs) -> ContractDatabase:
    db = ContractDatabase(BrokerConfig(**config_kwargs))
    for spec in all_ticket_specs():
        db.register_spec(spec)
    return db


def _generated_workload(count=6, patterns=1, seed=81):
    generator = WorkloadGenerator(vocabulary_size=6, seed=seed)
    return [conj(spec.clauses)
            for spec in generator.generate_specs(count, patterns)]


def _generated_db(count=10, seed=80) -> ContractDatabase:
    db = ContractDatabase()
    generator = WorkloadGenerator(vocabulary_size=6, seed=seed)
    for i, spec in enumerate(generator.generate_specs(count, 2)):
        db.register(f"c{i}", list(spec.clauses))
    return db


class TestSerialBatch:
    def test_results_in_input_order(self):
        db = _airfare_db()
        queries = [info["ltl"] for info in QUERIES.values()]
        results = db.query_many(queries)
        assert len(results) == len(queries)
        for text, result, info in zip(queries, results, QUERIES.values()):
            assert set(result.contract_names) == info["expected"], text

    def test_empty_workload(self):
        assert _airfare_db().query_many([]) == []

    def test_repeats_hit_the_cache(self):
        db = _airfare_db()
        queries = ["F refund"] * 5
        results = db.query_many(queries)
        assert [r.stats.cache_hit for r in results] == [False] + [True] * 4

    def test_attribute_filter_applies_to_every_query(self):
        db = _airfare_db()
        results = db.query_many(
            ["F(missedFlight && F(refund || dateChange))"] * 2,
            AttributeFilter.where(le("price", 700)),
        )
        for result in results:
            assert set(result.contract_names) == {"Ticket B"}


class TestParallelParity:
    @pytest.mark.parametrize("optimized", [True, False])
    def test_parallel_identical_to_serial(self, optimized):
        queries = _generated_workload(count=8)
        serial_db = _generated_db()
        parallel_db = _generated_db()
        overrides = dict(
            use_prefilter=optimized, use_projections=optimized
        )
        serial = [serial_db.query(q, **overrides) for q in queries]
        parallel = parallel_db.query_many(queries, workers=4, **overrides)
        assert [r.contract_ids for r in parallel] == [
            r.contract_ids for r in serial
        ]
        assert [r.stats.permitted for r in parallel] == [
            r.stats.permitted for r in serial
        ]
        assert [r.stats.candidates for r in parallel] == [
            r.stats.candidates for r in serial
        ]
        assert [r.stats.checked for r in parallel] == [
            r.stats.checked for r in serial
        ]

    def test_parallel_airfare_outcomes(self):
        db = _airfare_db()
        queries = list(QUERIES)
        results = db.query_many(
            [QUERIES[name]["ltl"] for name in queries], workers=3
        )
        for name, result in zip(queries, results):
            assert set(result.contract_names) == QUERIES[name]["expected"]

    def test_parallel_explain_carries_witnesses(self):
        db = _airfare_db()
        results = db.query_many(["F refund"], workers=2, explain=True)
        (result,) = results
        for contract_id in result.contract_ids:
            witness = result.witness_for(contract_id)
            run = witness.to_run()
            assert db.get(contract_id).ba.accepts(run)

    def test_module_level_function_matches_method(self):
        db = _airfare_db()
        queries = ["F refund", "F dateChange"]
        via_method = db.query_many(queries, workers=2)
        via_function = query_many(db, queries, workers=2)
        assert [r.contract_ids for r in via_method] == [
            r.contract_ids for r in via_function
        ]

    def test_metrics_fed_once_per_query(self):
        db = _airfare_db()
        db.query_many(["F refund"] * 4, workers=2)
        assert db.metrics.counter_value("query.count") == 4


class TestPoolFallbackResume:
    def test_mid_workload_pool_death_resumes_without_recounting(self):
        """A pool dying on query k must not re-evaluate (or re-count)
        queries 0..k-1; the serial fallback resumes from k."""
        from repro.broker.options import QueryOptions
        from repro.core import faults

        db = _airfare_db()
        queries = ["F refund", "F dateChange", "F refund", "F missedFlight"]
        expected = [q.contract_ids for q in db.query_many(list(queries))]
        baseline = db.metrics.counter_value("query.count")

        faults.fail_at("query.pool", nth=3, exc=RuntimeError("pool died"))
        outcomes = db.query_many(queries, QueryOptions(workers=2))

        assert [o.contract_ids for o in outcomes] == expected
        # each query counted exactly once despite the fallback
        assert (
            db.metrics.counter_value("query.count") - baseline
            == len(queries)
        )
        assert db.metrics.counter_value("query.pool_fallback") == 1

    def test_pool_creation_failure_falls_back_entirely(self, monkeypatch):
        import repro.broker.parallel as parallel_module

        class NoPool:
            def __init__(self, max_workers=None):
                raise RuntimeError("thread limit reached")

        monkeypatch.setattr(parallel_module, "ThreadPoolExecutor", NoPool)
        db = _airfare_db()
        outcomes = db.query_many(["F refund"] * 2, workers=2)
        assert len(outcomes) == 2
        assert db.metrics.counter_value("query.pool_fallback") == 1
        assert db.metrics.counter_value("query.count") == 2
