"""The write-ahead journal: append/replay, torn-tail healing, the
epoch handshake with the snapshot, and configuration round trips."""

import json

import pytest

from repro.broker.database import BrokerConfig, ContractDatabase
from repro.broker.journal import (
    JOURNAL_FILE,
    Journal,
    open_database,
)
from repro.broker.persist import load_database, save_database
from repro.errors import JournalError


def _names(db: ContractDatabase) -> list[str]:
    contracts = sorted(db.contracts(), key=lambda c: c.contract_id)
    return [c.name for c in contracts]


class TestJournalFile:
    def test_fresh_journal_has_header(self, tmp_path):
        journal = Journal.open(tmp_path / JOURNAL_FILE, epoch=3)
        assert journal.epoch == 3
        assert len(journal) == 0
        lines = (tmp_path / JOURNAL_FILE).read_bytes().splitlines()
        assert len(lines) == 1
        header = json.loads(lines[0])
        assert header["op"] == "open"
        assert header["data"]["epoch"] == 3

    def test_append_reopen_round_trip(self, tmp_path):
        path = tmp_path / JOURNAL_FILE
        journal = Journal.open(path)
        journal.append("register", {"name": "a", "clauses": ["F x"]})
        journal.append("deregister", {"contract_id": 0})
        journal.close()
        reopened = Journal.open(path)
        assert [(r.op, r.seq) for r in reopened.tail] == [
            ("register", 1),
            ("deregister", 2),
        ]
        assert reopened.torn_records == 0

    def test_append_rejects_unknown_op(self, tmp_path):
        journal = Journal.open(tmp_path / JOURNAL_FILE)
        with pytest.raises(JournalError):
            journal.append("destroy", {})
        with pytest.raises(JournalError):
            journal.append("open", {})  # the header is not appendable

    def test_append_rejects_unserializable_payload(self, tmp_path):
        journal = Journal.open(tmp_path / JOURNAL_FILE)
        with pytest.raises(JournalError):
            journal.append("register", {"bad": object()})
        # the failed append left no partial record behind
        reopened = Journal.open(tmp_path / JOURNAL_FILE)
        assert len(reopened) == 0

    def test_torn_tail_truncated_and_healed_in_place(self, tmp_path):
        path = tmp_path / JOURNAL_FILE
        journal = Journal.open(path)
        journal.append("register", {"name": "a", "clauses": ["F x"]})
        journal.append("register", {"name": "b", "clauses": ["F y"]})
        journal.close()
        raw = path.read_bytes()
        path.write_bytes(raw[:-5])  # tear the last record mid-line

        reopened = Journal.open(path)
        assert [r.data["name"] for r in reopened.tail] == ["a"]
        assert reopened.torn_records == 1
        assert reopened.torn_bytes > 0
        # healed in place: a second open sees a clean file
        again = Journal.open(path)
        assert again.torn_records == 0
        assert [r.data["name"] for r in again.tail] == ["a"]

    def test_corrupt_middle_record_drops_the_rest(self, tmp_path):
        path = tmp_path / JOURNAL_FILE
        journal = Journal.open(path)
        for name in ("a", "b", "c"):
            journal.append("register", {"name": name, "clauses": ["F x"]})
        journal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = lines[2].replace(b'"name":"b"', b'"name":"evil"')
        path.write_bytes(b"".join(lines))

        reopened = Journal.open(path)
        # the checksum disowns the edited record; everything after a
        # bad record is untrustworthy too (sequence gap)
        assert [r.data["name"] for r in reopened.tail] == ["a"]
        assert reopened.torn_records >= 1

    def test_append_after_heal_continues_sequence(self, tmp_path):
        path = tmp_path / JOURNAL_FILE
        journal = Journal.open(path)
        journal.append("register", {"name": "a", "clauses": ["F x"]})
        journal.append("register", {"name": "b", "clauses": ["F y"]})
        journal.close()
        raw = path.read_bytes()
        path.write_bytes(raw[:-5])
        healed = Journal.open(path)
        healed.append("register", {"name": "c", "clauses": ["F z"]})
        healed.close()
        final = Journal.open(path)
        assert [r.data["name"] for r in final.tail] == ["a", "c"]
        assert [r.seq for r in final.tail] == [1, 2]

    def test_compact_resets_to_header_at_new_epoch(self, tmp_path):
        path = tmp_path / JOURNAL_FILE
        journal = Journal.open(path)
        journal.append("register", {"name": "a", "clauses": ["F x"]})
        journal.compact(epoch=4, config=BrokerConfig())
        assert journal.epoch == 4
        assert len(journal) == 0
        reopened = Journal.open(path)
        assert reopened.epoch == 4
        assert len(reopened) == 0


class TestOpenDatabase:
    def test_empty_directory_starts_journaled_database(self, tmp_path):
        db = open_database(tmp_path)
        assert len(db) == 0
        assert db.journal is not None
        assert (tmp_path / JOURNAL_FILE).exists()
        assert db.journal_report.replayed == 0

    def test_mutations_survive_reopen_without_save(self, tmp_path):
        db = open_database(tmp_path)
        db.register("a", ["G(x -> F y)"], attributes={"price": 7})
        db.register("b", ["F z"], attributes={})
        db.deregister(0)

        recovered = open_database(tmp_path)
        assert recovered.journal_report.replayed == 3
        assert _names(recovered) == ["b"]
        contract = next(iter(recovered.contracts()))
        assert contract.attributes == {}
        # answers match the pre-crash database
        assert recovered.query("F z").contract_names == ("b",)

    def test_attributes_round_trip_through_replay(self, tmp_path):
        db = open_database(tmp_path)
        db.register("a", ["F x"], attributes={"price": 420, "route": "SAN"})
        recovered = open_database(tmp_path)
        contract = next(iter(recovered.contracts()))
        assert contract.attributes == {"price": 420, "route": "SAN"}

    def test_save_compacts_journal(self, tmp_path):
        db = open_database(tmp_path)
        db.register("a", ["F x"])
        save_database(db, tmp_path)
        assert len(db.journal) == 0
        assert db.journal.epoch == 1

        recovered = open_database(tmp_path)
        assert recovered.journal_report.replayed == 0
        assert _names(recovered) == ["a"]

    def test_snapshot_plus_tail(self, tmp_path):
        db = open_database(tmp_path)
        db.register("a", ["F x"])
        save_database(db, tmp_path)
        db.register("b", ["F y"])  # journal-only
        recovered = open_database(tmp_path)
        assert recovered.journal_report.replayed == 1
        assert _names(recovered) == ["a", "b"]

    def test_stale_journal_discarded_not_double_replayed(self, tmp_path):
        """Crash between manifest write and journal compaction: the
        journal's records are already in the snapshot."""
        db = open_database(tmp_path)
        db.register("a", ["F x"])
        journal_bytes = (tmp_path / JOURNAL_FILE).read_bytes()
        save_database(db, tmp_path)
        # resurrect the pre-compaction journal (epoch 0 < manifest's 1)
        (tmp_path / JOURNAL_FILE).write_bytes(journal_bytes)

        recovered = open_database(tmp_path)
        assert recovered.journal_report.replayed == 0
        assert recovered.journal_report.discarded_stale == 1
        assert _names(recovered) == ["a"]  # not ["a", "a"]

    def test_ahead_journal_discarded_with_warning(self, tmp_path):
        db = open_database(tmp_path)
        db.register("a", ["F x"])
        save_database(db, tmp_path)
        db.register("b", ["F y"])
        journal_bytes = (tmp_path / JOURNAL_FILE).read_bytes()
        # roll the snapshot back: re-save at a *lower* epoch by
        # rewriting the manifest's journal_epoch
        manifest_path = tmp_path / "contracts.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["journal_epoch"] = 0
        manifest_path.write_text(json.dumps(manifest))
        (tmp_path / JOURNAL_FILE).write_bytes(journal_bytes)

        recovered = open_database(tmp_path)
        assert recovered.journal_report.discarded_stale == 1
        assert any(
            "ahead" in w for w in recovered.journal_report.warnings
        )

    def test_unreplayable_record_truncates_rest(self, tmp_path):
        db = open_database(tmp_path)
        db.register("a", ["F x"])
        db.deregister(0)
        db.register("b", ["F y"])
        # make the deregister unreplayable: deregister id 0 twice by
        # editing the journal (checksummed, so recompute)
        from repro.broker.journal import _encode

        path = tmp_path / JOURNAL_FILE
        lines = path.read_bytes().splitlines(keepends=True)
        bogus = _encode(2, "deregister", {"contract_id": 99})
        path.write_bytes(lines[0] + lines[1] + bogus + lines[3])

        recovered = open_database(tmp_path)
        # the prefix before the bogus record replays; it and everything
        # after are dropped, with a warning
        assert _names(recovered) == ["a"]
        assert recovered.journal_report.replayed == 1
        assert any(
            "failed to replay" in w
            for w in recovered.journal_report.warnings
        )
        # and the file agrees with the database from now on
        again = open_database(tmp_path)
        assert _names(again) == ["a"]

    def test_replay_metrics_recorded(self, tmp_path):
        db = open_database(tmp_path)
        db.register("a", ["F x"])
        recovered = open_database(tmp_path)
        assert recovered.metrics.counter_value("journal.replayed") == 1

    def test_replayed_mutations_are_not_rejournaled(self, tmp_path):
        db = open_database(tmp_path)
        db.register("a", ["F x"])
        recovered = open_database(tmp_path)
        assert len(recovered.journal) == 1  # not 2
        again = open_database(tmp_path)
        assert again.journal_report.replayed == 1


class TestConfigRoundTrip:
    def test_explicit_config_wins(self, tmp_path):
        db = open_database(tmp_path, config=BrokerConfig(state_budget=99))
        assert db.config.state_budget == 99
        db.register("a", ["F x"])
        recovered = open_database(
            tmp_path, config=BrokerConfig(state_budget=77)
        )
        assert recovered.config.state_budget == 77

    def test_journal_header_config_used_on_argless_reopen(self, tmp_path):
        db = open_database(tmp_path, config=BrokerConfig(state_budget=99))
        db.register("a", ["F x"])
        recovered = open_database(tmp_path)
        assert recovered.config.state_budget == 99

    def test_manifest_config_used_after_save(self, tmp_path):
        db = open_database(
            tmp_path, config=BrokerConfig(prefilter_depth=3)
        )
        db.register("a", ["F x"])
        save_database(db, tmp_path)
        recovered = open_database(tmp_path)
        assert recovered.config.prefilter_depth == 3


class TestForeignDirectorySave:
    def test_saving_elsewhere_does_not_compact_the_journal(self, tmp_path):
        home = tmp_path / "home"
        export = tmp_path / "export"
        db = open_database(home)
        db.register("a", ["F x"])
        save_database(db, export)
        # the journal still holds the mutation: home must recover it
        assert len(db.journal) == 1
        recovered = open_database(home)
        assert _names(recovered) == ["a"]
        # and the export is an ordinary snapshot
        loaded = load_database(export)
        assert _names(loaded) == ["a"]


class TestReadFrom:
    """The reader-side tail API replicas build on: offset-based,
    torn-tail tolerant, and strictly non-mutating."""

    def _journal_with(self, tmp_path, count):
        db = open_database(tmp_path)
        for i in range(count):
            db.register(f"c{i}", [f"F a{i}"])
        return (tmp_path / JOURNAL_FILE).read_bytes()

    def test_read_whole_file_from_zero(self, tmp_path):
        raw = self._journal_with(tmp_path, 3)
        tail = Journal.read_from(tmp_path / JOURNAL_FILE)
        assert tail.epoch == 0
        assert not tail.torn
        assert [r.data["name"] for r in tail.records] == ["c0", "c1", "c2"]
        assert tail.end_offset == len(raw) == tail.file_size

    def test_resume_from_offset_with_expected_seq(self, tmp_path):
        self._journal_with(tmp_path, 2)
        first = Journal.read_from(tmp_path / JOURNAL_FILE)
        db = open_database(tmp_path)
        db.register("c2", ["F a2"])
        resumed = Journal.read_from(
            tmp_path / JOURNAL_FILE, first.end_offset,
            expected_seq=first.records[-1].seq + 1,
        )
        assert [r.data["name"] for r in resumed.records] == ["c2"]
        assert not resumed.torn
        # the header epoch is only visible from offset 0
        assert resumed.epoch is None

    def test_partially_flushed_last_record_is_not_consumed(self, tmp_path):
        """The regression this API exists for: a reader racing the
        writer sees a torn last record, stops before it, and resumes
        from the same offset once the record completes."""
        raw = self._journal_with(tmp_path, 3)
        boundaries = [i + 1 for i, b in enumerate(raw) if b == ord("\n")]
        reader_copy = tmp_path / "shipped" / JOURNAL_FILE
        reader_copy.parent.mkdir()
        # cut mid-way through the last record (between the second-last
        # boundary and EOF)
        cut = (boundaries[-2] + len(raw)) // 2
        assert boundaries[-2] < cut < len(raw)
        reader_copy.write_bytes(raw[:cut])
        tail = Journal.read_from(reader_copy)
        assert tail.torn
        assert [r.data["name"] for r in tail.records] == ["c0", "c1"]
        assert tail.end_offset == boundaries[-2]
        # strictly non-mutating: unlike Journal.open, the torn bytes
        # were NOT truncated away
        assert reader_copy.read_bytes() == raw[:cut]
        # the writer finishes the flush; the reader resumes at its
        # cursor and observes exactly the completed record
        reader_copy.write_bytes(raw)
        resumed = Journal.read_from(
            reader_copy, tail.end_offset,
            expected_seq=tail.records[-1].seq + 1,
        )
        assert not resumed.torn
        assert [r.data["name"] for r in resumed.records] == ["c2"]

    def test_every_torn_cut_yields_a_verified_prefix(self, tmp_path):
        raw = self._journal_with(tmp_path, 4)
        names = ["c0", "c1", "c2", "c3"]
        reader_copy = tmp_path / "shipped" / JOURNAL_FILE
        reader_copy.parent.mkdir()
        for cut in range(len(raw) + 1):
            reader_copy.write_bytes(raw[:cut])
            tail = Journal.read_from(reader_copy)
            got = [r.data["name"] for r in tail.records]
            assert got == names[: len(got)]
            # torn exactly when bytes past the verified prefix remain
            assert tail.torn == (tail.end_offset != cut)
            assert reader_copy.read_bytes() == raw[:cut]

    def test_corrupt_middle_record_stops_the_read(self, tmp_path):
        raw = self._journal_with(tmp_path, 3)
        lines = raw.split(b"\n")
        lines[2] = lines[2].replace(b'"c1"', b'"cX"')  # checksum breaks
        reader_copy = tmp_path / "shipped" / JOURNAL_FILE
        reader_copy.parent.mkdir()
        reader_copy.write_bytes(b"\n".join(lines))
        tail = Journal.read_from(reader_copy)
        assert tail.torn
        assert [r.data["name"] for r in tail.records] == ["c0"]

    def test_sequence_gap_is_torn(self, tmp_path):
        self._journal_with(tmp_path, 2)
        tail = Journal.read_from(
            tmp_path / JOURNAL_FILE, 0
        )
        # demanding a different sequence at an explicit offset fails fast
        mismatched = Journal.read_from(
            tmp_path / JOURNAL_FILE, tail.end_offset, expected_seq=99
        )
        assert mismatched.records == ()

    def test_missing_file_reads_empty(self, tmp_path):
        tail = Journal.read_from(tmp_path / "absent.jsonl", 0)
        assert tail.records == ()
        assert not tail.torn
        assert tail.epoch is None
        assert tail.file_size == 0

    def test_read_header_epoch(self, tmp_path):
        db = open_database(tmp_path)
        db.register("a", ["F x"])
        assert Journal.read_header_epoch(tmp_path / JOURNAL_FILE) == 0
        save_database(db, tmp_path)
        assert Journal.read_header_epoch(tmp_path / JOURNAL_FILE) == 1
        assert Journal.read_header_epoch(tmp_path / "absent") is None
        torn = tmp_path / "torn.jsonl"
        torn.write_bytes(b'{"seq": 0, "op": "open"')  # no newline
        assert Journal.read_header_epoch(torn) is None
