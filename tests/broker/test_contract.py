"""Unit tests for contract specifications."""

from repro.broker.contract import ContractSpec
from repro.ltl.ast import And
from repro.ltl.parser import parse


class TestContractSpec:
    def test_formula_is_conjunction(self):
        spec = ContractSpec(
            "t", (parse("G a"), parse("F b")), {}
        )
        assert spec.formula == And(parse("G a"), parse("F b"))

    def test_single_clause_formula(self):
        spec = ContractSpec("t", (parse("G a"),), {})
        assert spec.formula == parse("G a")

    def test_vocabulary_from_all_clauses(self):
        spec = ContractSpec(
            "t", (parse("G a"), parse("F(b && !c)")), {}
        )
        assert spec.vocabulary == frozenset({"a", "b", "c"})

    def test_attributes_default_empty(self):
        spec = ContractSpec("t", (parse("G a"),))
        assert dict(spec.attributes) == {}


class TestContractObject:
    def test_accessors(self, airfare_contracts):
        c = airfare_contracts["Ticket A"]
        assert c.name == "Ticket A"
        assert c.vocabulary == frozenset(
            {"purchase", "use", "missedFlight", "refund", "dateChange"}
        )
        assert c.attributes["airline"] == "United"

    def test_str(self, airfare_contracts):
        text = str(airfare_contracts["Ticket A"])
        assert "Ticket A" in text and "states" in text
