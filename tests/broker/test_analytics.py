"""Tests for behavioral contract comparison."""

from repro.automata.ltl2ba import translate
from repro.broker.analytics import (
    Comparison,
    Relation,
    behavioral_relation,
    compare,
    distinguishing_run,
)
from repro.ltl.parser import parse


def ba(text: str):
    return translate(parse(text))


class TestDistinguishingRun:
    def test_finds_difference(self):
        wants_a = ba("F a")
        forbids_a = ba("G !a")
        run = distinguishing_run(wants_a, forbids_a)
        assert run is not None
        assert wants_a.accepts(run)
        assert not forbids_a.accepts(run)

    def test_none_when_contained(self):
        strict = ba("G !a")
        permissive = ba("true")
        assert distinguishing_run(strict, permissive) is None

    def test_uncited_events_never_exhibited(self):
        """Witnesses follow the projection discipline of Definition 1: a
        contract that never cites 'a' cannot exhibit behavior over it,
        so 'true' is indistinguishable from 'G !a' from its own side."""
        assert distinguishing_run(ba("true"), ba("G !a")) is None

    def test_none_for_equal_languages(self):
        left = ba("F p")
        right = ba("true U p")
        assert distinguishing_run(left, right) is None
        assert distinguishing_run(right, left) is None


class TestBehavioralRelation:
    def test_equivalent_formulations(self):
        result = behavioral_relation(ba("p W q"), ba("G p || (p U q)"))
        assert result.relation == Relation.INDISTINGUISHABLE
        assert result.left_only is None and result.right_only is None

    def test_strict_containment(self):
        result = behavioral_relation(ba("p W q"), ba("p U q"))
        assert result.relation == Relation.LEFT_MORE_PERMISSIVE
        assert result.left_only is not None
        assert result.right_only is None

    def test_symmetric_containment(self):
        result = behavioral_relation(ba("p U q"), ba("p W q"))
        assert result.relation == Relation.RIGHT_MORE_PERMISSIVE

    def test_incomparable(self):
        result = behavioral_relation(ba("G a"), ba("G !a"))
        assert result.relation == Relation.INCOMPARABLE
        assert result.left_only is not None
        assert result.right_only is not None

    def test_str_mentions_witness(self):
        result = behavioral_relation(ba("F a"), ba("G !a"))
        assert "left-only" in str(result)


class TestContractComparison:
    def test_ticket_a_vs_c(self, airfare_contracts):
        """Ticket A allows refunds and unlimited changes; Ticket C allows
        neither — A must be strictly more permissive or incomparable with
        a left-only witness involving a refund or second change."""
        result = compare(
            airfare_contracts["Ticket A"], airfare_contracts["Ticket C"],
            limit=200,
        )
        assert result.left_only is not None
        events = set()
        for snap in result.left_only.prefix + result.left_only.loop:
            events |= snap
        # the difference is about refunds or repeat changes
        assert events & {"refund", "dateChange"}

    def test_contract_vs_itself(self, airfare_contracts):
        result = compare(
            airfare_contracts["Ticket B"], airfare_contracts["Ticket B"]
        )
        assert result.relation == Relation.INDISTINGUISHABLE
