"""Tests for the per-query optimization planner."""

from hypothesis import given, settings

from repro.automata.ltl2ba import translate
from repro.broker.planner import QueryPlan, QueryPlanner
from repro.ltl.parser import parse

from ..strategies import formulas


class TestPlanChoices:
    def test_selective_simple_query_uses_both(self):
        plan = QueryPlanner().plan(translate(parse("F refund")))
        assert plan.use_prefilter
        assert plan.use_projections

    def test_unprunable_query_skips_prefilter(self):
        # a query satisfied by unconstrained behavior cannot prune
        plan = QueryPlanner().plan(translate(parse("true")))
        assert not plan.use_prefilter

    def test_literal_heavy_query_skips_projections(self):
        query = translate(parse(
            "F(a && F(b && F(c && F(d && F e))))"
        ))
        plan = QueryPlanner(projection_literal_budget=3).plan(query)
        assert not plan.use_projections
        assert plan.use_prefilter

    def test_reason_is_informative(self):
        plan = QueryPlanner().plan(translate(parse("F refund")))
        assert "literal" in plan.reason or "condition" in plan.reason
        assert "prefilter" in str(plan)

    def test_plan_is_value_object(self):
        assert QueryPlan(True, False, "x") == QueryPlan(True, False, "x")


class TestPlannedQueries:
    def test_planned_results_match_default(self, airfare_db):
        from repro.workload.airfare import QUERIES

        for info in QUERIES.values():
            planned = airfare_db.query_planned(info["ltl"])
            default = airfare_db.query(info["ltl"])
            assert planned.contract_ids == default.contract_ids

    @given(query_formula=formulas(max_depth=3))
    @settings(max_examples=40, deadline=None)
    def test_plans_never_change_answers(self, airfare_db, query_formula):
        planned = airfare_db.query_planned(query_formula)
        scan = airfare_db.query(
            query_formula, use_prefilter=False, use_projections=False
        )
        assert planned.contract_ids == scan.contract_ids

    def test_custom_planner_respected(self, airfare_db):
        eager = QueryPlanner(projection_literal_budget=0)
        result = airfare_db.query_planned("F refund", planner=eager)
        assert not result.stats.used_projections
