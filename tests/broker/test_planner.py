"""Tests for the per-query optimization planner."""

import pytest
from hypothesis import given, settings

from repro.automata.ltl2ba import translate
from repro.broker.database import ContractDatabase
from repro.broker.options import QueryOptions
from repro.broker.planner import (
    ATTR_FIRST,
    PREFILTER_FIRST,
    CostModel,
    QueryPlan,
    QueryPlanner,
)
from repro.broker.relational import AttributeFilter, eq, le
from repro.ltl.parser import parse

from ..strategies import formulas


class TestPlanChoices:
    def test_selective_simple_query_uses_both(self):
        plan = QueryPlanner().plan(translate(parse("F refund")))
        assert plan.use_prefilter
        assert plan.use_projections

    def test_unprunable_query_skips_prefilter(self):
        # a query satisfied by unconstrained behavior cannot prune
        plan = QueryPlanner().plan(translate(parse("true")))
        assert not plan.use_prefilter

    def test_literal_heavy_query_skips_projections(self):
        query = translate(parse(
            "F(a && F(b && F(c && F(d && F e))))"
        ))
        plan = QueryPlanner(projection_literal_budget=3).plan(query)
        assert not plan.use_projections
        assert plan.use_prefilter

    def test_reason_is_informative(self):
        plan = QueryPlanner().plan(translate(parse("F refund")))
        assert "literal" in plan.reason or "condition" in plan.reason
        assert "prefilter" in str(plan)

    def test_plan_is_value_object(self):
        assert QueryPlan(True, False, "x") == QueryPlan(True, False, "x")


class TestPlannedQueries:
    def test_planned_results_match_default(self, airfare_db):
        from repro.workload.airfare import QUERIES

        for info in QUERIES.values():
            planned = airfare_db.query_planned(info["ltl"])
            default = airfare_db.query(info["ltl"])
            assert planned.contract_ids == default.contract_ids

    @given(query_formula=formulas(max_depth=3))
    @settings(max_examples=40, deadline=None)
    def test_plans_never_change_answers(self, airfare_db, query_formula):
        planned = airfare_db.query_planned(query_formula)
        scan = airfare_db.query(
            query_formula, use_prefilter=False, use_projections=False
        )
        assert planned.contract_ids == scan.contract_ids

    def test_custom_planner_respected(self, airfare_db):
        eager = QueryPlanner(projection_literal_budget=0)
        result = airfare_db.query_planned("F refund", planner=eager)
        assert not result.stats.used_projections


@pytest.fixture()
def seeded_db() -> ContractDatabase:
    """A database with enough contracts that the statistics are
    meaningful: prices 100..1200, routes cycling through three values."""
    db = ContractDatabase()
    routes = ("SAN-NYC", "LAX-SEA", "ORD-BOS")
    for i in range(12):
        db.register(
            f"T{i}",
            ["G(dateChange -> !F refund)"] if i % 2
            else ["G(missedFlight -> F(refund || dateChange))"],
            attributes={"price": 100 * (i + 1), "route": routes[i % 3]},
        )
    return db


QUERIES = (
    "F refund",
    "F(missedFlight && F(refund || dateChange))",
    "G !refund",
    "true",
)

FILTERS = (
    AttributeFilter(),
    AttributeFilter.where(le("price", 500)),
    AttributeFilter.where(le("price", 500), eq("route", "SAN-NYC")),
)


class TestCostBasedPlans:
    def test_plan_is_cost_based_on_a_populated_db(self, seeded_db):
        plan = seeded_db.plan_query("F refund")
        assert plan.source == "cost"
        assert plan.stages
        assert plan.cost > 0
        assert plan.stages[-1].name == "permission-checks"
        assert "cost" in plan.explain()

    def test_plan_falls_back_without_database(self):
        plan = QueryPlanner().plan(translate(parse("F refund")))
        assert plan.source == "heuristic"
        assert not plan.stages

    def test_empty_database_uses_heuristic(self):
        db = ContractDatabase()
        assert db.plan_query("F refund").source == "heuristic"

    def test_unprunable_query_scans(self, seeded_db):
        plan = seeded_db.plan_query("true")
        assert not plan.use_prefilter
        assert plan.order == ATTR_FIRST

    def test_stage_cardinalities_chain(self, seeded_db):
        plan = seeded_db.plan_query(
            "F refund",
            QueryOptions(
                attribute_filter=AttributeFilter.where(le("price", 500))
            ),
        )
        for prev, nxt in zip(plan.stages, plan.stages[1:]):
            assert nxt.input_size == prev.output_size

    def test_cost_model_steers_choice(self, seeded_db):
        # an absurdly expensive probe forces the index off; a free one
        # makes it attractive for any prunable query
        never = QueryPlanner(
            cost_model=CostModel(prefilter_probe=1e12)
        )
        always = QueryPlanner(cost_model=CostModel(prefilter_probe=0.0))
        options = QueryOptions(planner=never)
        assert not seeded_db.plan_query("F refund", options).use_prefilter
        # only half the contracts mention missedFlight, so with a free
        # probe the index prunes profitably
        options = QueryOptions(planner=always)
        assert seeded_db.plan_query(
            "F missedFlight", options
        ).use_prefilter


class TestForcedVersusChosen:
    """Invariant 14: whatever the planner picks, the answer equals every
    forced static configuration's answer."""

    def test_planned_matches_every_forced_pipeline(self, seeded_db):
        for query in QUERIES:
            for attribute_filter in FILTERS:
                planned = seeded_db.query(
                    query,
                    QueryOptions(
                        attribute_filter=attribute_filter,
                        use_planner=True,
                    ),
                )
                assert planned.stats.planned
                for use_prefilter in (False, True):
                    for use_projections in (False, True):
                        for order in (None, ATTR_FIRST, PREFILTER_FIRST):
                            forced = seeded_db.query(
                                query,
                                QueryOptions(
                                    attribute_filter=attribute_filter,
                                    use_prefilter=use_prefilter,
                                    use_projections=use_projections,
                                    stage_order=order,
                                ),
                            )
                            assert (
                                forced.contract_ids
                                == planned.contract_ids
                            ), (query, str(attribute_filter),
                                use_prefilter, use_projections, order)

    def test_prefilter_first_stats_are_consistent(self, seeded_db):
        options = QueryOptions(
            attribute_filter=AttributeFilter.where(le("price", 500)),
            stage_order=PREFILTER_FIRST,
        )
        outcome = seeded_db.query("F refund", options)
        s = outcome.stats
        assert s.stage_order == PREFILTER_FIRST
        # prefilter-first counts attribute matches among the pruned
        # survivors, so they coincide with the candidate set
        assert s.relational_matches == s.candidates

    def test_plan_query_agrees_with_execution(self, seeded_db):
        options = QueryOptions(
            attribute_filter=AttributeFilter.where(le("price", 500)),
            use_planner=True,
        )
        plan = seeded_db.plan_query("F refund", options)
        outcome = seeded_db.query("F refund", options)
        assert outcome.stats.plan_summary == str(plan)


class TestPlanCache:
    def test_identical_queries_hit_the_plan_cache(self, seeded_db):
        options = QueryOptions(
            attribute_filter=AttributeFilter.where(le("price", 500)),
            use_planner=True,
        )
        seeded_db.query("F refund", options)
        misses = seeded_db.plan_cache.stats().misses
        seeded_db.query("F refund", options)
        stats = seeded_db.plan_cache.stats()
        assert stats.hits >= 1
        assert stats.misses == misses

    def test_distinct_filters_do_not_collide(self, seeded_db):
        f1 = QueryOptions(
            attribute_filter=AttributeFilter.where(le("price", 500)),
            use_planner=True,
        )
        f2 = QueryOptions(
            attribute_filter=AttributeFilter.where(le("price", 900)),
            use_planner=True,
        )
        a = seeded_db.query("F refund", f1)
        b = seeded_db.query("F refund", f2)
        # both planned fresh: same query, different filter identity
        assert len(seeded_db.plan_cache) == 2
        assert a.contract_names != b.contract_names

    def test_registration_invalidates_cached_plans(self, seeded_db):
        options = QueryOptions(use_planner=True)
        seeded_db.query("F refund", options)
        misses = seeded_db.plan_cache.stats().misses
        seeded_db.register("fresh", ["F refund"],
                           attributes={"price": 50})
        seeded_db.query("F refund", options)
        # the statistics version changed, so the old entry cannot be hit
        assert seeded_db.plan_cache.stats().misses == misses + 1

    def test_opaque_filters_are_never_cached(self, seeded_db):
        from repro.broker.relational import AttributeCondition

        with pytest.warns(DeprecationWarning):
            opaque = AttributeCondition(
                "price", "<= 500", lambda price: price <= 500
            )
        options = QueryOptions(
            attribute_filter=AttributeFilter.where(opaque),
            use_planner=True,
        )
        before = len(seeded_db.plan_cache)
        outcome = seeded_db.query("F refund", options)
        assert len(seeded_db.plan_cache) == before
        assert outcome.stats.planned
        # the opaque filter still evaluates correctly
        expected = seeded_db.query(
            "F refund",
            QueryOptions(
                attribute_filter=AttributeFilter.where(le("price", 500))
            ),
        )
        assert outcome.contract_ids == expected.contract_ids
