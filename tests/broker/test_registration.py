"""Quarantined batch registration: poison pills, retries, fallbacks."""

from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.broker.contract import ContractSpec
from repro.broker.database import BrokerConfig, ContractDatabase
from repro.broker.parallel import register_many
from repro.broker.registration import RegistrationReport
from repro.ltl.parser import parse


def _spec(name, text="F x"):
    return ContractSpec(name=name, clauses=(parse(text),), attributes={})


class TestReportShape:
    def test_sequence_compatibility(self):
        db = ContractDatabase()
        report = register_many(db, [_spec("a"), _spec("b")])
        assert isinstance(report, RegistrationReport)
        assert len(report) == 2
        assert report[0].name == "a"
        assert [c.name for c in report] == ["a", "b"]
        assert report[1] in report
        assert report.ok
        assert "registered 2" in report.summary()

    def test_quarantine_summary(self):
        db = ContractDatabase()
        report = register_many(db, [_spec("a"), {"name": "bad", "clauses": ["(("]}])
        assert not report.ok
        assert "quarantined 1" in report.summary()


class TestPoisonPills:
    def test_parse_failure_quarantined(self):
        db = ContractDatabase()
        report = register_many(db, [
            {"name": "bad", "clauses": ["G((("]},
            _spec("good"),
        ])
        assert report.registered == 1
        [bad] = report.quarantined
        assert bad.stage == "parse"
        assert bad.name == "bad"
        assert bad.spec is None
        assert "LTLSyntaxError" in bad.describe()
        assert len(db) == 1

    def test_document_without_name_quarantined(self):
        db = ContractDatabase()
        report = register_many(db, [{"clauses": ["F x"]}, _spec("good")])
        assert report.registered == 1
        assert report.quarantined[0].stage == "parse"
        assert report.quarantined[0].name == "<unnamed>"

    def test_budget_blowout_quarantined_serial(self):
        db = ContractDatabase(BrokerConfig(state_budget=4))
        pill = ContractSpec(
            name="pill",
            clauses=tuple(parse(f"F e{i}") for i in range(6)),
            attributes={},
        )
        report = register_many(db, [_spec("a"), pill, _spec("b", "G !y")])
        assert report.registered == 2
        [bad] = report.quarantined
        assert bad.stage == "translate"
        assert bad.spec is pill
        assert len(db) == 2

    def test_budget_blowout_quarantined_parallel(self):
        db = ContractDatabase(BrokerConfig(state_budget=4))
        pill = ContractSpec(
            name="pill",
            clauses=tuple(parse(f"F e{i}") for i in range(6)),
            attributes={},
        )
        try:
            report = register_many(
                db, [_spec("a"), pill, _spec("b", "G !y")], workers=2
            )
        except Exception as exc:  # pragma: no cover - restricted sandboxes
            pytest.skip(f"no process pool available: {exc}")
        assert report.registered == 2
        assert report.quarantined[0].stage == "translate"
        # the healthy survivors answer through a consistent index
        assert set(db.query("F x").contract_names) == {"a"}

    def test_quarantine_metrics_and_db_attachment(self):
        db = ContractDatabase()
        register_many(db, [{"name": "bad", "clauses": ["(("]}])
        assert db.metrics.counter_value("register.quarantined") == 1
        assert len(db.quarantine) == 1
        assert db.quarantine.entries[0].name == "bad"


class TestQuarantineRetry:
    def test_retry_after_fixing_the_cause(self):
        db = ContractDatabase(BrokerConfig(state_budget=4))
        pill = ContractSpec(
            name="pill",
            clauses=tuple(parse(f"F e{i}") for i in range(6)),
            attributes={},
        )
        register_many(db, [pill])
        assert len(db.quarantine) == 1
        assert db.quarantine.entries[0].attempts == 1

        db.config = BrokerConfig(state_budget=512)
        report = db.quarantine.retry(db)
        assert report.registered == 1
        assert len(db.quarantine) == 0
        assert db.metrics.counter_value("register.quarantine_recovered") == 1
        assert "pill" in [c.name for c in db.contracts()]

    def test_retry_without_fix_keeps_entry_and_bumps_attempts(self):
        db = ContractDatabase(BrokerConfig(state_budget=4))
        pill = ContractSpec(
            name="pill",
            clauses=tuple(parse(f"F e{i}") for i in range(6)),
            attributes={},
        )
        register_many(db, [pill])
        report = db.quarantine.retry(db)
        assert report.registered == 0
        assert len(db.quarantine) == 1
        assert db.quarantine.entries[0].attempts == 2

    def test_parse_stage_entries_are_not_retriable(self):
        db = ContractDatabase()
        register_many(db, [{"name": "bad", "clauses": ["(("]}])
        report = db.quarantine.retry(db)
        assert report.registered == 0
        assert len(db.quarantine) == 1  # still parked; the raw doc must be fixed

    def test_clear(self):
        db = ContractDatabase()
        register_many(db, [{"name": "bad", "clauses": ["(("]}])
        db.quarantine.clear()
        assert len(db.quarantine) == 0


class _ScriptedPool:
    """A fake process pool: runs submissions inline, but fails the
    scripted (attempt, name) pairs with BrokenProcessPool.  Counts
    translations per payload to prove nothing runs twice."""

    attempt = 0
    translation_counts: dict = {}
    fail_plan: set = set()

    def __init__(self, max_workers=None):
        pass

    def __enter__(self):
        type(self).attempt += 1
        return self

    def __exit__(self, *exc_info):
        return False

    def submit(self, fn, payload):
        future = Future()
        name = payload[0][0]  # first clause text identifies the spec
        if (type(self).attempt, name) in type(self).fail_plan:
            future.set_exception(BrokenProcessPool("worker died"))
            return future
        counts = type(self).translation_counts
        counts[name] = counts.get(name, 0) + 1
        future.set_result(fn(payload))
        return future


class TestTransientPoolFailures:
    def _scripted(self, monkeypatch, fail_plan):
        import repro.broker.parallel as parallel_module

        class Pool(_ScriptedPool):
            pass

        Pool.attempt = 0
        Pool.translation_counts = {}
        Pool.fail_plan = fail_plan
        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", Pool)
        return Pool

    def test_retry_resubmits_only_pending_specs(self, monkeypatch):
        # attempt 1: spec "F b" fails transiently; attempt 2: all good
        pool = self._scripted(monkeypatch, {(1, "F b")})
        db = ContractDatabase()
        sleeps = []
        report = register_many(
            db,
            [_spec("a", "F a"), _spec("b", "F b"), _spec("c", "F c")],
            workers=2,
            _sleep=sleeps.append,
        )
        assert report.registered == 3
        assert report.pool_retries == 1
        assert not report.pool_fallback
        assert sleeps == [0.05]
        # a and c translated exactly once — never re-submitted
        assert pool.translation_counts == {"F a": 1, "F b": 1, "F c": 1}
        assert db.metrics.counter_value("register.pool_retries") == 1

    def test_backoff_doubles_and_caps(self, monkeypatch):
        self._scripted(
            monkeypatch, {(n, "F a") for n in range(1, 10)}
        )
        db = ContractDatabase()
        sleeps = []
        report = register_many(
            db, [_spec("a", "F a"), _spec("b", "F b")], workers=2,
            max_retries=3, backoff_seconds=0.4, _sleep=sleeps.append,
        )
        assert report.registered == 2  # serial fallback translated "a"
        assert report.pool_fallback
        assert sleeps == [0.4, 0.8, 1.0]  # doubled, capped at 1 s
        assert db.metrics.counter_value("register.pool_fallback") == 1

    def test_fallback_registers_ids_in_input_order(self, monkeypatch):
        self._scripted(monkeypatch, {(n, "F b") for n in range(1, 10)})
        db = ContractDatabase()
        report = register_many(
            db,
            [_spec("a", "F a"), _spec("b", "F b"), _spec("c", "F c")],
            workers=2,
            backoff_seconds=0.0,
        )
        assert report.pool_fallback
        assert [c.name for c in report] == ["a", "b", "c"]
        assert [c.contract_id for c in report] == [0, 1, 2]

    def test_injected_pool_fault_via_seam(self):
        from repro.core import faults

        db = ContractDatabase()
        faults.fail_at(
            "register.pool", exc=BrokenProcessPool("injected"), times=1
        )
        report = register_many(
            db, [_spec("a"), _spec("b", "F y")], workers=2,
            _sleep=lambda s: None,
        )
        assert report.registered == 2
        assert report.pool_retries == 1
