"""Unit and property tests for NNF rewriting and simplification.

The key property — *every rewrite preserves LTL equivalence* — is tested
against the ground-truth evaluator on random ultimately-periodic runs.
"""

import pytest
from hypothesis import given, settings

from repro.ltl import ast as A
from repro.ltl.parser import parse
from repro.ltl.rewrite import (
    is_nnf_core,
    mk_and,
    mk_next,
    mk_or,
    mk_release,
    mk_until,
    negate_literal,
    nnf,
)
from repro.ltl.semantics import satisfies

from ..strategies import formulas, runs


class TestNegateLiteral:
    def test_constants(self):
        assert negate_literal(A.TRUE) == A.FALSE
        assert negate_literal(A.FALSE) == A.TRUE

    def test_literals(self):
        p = A.Prop("p")
        assert negate_literal(p) == A.Not(p)
        assert negate_literal(A.Not(p)) == p

    def test_rejects_compounds(self):
        with pytest.raises(ValueError):
            negate_literal(A.And(A.Prop("p"), A.Prop("q")))


class TestSmartConstructors:
    def test_and_identity(self):
        p = A.Prop("p")
        assert mk_and(p, A.TRUE) == p
        assert mk_and(A.TRUE, p) == p

    def test_and_absorbing(self):
        assert mk_and(A.Prop("p"), A.FALSE) == A.FALSE

    def test_and_dedup(self):
        p = A.Prop("p")
        assert mk_and(p, p) == p

    def test_and_contradiction(self):
        p = A.Prop("p")
        assert mk_and(p, A.Not(p)) == A.FALSE

    def test_and_flattens_nested(self):
        p, q, r = A.Prop("p"), A.Prop("q"), A.Prop("r")
        assert mk_and(A.And(p, q), A.And(q, r)) == A.conj([p, q, r])

    def test_or_identity_and_absorbing(self):
        p = A.Prop("p")
        assert mk_or(p, A.FALSE) == p
        assert mk_or(p, A.TRUE) == A.TRUE

    def test_or_tautology(self):
        p = A.Prop("p")
        assert mk_or(p, A.Not(p)) == A.TRUE

    def test_next_constants(self):
        assert mk_next(A.TRUE) == A.TRUE
        assert mk_next(A.FALSE) == A.FALSE
        assert mk_next(A.Prop("p")) == A.Next(A.Prop("p"))

    def test_until_constants(self):
        p, q = A.Prop("p"), A.Prop("q")
        assert mk_until(p, A.TRUE) == A.TRUE
        assert mk_until(p, A.FALSE) == A.FALSE
        assert mk_until(A.FALSE, q) == q

    def test_until_idempotence(self):
        p, q = A.Prop("p"), A.Prop("q")
        assert mk_until(p, p) == p
        assert mk_until(p, A.Until(p, q)) == A.Until(p, q)

    def test_release_constants(self):
        p, q = A.Prop("p"), A.Prop("q")
        assert mk_release(p, A.TRUE) == A.TRUE
        assert mk_release(p, A.FALSE) == A.FALSE
        assert mk_release(A.TRUE, q) == q

    def test_release_idempotence(self):
        p, q = A.Prop("p"), A.Prop("q")
        assert mk_release(p, p) == p
        assert mk_release(p, A.Release(p, q)) == A.Release(p, q)


class TestNNFShapes:
    def test_literal_untouched(self):
        assert nnf(parse("p")) == A.Prop("p")
        assert nnf(parse("!p")) == A.Not(A.Prop("p"))

    def test_double_negation_cancels(self):
        assert nnf(parse("!!p")) == A.Prop("p")

    def test_de_morgan(self):
        assert nnf(parse("!(p && q)")) == parse("!p || !q")
        assert nnf(parse("!(p || q)")) == parse("!p && !q")

    def test_implies_eliminated(self):
        assert nnf(parse("p -> q")) == parse("!p || q")

    def test_negated_next(self):
        assert nnf(parse("!X p")) == A.Next(A.Not(A.Prop("p")))

    def test_negated_until_is_release(self):
        assert nnf(parse("!(p U q)")) == A.Release(
            A.Not(A.Prop("p")), A.Not(A.Prop("q"))
        )

    def test_negated_release_is_until(self):
        assert nnf(parse("!(p R q)")) == A.Until(
            A.Not(A.Prop("p")), A.Not(A.Prop("q"))
        )

    def test_finally_becomes_until(self):
        assert nnf(parse("F p")) == A.Until(A.TRUE, A.Prop("p"))

    def test_globally_becomes_release(self):
        assert nnf(parse("G p")) == A.Release(A.FALSE, A.Prop("p"))

    def test_result_is_core(self):
        for text in ("p W q", "p B q", "p <-> q", "!G(p -> F q)"):
            assert is_nnf_core(nnf(parse(text))), text

    def test_is_nnf_core_rejects_sugar(self):
        assert not is_nnf_core(parse("F p"))
        assert not is_nnf_core(parse("!(p U q)"))
        assert is_nnf_core(parse("p U q"))


class TestEquivalence:
    @given(formulas(), runs())
    @settings(max_examples=400, deadline=None)
    def test_nnf_preserves_satisfaction(self, formula, run):
        # satisfies() itself normalizes, so compare a *double* application
        # against a single one: nnf must be idempotent in effect.
        assert satisfies(run, formula) == satisfies(run, nnf(formula))

    @given(formulas())
    @settings(max_examples=200, deadline=None)
    def test_nnf_idempotent(self, formula):
        once = nnf(formula)
        assert nnf(once) == once
