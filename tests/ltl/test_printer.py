"""Unit tests for the LTL pretty-printer."""

import pytest

from repro.ltl import ast as A
from repro.ltl.parser import parse
from repro.ltl.printer import format_formula


class TestAtoms:
    def test_constants(self):
        assert format_formula(A.TRUE) == "true"
        assert format_formula(A.FALSE) == "false"

    def test_proposition(self):
        assert format_formula(A.Prop("purchase")) == "purchase"


class TestOperators:
    def test_not_no_space(self):
        assert format_formula(A.Not(A.Prop("p"))) == "!p"

    def test_unary_temporal_spaced(self):
        assert format_formula(A.Next(A.Prop("p"))) == "X p"
        assert format_formula(A.Finally(A.Prop("p"))) == "F p"
        assert format_formula(A.Globally(A.Prop("p"))) == "G p"

    def test_binary(self):
        p, q = A.Prop("p"), A.Prop("q")
        assert format_formula(A.And(p, q)) == "p && q"
        assert format_formula(A.Or(p, q)) == "p || q"
        assert format_formula(A.Implies(p, q)) == "p -> q"
        assert format_formula(A.Iff(p, q)) == "p <-> q"
        assert format_formula(A.Until(p, q)) == "p U q"
        assert format_formula(A.WeakUntil(p, q)) == "p W q"
        assert format_formula(A.Before(p, q)) == "p B q"
        assert format_formula(A.Release(p, q)) == "p R q"


class TestParenthesization:
    def test_tighter_child_needs_no_parens(self):
        f = A.Or(A.And(A.Prop("a"), A.Prop("b")), A.Prop("c"))
        assert format_formula(f) == "a && b || c"

    def test_looser_child_gets_parens(self):
        f = A.And(A.Or(A.Prop("a"), A.Prop("b")), A.Prop("c"))
        assert format_formula(f) == "(a || b) && c"

    def test_nested_same_level_binary_gets_parens(self):
        f = A.Until(A.Until(A.Prop("a"), A.Prop("b")), A.Prop("c"))
        assert format_formula(f) == "(a U b) U c"

    def test_unary_over_binary(self):
        f = A.Not(A.And(A.Prop("a"), A.Prop("b")))
        assert format_formula(f) == "!(a && b)"

    def test_paper_style_clause(self):
        f = parse("G(missedFlight -> !F dateChange)")
        assert format_formula(f) == "G (missedFlight -> !F dateChange)"

    def test_str_dunder_delegates(self):
        f = parse("p U q")
        assert str(f) == "p U q"

    def test_repr_contains_text(self):
        assert "p U q" in repr(parse("p U q"))

    def test_unknown_node_rejected(self):
        class Weird(A.Formula):
            def children(self):
                return ()

            def _key(self):
                return ()

        with pytest.raises(TypeError):
            format_formula(Weird())
