"""Fuzz tests: the parser must never crash with anything but
:class:`LTLSyntaxError` on arbitrary input."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LTLSyntaxError
from repro.ltl.ast import Formula
from repro.ltl.parser import parse

_TOKENS = st.sampled_from([
    "p", "q", "X", "F", "G", "U", "W", "B", "R", "true", "false",
    "&&", "||", "!", "->", "<->", "(", ")", " ",
])


class TestParserRobustness:
    @given(st.text(max_size=40))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_text(self, text):
        try:
            result = parse(text)
        except LTLSyntaxError:
            return
        assert isinstance(result, Formula)

    @given(st.lists(_TOKENS, max_size=15))
    @settings(max_examples=300, deadline=None)
    def test_token_soup(self, tokens):
        text = " ".join(tokens)
        try:
            result = parse(text)
        except LTLSyntaxError:
            return
        assert isinstance(result, Formula)

    @given(st.lists(_TOKENS, min_size=1, max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_successful_parse_round_trips(self, tokens):
        """Anything the parser accepts must print back to something the
        parser accepts with the same structure."""
        from repro.ltl.printer import format_formula

        text = " ".join(tokens)
        try:
            formula = parse(text)
        except LTLSyntaxError:
            return
        assert parse(format_formula(formula)) == formula
