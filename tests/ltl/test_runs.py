"""Unit tests for ultimately-periodic runs."""

import pytest

from repro.ltl.runs import EMPTY_SNAPSHOT, Run, snapshot


class TestConstruction:
    def test_loop_must_be_nonempty(self):
        with pytest.raises(ValueError):
            Run((), ())

    def test_from_events(self):
        run = Run.from_events([["a"], ["a", "b"]], [[]])
        assert run.prefix == (frozenset({"a"}), frozenset({"a", "b"}))
        assert run.loop == (frozenset(),)

    def test_default_loop_is_empty_snapshot(self):
        run = Run.from_events([["a"]])
        assert run.loop == (EMPTY_SNAPSHOT,)

    def test_finite_encoding(self):
        run = Run.finite([["purchase"], ["use"]])
        assert run.instant(5) == EMPTY_SNAPSHOT

    def test_snapshot_helper(self):
        assert snapshot("a", "b") == frozenset({"a", "b"})


class TestPositions:
    @pytest.fixture
    def run(self):
        return Run.from_events([["a"], ["b"]], [["c"], ["d"]])

    def test_counts(self, run):
        assert run.period_start == 2
        assert run.num_positions == 4

    def test_successor_within_prefix(self, run):
        assert run.successor(0) == 1
        assert run.successor(1) == 2

    def test_successor_wraps(self, run):
        assert run.successor(3) == 2

    def test_successor_bounds(self, run):
        with pytest.raises(IndexError):
            run.successor(4)
        with pytest.raises(IndexError):
            run.successor(-1)

    def test_at(self, run):
        assert run.at(0) == frozenset({"a"})
        assert run.at(3) == frozenset({"d"})

    def test_instant_unrolls_loop(self, run):
        assert run.instant(2) == frozenset({"c"})
        assert run.instant(3) == frozenset({"d"})
        assert run.instant(4) == frozenset({"c"})
        assert run.instant(100) == frozenset({"c"})

    def test_instant_rejects_negative(self, run):
        with pytest.raises(IndexError):
            run.instant(-1)

    def test_positions_iterator(self, run):
        assert list(run.positions()) == [0, 1, 2, 3]

    def test_unroll(self, run):
        assert run.unroll(5) == [
            frozenset({"a"}),
            frozenset({"b"}),
            frozenset({"c"}),
            frozenset({"d"}),
            frozenset({"c"}),
        ]


class TestTransformations:
    def test_project(self):
        run = Run.from_events([["a", "b"]], [["b", "c"]])
        projected = run.project({"b"})
        assert projected.prefix == (frozenset({"b"}),)
        assert projected.loop == (frozenset({"b"}),)

    def test_project_matches_definition_3(self):
        run = Run.from_events([["a"]], [["c"]])
        assert run.project({"a", "c"}) == run

    def test_variables(self):
        run = Run.from_events([["a"]], [["b", "c"]])
        assert run.variables() == frozenset({"a", "b", "c"})

    def test_str_rendering(self):
        run = Run.from_events([["a"]], [["b"]])
        assert str(run) == "{a} ({b})^w"
