"""Unit tests for the LTL AST module."""

import pytest

from repro.ltl import ast as A
from repro.ltl.ast import (
    FALSE,
    TRUE,
    And,
    Before,
    Finally,
    Globally,
    Next,
    Not,
    Or,
    Prop,
    Release,
    Until,
    WeakUntil,
    conj,
    disj,
    is_literal,
    is_temporal,
)


class TestConstruction:
    def test_prop_name(self):
        assert Prop("purchase").name == "purchase"

    def test_prop_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Prop("")

    def test_prop_rejects_leading_digit(self):
        with pytest.raises(ValueError):
            Prop("1abc")

    def test_prop_allows_underscore_prefix(self):
        assert Prop("_internal").name == "_internal"

    def test_unary_requires_formula(self):
        with pytest.raises(TypeError):
            Not("p")  # type: ignore[arg-type]

    def test_binary_requires_formulas(self):
        with pytest.raises(TypeError):
            And(Prop("p"), "q")  # type: ignore[arg-type]

    def test_immutability(self):
        p = Prop("p")
        with pytest.raises(AttributeError):
            p.name = "q"  # type: ignore[misc]

    def test_operator_overloads(self):
        p, q = Prop("p"), Prop("q")
        assert (p & q) == And(p, q)
        assert (p | q) == Or(p, q)
        assert (~p) == Not(p)
        assert p.implies(q) == A.Implies(p, q)
        assert p.iff(q) == A.Iff(p, q)
        assert p.until(q) == Until(p, q)
        assert p.weak_until(q) == WeakUntil(p, q)
        assert p.before(q) == Before(p, q)
        assert p.release(q) == Release(p, q)


class TestEqualityAndHashing:
    def test_structural_equality(self):
        assert And(Prop("p"), Prop("q")) == And(Prop("p"), Prop("q"))

    def test_inequality_across_types(self):
        assert Until(Prop("p"), Prop("q")) != Release(Prop("p"), Prop("q"))

    def test_inequality_on_operands(self):
        assert Not(Prop("p")) != Not(Prop("q"))

    def test_hash_consistency(self):
        f1 = Globally(A.Implies(Prop("p"), Finally(Prop("q"))))
        f2 = Globally(A.Implies(Prop("p"), Finally(Prop("q"))))
        assert hash(f1) == hash(f2)
        assert len({f1, f2}) == 1

    def test_constants_are_singletons_by_value(self):
        assert TRUE == A.TrueConst()
        assert FALSE == A.FalseConst()
        assert TRUE != FALSE


class TestStructure:
    def test_children_and_rebuild(self):
        f = Until(Prop("p"), Prop("q"))
        assert f.children() == (Prop("p"), Prop("q"))
        rebuilt = f.with_children((Prop("x"), Prop("y")))
        assert rebuilt == Until(Prop("x"), Prop("y"))

    def test_walk_visits_every_node(self):
        f = And(Not(Prop("p")), Next(Prop("q")))
        kinds = [type(n).__name__ for n in f.walk()]
        assert kinds == ["And", "Not", "Prop", "Next", "Prop"]

    def test_variables(self):
        f = Globally(A.Implies(Prop("p"), Until(Prop("q"), Prop("p"))))
        assert f.variables() == frozenset({"p", "q"})

    def test_variables_of_constants(self):
        assert TRUE.variables() == frozenset()

    def test_size(self):
        assert Prop("p").size() == 1
        assert And(Prop("p"), Not(Prop("q"))).size() == 4

    def test_temporal_depth(self):
        assert Prop("p").temporal_depth() == 0
        assert Next(Prop("p")).temporal_depth() == 1
        assert Globally(Finally(Prop("p"))).temporal_depth() == 2
        assert And(Next(Prop("p")), Prop("q")).temporal_depth() == 1


class TestHelpers:
    def test_conj_empty_is_true(self):
        assert conj([]) == TRUE

    def test_conj_folds_true(self):
        assert conj([TRUE, Prop("p"), TRUE]) == Prop("p")

    def test_conj_absorbs_false(self):
        assert conj([Prop("p"), FALSE]) == FALSE

    def test_conj_multiple(self):
        p, q, r = Prop("p"), Prop("q"), Prop("r")
        assert conj([p, q, r]) == And(p, And(q, r))

    def test_disj_empty_is_false(self):
        assert disj([]) == FALSE

    def test_disj_folds_false(self):
        assert disj([FALSE, Prop("p")]) == Prop("p")

    def test_disj_absorbs_true(self):
        assert disj([Prop("p"), TRUE]) == TRUE

    def test_is_literal(self):
        assert is_literal(Prop("p"))
        assert is_literal(Not(Prop("p")))
        assert not is_literal(Not(Not(Prop("p"))))
        assert not is_literal(TRUE)
        assert not is_literal(And(Prop("p"), Prop("q")))

    def test_is_temporal(self):
        assert is_temporal(Next(Prop("p")))
        assert is_temporal(Until(Prop("p"), Prop("q")))
        assert not is_temporal(And(Prop("p"), Prop("q")))
        assert not is_temporal(Prop("p"))
