"""Metamorphic properties of the LTL evaluator.

These tests exploit invariances that must hold for *any* correct
evaluator, independent of specific formulas: satisfaction is invariant
under loop unrolling, loop rotation is equivalent to dropping prefix
steps, and adding events outside the formula's vocabulary never changes
the verdict.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ltl.runs import Run
from repro.ltl.semantics import evaluate_positions, satisfies

from ..strategies import formulas, runs


def unroll_once(run: Run) -> Run:
    """The same infinite run, with one loop iteration moved into the
    prefix."""
    return Run(run.prefix + run.loop, run.loop)


def double_loop(run: Run) -> Run:
    """The same infinite run, with the loop doubled."""
    return Run(run.prefix, run.loop + run.loop)


class TestRepresentationInvariance:
    @given(formulas(max_depth=4), runs())
    @settings(max_examples=300, deadline=None)
    def test_unrolling_invariant(self, formula, run):
        assert satisfies(run, formula) == satisfies(unroll_once(run), formula)

    @given(formulas(max_depth=4), runs())
    @settings(max_examples=300, deadline=None)
    def test_loop_doubling_invariant(self, formula, run):
        assert satisfies(run, formula) == satisfies(double_loop(run), formula)

    @given(formulas(max_depth=3), runs(), st.integers(min_value=1,
                                                      max_value=4))
    @settings(max_examples=200, deadline=None)
    def test_suffix_table_consistency(self, formula, run, steps):
        """The evaluator's per-position table must agree with evaluating
        the suffix run directly."""
        steps = min(steps, run.num_positions - 1) if run.num_positions > 1 else 0
        table = evaluate_positions(run, formula)
        suffix = run
        for _ in range(steps):
            # drop one instant: move it out of the prefix (or rotate loop)
            if suffix.prefix:
                suffix = Run(suffix.prefix[1:], suffix.loop)
            else:
                suffix = Run((), suffix.loop[1:] + suffix.loop[:1])
        assert satisfies(suffix, formula) == table[_position_after(run, steps)]


def _position_after(run: Run, steps: int) -> int:
    position = 0
    for _ in range(steps):
        position = run.successor(position)
    return position


class TestVocabularyInvariance:
    @given(formulas(max_depth=4), runs())
    @settings(max_examples=200, deadline=None)
    def test_alien_events_irrelevant(self, formula, run):
        """Adding an event the formula never mentions to every snapshot
        does not change satisfaction."""
        noisy = Run(
            tuple(s | {"alienEvent"} for s in run.prefix),
            tuple(s | {"alienEvent"} for s in run.loop),
        )
        assert satisfies(run, formula) == satisfies(noisy, formula)

    @given(formulas(max_depth=4), runs())
    @settings(max_examples=200, deadline=None)
    def test_projection_onto_vocabulary_sufficient(self, formula, run):
        """Definition 3 in action: the V-projection of a run determines
        satisfaction of any formula over V."""
        projected = run.project(formula.variables())
        assert satisfies(run, formula) == satisfies(projected, formula)
