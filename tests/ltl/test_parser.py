"""Unit tests for the LTL parser (and its round trip with the printer)."""

import pytest
from hypothesis import given, settings

from repro.errors import LTLSyntaxError
from repro.ltl import ast as A
from repro.ltl.parser import parse, parse_clauses, tokenize
from repro.ltl.printer import format_formula

from ..strategies import formulas


class TestAtoms:
    def test_proposition(self):
        assert parse("purchase") == A.Prop("purchase")

    def test_true_false(self):
        assert parse("true") == A.TRUE
        assert parse("false") == A.FALSE

    def test_parenthesized(self):
        assert parse("((p))") == A.Prop("p")


class TestOperators:
    def test_not(self):
        assert parse("!p") == A.Not(A.Prop("p"))
        assert parse("~p") == A.Not(A.Prop("p"))

    def test_double_negation_kept(self):
        assert parse("!!p") == A.Not(A.Not(A.Prop("p")))

    def test_and_both_spellings(self):
        expected = A.And(A.Prop("p"), A.Prop("q"))
        assert parse("p && q") == expected
        assert parse("p & q") == expected

    def test_or_both_spellings(self):
        expected = A.Or(A.Prop("p"), A.Prop("q"))
        assert parse("p || q") == expected
        assert parse("p | q") == expected

    def test_implies(self):
        assert parse("p -> q") == A.Implies(A.Prop("p"), A.Prop("q"))

    def test_iff(self):
        assert parse("p <-> q") == A.Iff(A.Prop("p"), A.Prop("q"))

    def test_unary_temporal(self):
        assert parse("X p") == A.Next(A.Prop("p"))
        assert parse("F p") == A.Finally(A.Prop("p"))
        assert parse("G p") == A.Globally(A.Prop("p"))

    def test_binary_temporal(self):
        assert parse("p U q") == A.Until(A.Prop("p"), A.Prop("q"))
        assert parse("p W q") == A.WeakUntil(A.Prop("p"), A.Prop("q"))
        assert parse("p B q") == A.Before(A.Prop("p"), A.Prop("q"))
        assert parse("p R q") == A.Release(A.Prop("p"), A.Prop("q"))


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        assert parse("a || b && c") == A.Or(
            A.Prop("a"), A.And(A.Prop("b"), A.Prop("c"))
        )

    def test_temporal_binds_tighter_than_and(self):
        assert parse("a && b U c") == A.And(
            A.Prop("a"), A.Until(A.Prop("b"), A.Prop("c"))
        )

    def test_unary_binds_tighter_than_until(self):
        assert parse("!a U X b") == A.Until(
            A.Not(A.Prop("a")), A.Next(A.Prop("b"))
        )

    def test_implies_is_right_associative(self):
        assert parse("a -> b -> c") == A.Implies(
            A.Prop("a"), A.Implies(A.Prop("b"), A.Prop("c"))
        )

    def test_until_is_left_associative(self):
        assert parse("a U b U c") == A.Until(
            A.Until(A.Prop("a"), A.Prop("b")), A.Prop("c")
        )

    def test_implies_looser_than_or(self):
        assert parse("a || b -> c") == A.Implies(
            A.Or(A.Prop("a"), A.Prop("b")), A.Prop("c")
        )

    def test_paper_clause(self):
        # Ticket A's clause from §2.2.
        f = parse("G(dateChange -> !F refund)")
        assert f == A.Globally(
            A.Implies(
                A.Prop("dateChange"), A.Not(A.Finally(A.Prop("refund")))
            )
        )


class TestErrors:
    def test_empty_input(self):
        with pytest.raises(LTLSyntaxError):
            parse("")

    def test_unexpected_character(self):
        with pytest.raises(LTLSyntaxError) as info:
            parse("p @ q")
        assert info.value.position == 2

    def test_unbalanced_paren(self):
        with pytest.raises(LTLSyntaxError):
            parse("(p && q")

    def test_trailing_garbage(self):
        with pytest.raises(LTLSyntaxError):
            parse("p q")

    def test_reserved_word_as_proposition(self):
        with pytest.raises(LTLSyntaxError):
            parse("X && p")

    def test_missing_operand(self):
        with pytest.raises(LTLSyntaxError):
            parse("p &&")

    def test_error_str_mentions_offset(self):
        with pytest.raises(LTLSyntaxError) as info:
            parse("p @")
        assert "offset" in str(info.value)


class TestTokenize:
    def test_skips_whitespace(self):
        kinds = [t.kind for t in tokenize("  p   &&\tq ")]
        assert kinds == ["ident", "and", "ident"]

    def test_positions(self):
        tokens = tokenize("p && q")
        assert [t.position for t in tokens] == [0, 2, 5]


class TestParseClauses:
    def test_conjunction_of_clauses(self):
        f = parse_clauses(["G p", "F q"])
        assert f == A.And(parse("G p"), parse("F q"))

    def test_empty_clause_list_is_true(self):
        assert parse_clauses([]) == A.TRUE


class TestRoundTrip:
    @given(formulas())
    @settings(max_examples=300, deadline=None)
    def test_parse_of_print_is_identity(self, formula):
        assert parse(format_formula(formula)) == formula
