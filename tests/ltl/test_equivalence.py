"""Tests for the LTL decision procedures (satisfiability, implication,
equivalence, counterexamples)."""

from hypothesis import given, settings

from repro.ltl.equivalence import (
    DEFAULT_STATE_BUDGET,
    counterexample,
    equivalent,
    implies,
    is_satisfiable,
    is_valid,
)
from repro.ltl.parser import parse
from repro.ltl.semantics import satisfies

from ..strategies import formulas


class TestSatisfiability:
    def test_satisfiable(self):
        assert is_satisfiable(parse("F p"))
        assert is_satisfiable(parse("G !p"))

    def test_unsatisfiable(self):
        assert not is_satisfiable(parse("false"))
        assert not is_satisfiable(parse("G p && F !p"))
        assert not is_satisfiable(parse("p && !p"))

    def test_validity(self):
        assert is_valid(parse("true"))
        assert is_valid(parse("p || !p"))
        assert is_valid(parse("F p || G !p"))
        assert not is_valid(parse("F p"))

    def test_budget_constant_mirrors_translator(self):
        from repro.automata.ltl2ba import (
            DEFAULT_STATE_BUDGET as TRANSLATOR_BUDGET,
        )

        assert DEFAULT_STATE_BUDGET == TRANSLATOR_BUDGET


class TestOperatorIdentities:
    """The textbook identities §6.1 lists, checked end to end."""

    def test_weak_until(self):
        assert equivalent(parse("p W q"), parse("G p || (p U q)"))
        assert equivalent(parse("p W q"), parse("q R (q || p)"))

    def test_before(self):
        assert equivalent(parse("p B q"), parse("!(!p U q)"))

    def test_finally_globally(self):
        assert equivalent(parse("F p"), parse("true U p"))
        assert equivalent(parse("G p"), parse("!F !p"))

    def test_release_duality(self):
        assert equivalent(parse("p R q"), parse("!(!p U !q)"))

    def test_until_unrolling(self):
        assert equivalent(parse("p U q"), parse("q || (p && X(p U q))"))

    def test_distribution(self):
        assert equivalent(parse("X(p && q)"), parse("X p && X q"))
        assert equivalent(parse("G(p && q)"), parse("G p && G q"))
        assert equivalent(parse("F(p || q)"), parse("F p || F q"))

    def test_non_equivalences(self):
        assert not equivalent(parse("F(p && q)"), parse("F p && F q"))
        assert not equivalent(parse("p U q"), parse("p W q"))


class TestImplication:
    def test_strict_until_implies_weak(self):
        assert implies(parse("p U q"), parse("p W q"))
        assert not implies(parse("p W q"), parse("p U q"))

    def test_globally_implies_instance(self):
        assert implies(parse("G p"), parse("p"))
        assert implies(parse("G p"), parse("X X p"))

    def test_counterexample_is_real(self):
        run = counterexample(parse("p W q"), parse("p U q"))
        assert run is not None
        assert satisfies(run, parse("p W q"))
        assert not satisfies(run, parse("p U q"))

    def test_counterexample_none_when_valid(self):
        assert counterexample(parse("p U q"), parse("p W q")) is None


class TestProperties:
    @given(formulas(max_depth=3))
    @settings(max_examples=80, deadline=None)
    def test_formula_equivalent_to_itself_and_nnf(self, formula):
        from repro.ltl.rewrite import nnf

        assert equivalent(formula, formula)
        assert equivalent(formula, nnf(formula))

    @given(formulas(max_depth=3))
    @settings(max_examples=80, deadline=None)
    def test_satisfiable_or_negation_valid(self, formula):
        from repro.ltl.ast import Not

        assert is_satisfiable(formula) != is_valid(Not(formula))
