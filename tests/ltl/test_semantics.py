"""Unit tests for the ground-truth LTL evaluator.

Each operator's inductive clause (§6.1) is exercised on hand-built runs,
including the fixpoint-sensitive cases that distinguish least from
greatest fixpoints on loops.
"""

from repro.ltl.parser import parse
from repro.ltl.runs import Run
from repro.ltl.semantics import evaluate_positions, satisfies


def run(prefix, loop=((),)):
    return Run.from_events(prefix, loop)


class TestPropositional:
    def test_prop_now(self):
        assert satisfies(run([["p"]]), parse("p"))
        assert not satisfies(run([["q"]]), parse("p"))

    def test_constants(self):
        empty = run([])
        assert satisfies(empty, parse("true"))
        assert not satisfies(empty, parse("false"))

    def test_boolean_connectives(self):
        r = run([["p", "q"]])
        assert satisfies(r, parse("p && q"))
        assert satisfies(r, parse("p || r"))
        assert not satisfies(r, parse("!p"))
        assert satisfies(r, parse("p -> q"))
        assert satisfies(r, parse("p <-> q"))
        assert not satisfies(r, parse("p <-> r"))


class TestNext:
    def test_next_looks_one_step(self):
        assert satisfies(run([["p"], ["q"]]), parse("X q"))
        assert not satisfies(run([["p"], ["p"]]), parse("X q"))

    def test_next_wraps_into_loop(self):
        r = Run.from_events([], [["p"], ["q"]])
        assert satisfies(r, parse("X q"))


class TestUntil:
    def test_until_basic(self):
        assert satisfies(run([["p"], ["p"], ["q"]]), parse("p U q"))

    def test_until_requires_left_to_hold(self):
        assert not satisfies(run([["p"], [], ["q"]], [["q"]]), parse("p U q"))

    def test_until_immediate(self):
        # k = 0: the right side holding now suffices.
        assert satisfies(run([["q"]]), parse("p U q"))

    def test_until_is_least_fixpoint(self):
        # p forever but q never: must be FALSE despite the loop.
        r = Run.from_events([], [["p"]])
        assert not satisfies(r, parse("p U q"))

    def test_finally(self):
        assert satisfies(run([[], [], ["p"]]), parse("F p"))
        assert not satisfies(Run.from_events([], [[]]), parse("F p"))


class TestRelease:
    def test_release_is_greatest_fixpoint(self):
        # q forever satisfies p R q even though p never happens.
        r = Run.from_events([], [["q"]])
        assert satisfies(r, parse("p R q"))

    def test_release_discharged(self):
        r = run([["q"], ["p", "q"], []], [[]])
        assert satisfies(r, parse("p R q"))

    def test_release_violated(self):
        r = run([["q"], []], [[]])
        assert not satisfies(r, parse("p R q"))

    def test_globally(self):
        assert satisfies(Run.from_events([], [["p"]]), parse("G p"))
        assert not satisfies(run([["p"], []], [["p"]]), parse("G p"))


class TestDerivedOperators:
    def test_weak_until_holds_forever(self):
        r = Run.from_events([], [["p"]])
        assert satisfies(r, parse("p W q"))
        assert not satisfies(r, parse("p U q"))

    def test_weak_until_with_release_event(self):
        r = run([["p"], ["q"]])
        assert satisfies(r, parse("p W q"))

    def test_before(self):
        # p B q: every future q is strictly preceded by a p.
        assert satisfies(run([["p"], ["q"]]), parse("p B q"))
        assert not satisfies(run([["q"]]), parse("p B q"))
        # vacuous: q never happens.
        assert satisfies(Run.from_events([], [[]]), parse("p B q"))

    def test_nested_modalities(self):
        # GF p: p infinitely often.
        infinitely = Run.from_events([], [["p"], []])
        finitely = Run.from_events([["p"]], [[]])
        assert satisfies(infinitely, parse("G F p"))
        assert not satisfies(finitely, parse("G F p"))

    def test_fg_stabilization(self):
        r = Run.from_events([[], ["p"]], [["p"]])
        assert satisfies(r, parse("F G p"))


class TestEvaluatePositions:
    def test_per_position_table(self):
        r = run([["p"], []], [["p"]])
        table = evaluate_positions(r, parse("p"))
        assert table == [True, False, True]

    def test_suffix_semantics(self):
        r = run([[], ["p"]], [[]])
        table = evaluate_positions(r, parse("F p"))
        # F p holds at positions 0 and 1, fails inside the empty loop.
        assert table == [True, True, False]


class TestPaperExamples:
    def test_ticket_a_clause(self):
        clause = parse("G(dateChange -> !F refund)")
        ok = run([["purchase"], ["dateChange"], ["use"]])
        bad = run([["purchase"], ["dateChange"], ["refund"]])
        assert satisfies(ok, clause)
        assert not satisfies(bad, clause)

    def test_ticket_c_single_change(self):
        clause = parse("G(dateChange -> X(!F dateChange))")
        one = run([["dateChange"], ["use"]])
        two = run([["dateChange"], ["dateChange"]])
        assert satisfies(one, clause)
        assert not satisfies(two, clause)

    def test_example_3_sequences(self):
        spec = parse("purchase && X(dateChange && X use)")
        assert satisfies(run([["purchase"], ["dateChange"], ["use"]]), spec)
