"""Unit tests for the Dwyer pattern library (Tables 1 & 3 of the paper)."""

import pytest

from repro.ltl.parser import parse
from repro.ltl.patterns import (
    BEHAVIOR_WEIGHTS,
    SCOPE_WEIGHTS,
    TEMPLATES,
    Behavior,
    Scope,
    instantiate,
    template,
)
from repro.ltl.printer import format_formula
from repro.ltl.runs import Run
from repro.ltl.semantics import satisfies


class TestCatalog:
    def test_twenty_templates(self):
        assert len(TEMPLATES) == 20

    def test_every_combination_present(self):
        for behavior in Behavior:
            for scope in Scope:
                assert (behavior, scope) in TEMPLATES

    def test_placeholder_layout(self):
        assert template(Behavior.ABSENCE, Scope.GLOBAL).placeholders == ("p",)
        assert template(Behavior.RESPONSE, Scope.BETWEEN).placeholders == (
            "p", "s", "q", "r",
        )

    def test_weights_cover_all(self):
        assert set(BEHAVIOR_WEIGHTS) == set(Behavior)
        assert set(SCOPE_WEIGHTS) == set(Scope)
        # Response dominates the survey; global dominates the scopes.
        assert max(BEHAVIOR_WEIGHTS, key=BEHAVIOR_WEIGHTS.get) == Behavior.RESPONSE
        assert max(SCOPE_WEIGHTS, key=SCOPE_WEIGHTS.get) == Scope.GLOBAL

    def test_descriptions_nonempty(self):
        for tpl in TEMPLATES.values():
            assert tpl.description


class TestInstantiation:
    def test_missing_placeholder_raises(self):
        with pytest.raises(KeyError):
            instantiate(Behavior.ABSENCE, Scope.BEFORE, p="a")

    def test_extra_arguments_ignored(self):
        f = instantiate(Behavior.ABSENCE, Scope.GLOBAL, p="a", unused="b")
        assert f == parse("G !a")

    def test_variables_are_substituted(self):
        f = instantiate(Behavior.RESPONSE, Scope.GLOBAL, p="req", s="ack")
        assert f.variables() == frozenset({"req", "ack"})


class TestTableFormulas:
    """The LTL of Table 3 (Table 1 for precedence), verbatim."""

    @pytest.mark.parametrize(
        "behavior,scope,events,expected",
        [
            (Behavior.ABSENCE, Scope.GLOBAL, {"p": "p"}, "G(!p)"),
            (Behavior.ABSENCE, Scope.BEFORE, {"p": "p", "r": "r"},
             "F r -> (!p U r)"),
            (Behavior.ABSENCE, Scope.AFTER, {"p": "p", "q": "q"},
             "G(q -> G(!p))"),
            (Behavior.ABSENCE, Scope.BETWEEN,
             {"p": "p", "q": "q", "r": "r"},
             "G((q && (!r && F r)) -> (!p U r))"),
            (Behavior.EXISTENCE, Scope.GLOBAL, {"p": "p"}, "F p"),
            (Behavior.EXISTENCE, Scope.BEFORE, {"p": "p", "r": "r"},
             "!r W (p && !r)"),
            (Behavior.EXISTENCE, Scope.AFTER, {"p": "p", "q": "q"},
             "G(!q) || F(q && F p)"),
            (Behavior.UNIVERSALITY, Scope.GLOBAL, {"p": "p"}, "G p"),
            (Behavior.UNIVERSALITY, Scope.BEFORE, {"p": "p", "r": "r"},
             "F r -> (p U r)"),
            (Behavior.UNIVERSALITY, Scope.AFTER, {"p": "p", "q": "q"},
             "G(q -> G p)"),
            (Behavior.PRECEDENCE, Scope.GLOBAL, {"p": "p", "s": "s"},
             "F p -> (!p U (s || G(!p)))"),
            (Behavior.PRECEDENCE, Scope.BEFORE,
             {"p": "p", "s": "s", "r": "r"},
             "F r -> (!p U (s || r))"),
            (Behavior.RESPONSE, Scope.GLOBAL, {"p": "p", "s": "s"},
             "G(p -> F s)"),
            (Behavior.RESPONSE, Scope.AFTER,
             {"p": "p", "s": "s", "q": "q"},
             "G(q -> G(p -> F s))"),
        ],
    )
    def test_formula_matches_table(self, behavior, scope, events, expected):
        assert instantiate(behavior, scope, **events) == parse(expected)


class TestPatternSemantics:
    """Spot checks that each behavior means what Table 3 says."""

    def test_absence_global(self):
        f = instantiate(Behavior.ABSENCE, Scope.GLOBAL, p="p")
        assert satisfies(Run.from_events([], [[]]), f)
        assert not satisfies(Run.from_events([["p"]], [[]]), f)

    def test_absence_after(self):
        f = instantiate(Behavior.ABSENCE, Scope.AFTER, p="p", q="q")
        assert satisfies(Run.from_events([["p"], ["q"]], [[]]), f)
        assert not satisfies(Run.from_events([["q"], ["p"]], [[]]), f)

    def test_existence_between(self):
        f = instantiate(Behavior.EXISTENCE, Scope.BETWEEN, p="p", q="q", r="r")
        good = Run.from_events([["q"], ["p"], ["r"]], [[]])
        bad = Run.from_events([["q"], [], ["r"]], [[]])
        assert satisfies(good, f)
        assert not satisfies(bad, f)

    def test_universality_before(self):
        f = instantiate(Behavior.UNIVERSALITY, Scope.BEFORE, p="p", r="r")
        good = Run.from_events([["p"], ["p"], ["r"]], [[]])
        bad = Run.from_events([["p"], [], ["r"]], [[]])
        assert satisfies(good, f)
        assert not satisfies(bad, f)
        # vacuous when r never occurs
        assert satisfies(Run.from_events([], [[]]), f)

    def test_precedence_global(self):
        f = instantiate(Behavior.PRECEDENCE, Scope.GLOBAL, p="p", s="s")
        assert satisfies(Run.from_events([["s"], ["p"]], [[]]), f)
        assert not satisfies(Run.from_events([["p"], ["s"]], [[]]), f)
        # vacuous when p never occurs
        assert satisfies(Run.from_events([], [[]]), f)

    def test_response_global(self):
        f = instantiate(Behavior.RESPONSE, Scope.GLOBAL, p="p", s="s")
        assert satisfies(Run.from_events([["p"], ["s"]], [[]]), f)
        assert not satisfies(Run.from_events([["p"]], [[]]), f)

    def test_response_between(self):
        f = instantiate(Behavior.RESPONSE, Scope.BETWEEN,
                        p="p", s="s", q="q", r="r")
        good = Run.from_events([["q"], ["p"], ["s"], ["r"]], [[]])
        bad = Run.from_events([["q"], ["p"], ["r"]], [[]])
        assert satisfies(good, f)
        assert not satisfies(bad, f)

    def test_all_templates_round_trip_through_parser(self):
        names = {"p": "e1", "s": "e2", "q": "e3", "r": "e4"}
        for tpl in TEMPLATES.values():
            f = tpl.instantiate(**{k: names[k] for k in tpl.placeholders})
            assert parse(format_formula(f)) == f
