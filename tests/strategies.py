"""Hypothesis strategies for LTL formulas, labels and runs.

The formula strategy generates bounded-depth trees over a tiny
vocabulary; paired with the random-run strategy it drives the
differential tests between the ground-truth evaluator and the automata
pipeline, which are the strongest correctness checks in the suite.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.ltl import ast as A
from repro.ltl.runs import Run

#: Small vocabulary keeps automata tiny and collision-rich.
EVENTS = ("a", "b", "c")


def props(events: tuple[str, ...] = EVENTS) -> st.SearchStrategy:
    return st.sampled_from(events).map(A.Prop)


def formulas(
    events: tuple[str, ...] = EVENTS, max_depth: int = 4
) -> st.SearchStrategy:
    """Random LTL formulas over ``events`` with bounded depth."""
    atoms = st.one_of(
        props(events),
        st.just(A.TRUE),
        st.just(A.FALSE),
    )

    def extend(children: st.SearchStrategy) -> st.SearchStrategy:
        unary = st.sampled_from([A.Not, A.Next, A.Finally, A.Globally])
        binary = st.sampled_from(
            [A.And, A.Or, A.Implies, A.Iff, A.Until, A.WeakUntil,
             A.Before, A.Release]
        )
        return st.one_of(
            st.builds(lambda op, x: op(x), unary, children),
            st.builds(lambda op, x, y: op(x, y), binary, children, children),
        )

    return st.recursive(atoms, extend, max_leaves=2 ** max_depth)


def snapshots(events: tuple[str, ...] = EVENTS) -> st.SearchStrategy:
    return st.sets(st.sampled_from(events)).map(frozenset)


def runs(
    events: tuple[str, ...] = EVENTS,
    max_prefix: int = 4,
    max_loop: int = 4,
) -> st.SearchStrategy:
    """Random ultimately-periodic runs over ``events``."""
    return st.builds(
        Run,
        st.lists(snapshots(events), max_size=max_prefix).map(tuple),
        st.lists(snapshots(events), min_size=1, max_size=max_loop).map(tuple),
    )


def labels(events: tuple[str, ...] = EVENTS) -> st.SearchStrategy:
    """Random satisfiable conjunction-of-literal labels."""
    from repro.automata.labels import Label, neg, pos

    def build(assignment: dict) -> Label:
        literals = [
            pos(e) if polarity else neg(e)
            for e, polarity in assignment.items()
        ]
        return Label.of(literals)

    return st.dictionaries(
        st.sampled_from(events), st.booleans(), max_size=len(events)
    ).map(build)


def buchi_automata(
    events: tuple[str, ...] = EVENTS,
    max_states: int = 5,
    max_transitions: int = 10,
) -> st.SearchStrategy:
    """Random (not LTL-shaped) Büchi automata — arbitrary graphs with
    random literal-conjunction labels and random final sets.

    These exercise the automaton-generic algorithms (bisimulation,
    products, reductions, permission) on shapes the translator never
    produces: unreachable states, dead ends, parallel edges."""
    from repro.automata.buchi import BuchiAutomaton, Transition

    @st.composite
    def build(draw):
        num_states = draw(st.integers(min_value=1, max_value=max_states))
        states = list(range(num_states))
        num_transitions = draw(
            st.integers(min_value=0, max_value=max_transitions)
        )
        transitions = [
            Transition(
                draw(st.sampled_from(states)),
                draw(labels(events)),
                draw(st.sampled_from(states)),
            )
            for _ in range(num_transitions)
        ]
        final = draw(st.sets(st.sampled_from(states)))
        return BuchiAutomaton(states, 0, transitions, final)

    return build()
