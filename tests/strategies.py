"""Thin re-export shim: the strategies now ship with the library.

The hypothesis strategies moved to :mod:`repro.check.strategies` so the
conformance harness and downstream suites can import them; this module
keeps every historical ``tests.strategies`` / ``..strategies`` import
working unchanged.
"""

from repro.check.strategies import *  # noqa: F401,F403
from repro.check.strategies import __all__  # noqa: F401
