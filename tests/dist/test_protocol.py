"""The wire protocol: framing, option/outcome documents, guard rails."""

import socket
import struct
import threading

import pytest

from repro.broker.options import Degradation, QueryOptions
from repro.broker.query import QueryOutcome, QueryStats, Verdict
from repro.broker.relational import AttributeFilter
from repro.dist import protocol
from repro.errors import ProtocolError
from repro.ltl.parser import parse


class TestFraming:
    def test_encode_decode_round_trip(self):
        doc = {"op": "ping", "n": 3, "nested": {"a": [1, 2]}}
        frame = protocol.encode_frame(doc)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert protocol.decode_payload(frame[4:]) == doc

    def test_socket_round_trip(self):
        server, client = socket.socketpair()
        try:
            received = []

            def consume():
                received.append(protocol.recv_frame(server))
                received.append(protocol.recv_frame(server))

            thread = threading.Thread(target=consume)
            thread.start()
            protocol.send_frame(client, {"op": "ping"})
            protocol.send_frame(client, {"op": "status", "x": "y" * 5000})
            thread.join(timeout=5)
            assert received == [
                {"op": "ping"}, {"op": "status", "x": "y" * 5000},
            ]
        finally:
            server.close()
            client.close()

    def test_clean_eof_is_none(self):
        server, client = socket.socketpair()
        client.close()
        try:
            assert protocol.recv_frame(server) is None
        finally:
            server.close()

    def test_truncated_frame_raises(self):
        server, client = socket.socketpair()
        try:
            frame = protocol.encode_frame({"op": "ping"})
            client.sendall(frame[: len(frame) - 2])
            client.close()
            with pytest.raises(ProtocolError):
                protocol.recv_frame(server)
        finally:
            server.close()

    def test_oversized_length_rejected(self):
        with pytest.raises(ProtocolError):
            protocol._parse_length(
                struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
            )

    def test_non_json_payload_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_payload(b"\xff\xfe not json")
        with pytest.raises(ProtocolError):
            protocol.decode_payload(b"[1, 2]")  # not an object

    def test_unserializable_frame_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.encode_frame({"op": object()})


class TestOptionDocs:
    def test_round_trip_non_defaults(self):
        options = QueryOptions(
            attribute_filter=AttributeFilter.from_list(
                [["price", "<=", 500], ["route", "==", "SAN-NYC"]]
            ),
            use_prefilter=False,
            deadline_seconds=0.5,
            step_budget=64,
            degradation=Degradation.DROP,
            workers=2,
        )
        doc = protocol.options_to_doc(options)
        rebuilt = protocol.options_from_doc(doc)
        assert rebuilt == options

    def test_defaults_round_trip_empty_doc(self):
        doc = protocol.options_to_doc(QueryOptions())
        assert doc == {}
        assert protocol.options_from_doc(doc) == QueryOptions()

    def test_explain_cannot_cross_the_wire(self):
        with pytest.raises(ProtocolError):
            protocol.options_to_doc(QueryOptions(explain=True))

    def test_contract_ids_cannot_cross_the_wire(self):
        with pytest.raises(ProtocolError):
            protocol.options_to_doc(QueryOptions(contract_ids=(1, 2)))


class TestOutcomeDocs:
    def _outcome(self):
        return QueryOutcome(
            formula=parse("F a"),
            contract_ids=(1, 3),
            contract_names=("alpha", "gamma"),
            stats=QueryStats(candidates=4, checked=3, permitted=2,
                             timed_out=1, degraded=True,
                             database_size=5),
            verdicts={
                1: Verdict.PERMITTED,
                2: Verdict.NOT_PERMITTED,
                3: Verdict.PERMITTED,
                4: Verdict.TIMED_OUT,
            },
            maybe_ids=(4,),
            maybe_names=("delta",),
        )

    def test_round_trip_names_and_verdicts(self):
        doc = protocol.outcome_to_doc(
            self._outcome(), {2: "beta"}
        )
        rebuilt = protocol.outcome_from_doc(doc)
        assert rebuilt.contract_names == ("alpha", "gamma")
        assert rebuilt.maybe_names == ("delta",)
        assert rebuilt.verdicts == {
            "alpha": Verdict.PERMITTED,
            "beta": Verdict.NOT_PERMITTED,
            "gamma": Verdict.PERMITTED,
            "delta": Verdict.TIMED_OUT,
        }
        assert rebuilt.stats.candidates == 4
        assert rebuilt.stats.degraded is True
        assert str(rebuilt.formula) == str(parse("F a"))

    def test_unresolvable_candidate_names_are_dropped(self):
        # without the server's catalog, id 2 has no name: the verdict
        # map simply omits it rather than inventing one
        doc = protocol.outcome_to_doc(self._outcome())
        assert set(doc["verdicts"]) == {"alpha", "gamma", "delta"}

    def test_malformed_outcome_doc_raises(self):
        with pytest.raises(ProtocolError):
            protocol.outcome_from_doc({"permitted": ["a"]})  # no formula
        with pytest.raises(ProtocolError):
            protocol.outcome_from_doc(
                {"formula": "F a", "verdicts": {"a": "no-such-verdict"}}
            )

    def test_error_doc_shape(self):
        doc = protocol.error_doc(ProtocolError("boom"))
        assert doc == {"ok": False, "error": "boom",
                       "kind": "ProtocolError"}
