"""Journal shipping: a replica tails the leader's journal and can only
ever hold a prefix of the leader's acknowledged state."""

import pytest

from repro.broker.journal import open_database
from repro.broker.persist import save_database
from repro.dist.replica import Replica
from repro.errors import DistError


@pytest.fixture
def leader(tmp_path):
    db = open_database(tmp_path)
    yield db
    if db.journal is not None:
        db.journal.close()


def _names(db):
    return sorted(c.name for c in db.contracts())


class TestCatchUp:
    def test_replica_converges_to_leader(self, tmp_path, leader):
        for i in range(5):
            leader.register(f"contract-{i}", ["G (a -> F b)"], {"price": i})
        replica = Replica(tmp_path)
        report = replica.catch_up()
        assert report.lag_bytes == 0
        assert len(replica) == 5
        assert _names(replica.db) == _names(leader)

        # answers match the leader's bit for bit
        expected = leader.query("F a")
        got = replica.query("F a")
        assert got.contract_names == expected.contract_names
        assert got.verdicts == expected.verdicts

    def test_incremental_tail_does_not_resync(self, tmp_path, leader):
        leader.register("alpha", ["F a"])
        replica = Replica(tmp_path)
        first = replica.catch_up()
        assert first.resynced  # the initial sync is a resync by definition

        leader.register("beta", ["F a"])
        leader.deregister(self_id := next(
            c.contract_id for c in leader.contracts() if c.name == "alpha"
        ))
        report = replica.catch_up()
        assert not report.resynced
        assert report.applied == 2
        assert _names(replica.db) == ["beta"]
        assert self_id is not None

    def test_empty_leader_dir_is_just_lag_zero(self, tmp_path):
        replica = Replica(tmp_path / "leader-not-started")
        report = replica.poll()
        assert report.applied == 0
        assert not report.torn
        assert report.lag_bytes == 0
        # catch_up terminates even with no journal at all
        assert replica.catch_up(timeout=1.0).lag_bytes == 0

    def test_catch_up_times_out_on_permanent_tear(self, tmp_path, leader):
        leader.register("alpha", ["F a"])
        raw = (tmp_path / "journal.jsonl").read_bytes()
        trial = tmp_path / "torn"
        trial.mkdir()
        (trial / "journal.jsonl").write_bytes(raw[:-4])
        replica = Replica(trial)
        with pytest.raises(DistError, match="did not catch up"):
            replica.catch_up(timeout=0.3)


class TestTornTail:
    def test_torn_record_not_consumed_then_resumed(self, tmp_path, leader):
        leader.register("alpha", ["F a"])
        replica = Replica(tmp_path)
        replica.catch_up()
        offset = replica.cursor.offset

        # simulate the leader mid-flush: append half a record
        path = tmp_path / "journal.jsonl"
        before = path.read_bytes()
        leader.register("beta", ["F a"])
        complete = path.read_bytes()
        path.write_bytes(complete[: len(before) + 10])

        report = replica.poll()
        assert report.torn
        assert report.applied == 0
        assert replica.cursor.offset == offset  # cursor did not move
        assert _names(replica.db) == ["alpha"]
        # the replica never mutates the leader's journal
        assert path.read_bytes() == complete[: len(before) + 10]

        # the flush completes; the very next poll applies the record
        path.write_bytes(complete)
        report = replica.poll()
        assert not report.torn
        assert report.applied == 1
        assert _names(replica.db) == ["alpha", "beta"]


class TestEpochChange:
    def test_compaction_triggers_resync(self, tmp_path, leader):
        for i in range(3):
            leader.register(f"c{i}", ["F a"])
        replica = Replica(tmp_path)
        replica.catch_up()
        epoch_before = replica.cursor.epoch

        # the leader compacts: snapshot + fresh journal, epoch bump
        leader.register("late", ["F a"])
        leader.dirty = True
        save_database(leader, tmp_path)
        leader.register("post-compaction", ["F a"])

        report = replica.catch_up()
        assert report.resynced
        assert replica.cursor.epoch == epoch_before + 1
        assert _names(replica.db) == _names(leader)
        assert replica.metrics.counter_value("dist.replica.resyncs") >= 1

    def test_replica_state_survives_header_unreadable(self, tmp_path, leader):
        leader.register("alpha", ["F a"])
        replica = Replica(tmp_path)
        replica.catch_up()

        path = tmp_path / "journal.jsonl"
        saved = path.read_bytes()
        path.write_bytes(b'{"torn-header')  # no newline: header torn
        report = replica.poll()
        assert report.applied == 0
        assert _names(replica.db) == ["alpha"]  # prior state kept

        path.write_bytes(saved)
        replica.catch_up()
        assert _names(replica.db) == ["alpha"]


class TestLagMetrics:
    def test_lag_gauges_track_unapplied_records(self, tmp_path, leader):
        replica = Replica(tmp_path)
        leader.register("alpha", ["F a"])
        replica.catch_up()
        assert replica.metrics.gauge_value("dist.replica.lag_records") == 0
        assert replica.metrics.gauge_value("dist.replica.lag_bytes") == 0

        leader.register("beta", ["F a"])
        leader.register("gamma", ["F a"])
        # observe without applying: lag is visible before the poll that
        # consumes it
        from repro.dist.replica import PollReport

        probe = PollReport()
        replica._observe_lag(probe)
        assert probe.lag_records == 2
        assert replica.metrics.gauge_value("dist.replica.lag_records") == 2
        assert replica.metrics.gauge_value("dist.replica.lag_bytes") > 0
        # after a real poll the gauges drop back to zero
        replica.catch_up()
        assert replica.metrics.gauge_value("dist.replica.lag_records") == 0
        assert replica.metrics.counter_value("dist.replica.applied") >= 3
