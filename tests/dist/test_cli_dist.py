"""The distributed CLI surface: serve and shard-status."""

import json

import pytest

from repro.cli import main
from repro.dist import ShardServer


class TestServe:
    def test_serve_seeds_and_stops(self, tmp_path, capsys):
        specs = tmp_path / "specs.json"
        specs.write_text(json.dumps([
            {"name": "alpha", "clauses": ["F a"], "attributes": {}},
            {"name": "beta", "clauses": ["G !a"], "attributes": {}},
        ]), encoding="utf-8")
        port_file = tmp_path / "ports.json"
        assert main([
            "serve", "--shards", "2", "--specs", str(specs),
            "--directory", str(tmp_path / "cluster"),
            "--port-file", str(port_file), "--duration", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "shard 0:" in out and "shard 1:" in out
        assert "registered 2 contracts across 2 shard(s)" in out
        assert "cluster stopped" in out
        addresses = json.loads(port_file.read_text(encoding="utf-8"))
        assert len(addresses) == 2
        # the journals survive the cluster
        assert (tmp_path / "cluster" / "shard-0" / "journal.jsonl").exists()

    def test_serve_rejects_no_shards(self, capsys):
        assert main(["serve", "--shards", "0", "--duration", "0"]) == 1
        assert "at least one shard" in capsys.readouterr().err


class TestShardStatus:
    def test_status_against_live_shard(self, capsys):
        server = ShardServer(0).start()
        try:
            server.handle_request({
                "op": "register", "name": "alpha",
                "clauses": ["F a"], "attributes": {},
            })
            host, port = server.address
            assert main([
                "shard-status", "--address", f"{host}:{port}",
            ]) == 0
            out = capsys.readouterr().out
            assert "1 contract(s), memory-only" in out
            assert "contracts: alpha" in out
            assert "1/1 shard(s) up, 1 contract(s) total" in out

            assert main([
                "shard-status", "--address", f"{host}:{port}", "--json",
            ]) == 0
            doc = json.loads(capsys.readouterr().out)
            assert doc["shards"][0]["names"] == ["alpha"]
        finally:
            server.stop()

    def test_status_via_port_file(self, tmp_path, capsys):
        server = ShardServer(0).start()
        try:
            port_file = tmp_path / "ports.json"
            port_file.write_text(
                json.dumps([list(server.address)]), encoding="utf-8"
            )
            assert main(["shard-status", "--port-file", str(port_file)]) == 0
            assert "1 shard(s)" in capsys.readouterr().out
        finally:
            server.stop()

    def test_status_requires_an_address(self, capsys):
        assert main(["shard-status"]) == 1
        assert "provide --address or --port-file" in capsys.readouterr().err

    def test_status_rejects_malformed_address(self, capsys):
        assert main(["shard-status", "--address", "nope"]) == 1
        assert "expected HOST:PORT" in capsys.readouterr().err

    def test_status_dead_shard_is_a_finding_not_a_failure(self, capsys):
        # one dead shard must not fail the whole invocation: exit 0,
        # the shard marked down with the transport error attached
        assert main(["shard-status", "--address", "127.0.0.1:1"]) == 0
        out = capsys.readouterr().out
        assert "down (" in out
        assert "0/1 shard(s) up, 0 contract(s) total" in out

    def test_status_json_carries_the_down_error(self, capsys):
        assert main([
            "shard-status", "--address", "127.0.0.1:1", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        (shard,) = doc["shards"]
        assert shard["up"] is False
        assert "cannot reach" in shard["error"]
        assert shard["contracts"] is None

    def test_status_mixed_live_and_dead_shards(self, capsys):
        server = ShardServer(0).start()
        try:
            host, port = server.address
            assert main([
                "shard-status",
                "--address", f"{host}:{port}",
                "--address", "127.0.0.1:1",
            ]) == 0
            out = capsys.readouterr().out
            assert "1/2 shard(s) up" in out
            assert "down (" in out
        finally:
            server.stop()

    def test_status_health_summary(self, capsys):
        server = ShardServer(0).start()
        try:
            host, port = server.address
            assert main([
                "shard-status", "--health",
                "--address", f"{host}:{port}",
                "--address", "127.0.0.1:1",
            ]) == 0
            out = capsys.readouterr().out
            assert "up, 0 contract(s)" in out
            assert "down (" in out
            assert "1/2 shard(s) up" in out
        finally:
            server.stop()


class TestPromoteCli:
    def _journaled_leader(self, tmp_path):
        from repro.broker.journal import open_database

        leader_dir = tmp_path / "leader"
        db = open_database(leader_dir)
        db.register("alpha", ["F a"], {})
        db.register("beta", ["G !a"], {})
        return leader_dir

    def test_promote_writes_a_new_leader(self, tmp_path, capsys):
        from repro.broker.persist import load_database

        leader_dir = self._journaled_leader(tmp_path)
        promoted = tmp_path / "promoted"
        assert main([
            "promote", str(leader_dir), str(promoted),
        ]) == 0
        out = capsys.readouterr().out
        assert "promoted into" in out
        assert "journal epoch 1" in out
        recovered = load_database(promoted)
        assert sorted(c.name for c in recovered.contracts()) == [
            "alpha", "beta",
        ]

    def test_promote_json_report(self, tmp_path, capsys):
        leader_dir = self._journaled_leader(tmp_path)
        assert main([
            "promote", str(leader_dir), str(tmp_path / "promoted"),
            "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["epoch"] == 1
        assert doc["contracts"] == 2

    def test_promote_refuses_the_leader_directory(self, tmp_path, capsys):
        leader_dir = self._journaled_leader(tmp_path)
        assert main([
            "promote", str(leader_dir), str(leader_dir),
        ]) == 1
        assert "fresh directory" in capsys.readouterr().err
