"""The distributed CLI surface: serve and shard-status."""

import json

import pytest

from repro.cli import main
from repro.dist import ShardServer


class TestServe:
    def test_serve_seeds_and_stops(self, tmp_path, capsys):
        specs = tmp_path / "specs.json"
        specs.write_text(json.dumps([
            {"name": "alpha", "clauses": ["F a"], "attributes": {}},
            {"name": "beta", "clauses": ["G !a"], "attributes": {}},
        ]), encoding="utf-8")
        port_file = tmp_path / "ports.json"
        assert main([
            "serve", "--shards", "2", "--specs", str(specs),
            "--directory", str(tmp_path / "cluster"),
            "--port-file", str(port_file), "--duration", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "shard 0:" in out and "shard 1:" in out
        assert "registered 2 contracts across 2 shard(s)" in out
        assert "cluster stopped" in out
        addresses = json.loads(port_file.read_text(encoding="utf-8"))
        assert len(addresses) == 2
        # the journals survive the cluster
        assert (tmp_path / "cluster" / "shard-0" / "journal.jsonl").exists()

    def test_serve_rejects_no_shards(self, capsys):
        assert main(["serve", "--shards", "0", "--duration", "0"]) == 1
        assert "at least one shard" in capsys.readouterr().err


class TestShardStatus:
    def test_status_against_live_shard(self, capsys):
        server = ShardServer(0).start()
        try:
            server.handle_request({
                "op": "register", "name": "alpha",
                "clauses": ["F a"], "attributes": {},
            })
            host, port = server.address
            assert main([
                "shard-status", "--address", f"{host}:{port}",
            ]) == 0
            out = capsys.readouterr().out
            assert "1 contract(s), memory-only" in out
            assert "contracts: alpha" in out
            assert "1 shard(s), 1 contract(s) total" in out

            assert main([
                "shard-status", "--address", f"{host}:{port}", "--json",
            ]) == 0
            doc = json.loads(capsys.readouterr().out)
            assert doc["shards"][0]["names"] == ["alpha"]
        finally:
            server.stop()

    def test_status_via_port_file(self, tmp_path, capsys):
        server = ShardServer(0).start()
        try:
            port_file = tmp_path / "ports.json"
            port_file.write_text(
                json.dumps([list(server.address)]), encoding="utf-8"
            )
            assert main(["shard-status", "--port-file", str(port_file)]) == 0
            assert "1 shard(s)" in capsys.readouterr().out
        finally:
            server.stop()

    def test_status_requires_an_address(self, capsys):
        assert main(["shard-status"]) == 1
        assert "provide --address or --port-file" in capsys.readouterr().err

    def test_status_rejects_malformed_address(self, capsys):
        assert main(["shard-status", "--address", "nope"]) == 1
        assert "expected HOST:PORT" in capsys.readouterr().err

    def test_status_unreachable_shard_fails_cleanly(self, capsys):
        assert main(["shard-status", "--address", "127.0.0.1:1"]) == 1
        assert "cannot reach" in capsys.readouterr().err
