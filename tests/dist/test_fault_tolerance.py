"""Fault tolerance in the distributed broker (1.10): per-shard circuit
breakers, RPC retry under injected transport faults, replica read
routing, leader promotion, and the merged answer when *every* shard is
dead.

The invariant throughout is invariant 16: a retried or failed-over
query returns the same answer a never-failed cluster would, or a sound
degradation (``permitted ⊆ exact ⊆ permitted ∪ maybe``).
"""

import pytest

from repro.broker.database import ContractDatabase
from repro.broker.journal import open_database
from repro.broker.options import Degradation, QueryOptions
from repro.broker.persist import load_database
from repro.broker.query import Verdict
from repro.core import faults
from repro.core.retry import BackoffPolicy
from repro.dist import (
    Coordinator,
    LocalCluster,
    ReadPreference,
    Replica,
    RoutedContract,
    ShardHealth,
)
from repro.errors import DistError, QueryBudgetError, RetryableDistError

#: A retry policy tight enough for tests: same shape, no real sleeping.
FAST_RETRY = BackoffPolicy(max_retries=2, base_seconds=0.002,
                           cap_seconds=0.01)


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestShardHealth:
    def _breaker(self, **kwargs):
        clock = FakeClock()
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("reset_seconds", 5.0)
        return ShardHealth(clock=clock, **kwargs), clock

    def test_starts_closed_and_allows(self):
        breaker, _ = self._breaker()
        assert breaker.state == "closed"
        assert breaker.healthy
        assert breaker.allow()

    def test_opens_on_the_nth_consecutive_failure(self):
        breaker, _ = self._breaker()
        assert breaker.record_failure(OSError("one")) is False
        assert breaker.record_failure(OSError("two")) is False
        # exactly the tripping failure reports True (the metric hook)
        assert breaker.record_failure(OSError("three")) is True
        assert breaker.state == "open"
        assert not breaker.healthy
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = self._breaker()
        breaker.record_failure(OSError("one"))
        breaker.record_failure(OSError("two"))
        breaker.record_success()
        assert breaker.consecutive_failures == 0
        breaker.record_failure(OSError("again"))
        assert breaker.state == "closed"

    def test_half_open_grants_a_single_probe(self):
        breaker, clock = self._breaker()
        for i in range(3):
            breaker.record_failure(OSError(f"f{i}"))
        assert not breaker.allow()  # open: fail fast
        clock.advance(5.0)
        assert breaker.allow()  # the reset timeout elapsed: one probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # concurrent callers wait on it

    def test_probe_success_closes(self):
        breaker, clock = self._breaker()
        for i in range(3):
            breaker.record_failure(OSError(f"f{i}"))
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_immediately(self):
        breaker, clock = self._breaker()
        for i in range(3):
            breaker.record_failure(OSError(f"f{i}"))
        clock.advance(5.0)
        assert breaker.allow()
        # a single half-open failure trips again — no fresh threshold
        assert breaker.record_failure(OSError("probe failed")) is True
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_reset_forgets_everything(self):
        breaker, _ = self._breaker()
        for i in range(3):
            breaker.record_failure(OSError(f"f{i}"))
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0
        assert breaker.last_error is None

    def test_to_dict_shape(self):
        breaker, _ = self._breaker()
        breaker.record_failure(OSError("boom"))
        doc = breaker.to_dict()
        assert doc["state"] == "closed"
        assert doc["consecutive_failures"] == 1
        assert doc["failure_threshold"] == 3
        assert "boom" in doc["last_error"]

    def test_rejects_a_zero_threshold(self):
        with pytest.raises(DistError, match="failure_threshold"):
            ShardHealth(failure_threshold=0)


class TestRpcRetry:
    """Transient transport faults on the coordinator's seams must be
    absorbed by the retry loop for idempotent ops, surfaced as the
    typed :class:`RetryableDistError` for mutations."""

    def _db(self, cluster, **kwargs):
        kwargs.setdefault("retry", FAST_RETRY)
        return cluster.database(**kwargs)

    def test_transient_send_fault_is_absorbed(self):
        oracle = ContractDatabase()
        with LocalCluster(3) as cluster, self._db(cluster) as db:
            for i in range(6):
                clauses = ["G (a -> F b)"] if i % 2 else ["G !a"]
                oracle.register(f"c{i}", clauses)
                db.register(f"c{i}", clauses)
            expected = oracle.query("F a")
            faults.fail_at("dist.send", nth=1, times=1,
                           exc=OSError("injected send fault"))
            faults.fail_at("dist.recv", nth=1, times=1,
                           exc=OSError("injected recv fault"))
            try:
                outcome = db.query("F a")
            finally:
                faults.reset()
            # the faulted run answers exactly like the never-failed one
            assert outcome.contract_names == expected.contract_names
            assert not outcome.maybe_names
            assert not outcome.stats.degraded
            assert db.metrics.counter_value("dist.retries") >= 2

    def test_register_under_a_transient_fault_is_typed_not_retried(self):
        with LocalCluster(2) as cluster, self._db(cluster) as db:
            faults.fail_at("dist.send", nth=1, times=1,
                           exc=OSError("injected send fault"))
            try:
                with pytest.raises(RetryableDistError):
                    db.register("alpha", ["F a"])
            finally:
                faults.reset()
            # exactly one fault was armed and it was not auto-retried,
            # so the shard never saw the registration: a verified
            # re-issue must succeed, not collide
            db.register("alpha", ["F a"])
            assert len(db) == 1
            assert db.metrics.counter_value("dist.retries") == 0

    def test_repeated_faults_trip_the_breaker(self):
        with LocalCluster(2) as cluster:
            with self._db(cluster, breaker_threshold=3,
                          breaker_reset_seconds=60.0) as db:
                db.register("alpha", ["F a"])
                faults.fail_at("dist.send", nth=1, times=10 ** 6,
                               exc=OSError("network down"))
                try:
                    outcome = db.query("F a")
                finally:
                    faults.reset()
                # both shards exhausted their retry budgets: every
                # contract degrades to a sound SKIPPED maybe
                assert set(outcome.maybe_names) == {"alpha"}
                assert db.metrics.counter_value("dist.breaker_open") >= 1
                states = {h.state for h in db.coordinator.health}
                assert "open" in states
                # a healed operator closes the breakers and the
                # answer reconverges bit-for-bit
                db.reset_breakers()
                recovered = db.query("F a")
                assert recovered.contract_names == ("alpha",)
                assert not recovered.maybe_names


class TestMergeAllShardsDead:
    """Satellite: the merged outcome when *no* shard answered — the
    worst sound degradation the coordinator can emit."""

    def _coordinator(self):
        coordinator = Coordinator([("127.0.0.1", 1), ("127.0.0.1", 2),
                                   ("127.0.0.1", 3)])
        for cid, (name, shard) in enumerate(
            [("alpha", 0), ("beta", 1), ("gamma", 2),
             ("delta", 0), ("epsilon", 1)], start=1,
        ):
            routed = RoutedContract(cid, name, shard)
            coordinator._catalog[cid] = routed
            coordinator._by_name[name] = cid
        return coordinator

    def test_every_shard_dead_is_all_skipped_maybes(self):
        coordinator = self._coordinator()
        outcome = coordinator._merge(
            "F a", [(0, None), (1, None), (2, None)], QueryOptions()
        )
        assert outcome.contract_names == ()
        assert outcome.maybe_names == (
            "alpha", "beta", "gamma", "delta", "epsilon",
        )
        assert all(v is Verdict.SKIPPED for v in outcome.verdicts.values())
        # every registered contract is still accounted a candidate:
        # nothing silently vanishes from the answer's denominator
        assert outcome.stats.candidates == 5
        assert outcome.stats.skipped == 5
        assert outcome.stats.checked == 0
        assert outcome.stats.degraded

    def test_every_shard_dead_with_drop_policy_is_empty_but_degraded(self):
        coordinator = self._coordinator()
        outcome = coordinator._merge(
            "F a", [(0, None), (1, None), (2, None)],
            QueryOptions(degradation=Degradation.DROP),
        )
        assert outcome.contract_names == ()
        assert outcome.maybe_names == ()
        assert outcome.stats.degraded

    def test_every_shard_dead_with_fail_policy_raises(self):
        # end to end: a cluster whose every shard is unreachable must
        # refuse under Degradation.FAIL, not fabricate an empty answer
        cluster = LocalCluster(2)
        db = cluster.database(retry=FAST_RETRY, rpc_timeout=2.0)
        try:
            db.register("alpha", ["F a"])
            for server in cluster.servers:
                server.stop()
            db._run(db.coordinator.aclose())
            with pytest.raises(QueryBudgetError):
                db.query("F a", QueryOptions(degradation=Degradation.FAIL))
            # and under MAYBE the same cluster degrades soundly
            outcome = db.query("F a")
            assert set(outcome.maybe_names) == {"alpha"}
        finally:
            db.close()
            cluster.stop()


class TestReplicaReadRouting:
    def test_fresh_replica_serves_the_read(self, tmp_path):
        with LocalCluster(1, directory=tmp_path) as cluster:
            with cluster.database() as db:
                for i in range(4):
                    db.register(f"c{i}", ["G (a -> F b)"], {"price": i})
                expected = db.query("F a")
                replica = cluster.replica(0)
                replica.catch_up()
                db.attach_replica(0, replica)
                routed = db.query("F a")
                assert routed.contract_names == expected.contract_names
                assert routed.verdicts == expected.verdicts
                assert db.metrics.counter_value("dist.replica_reads") == 1

    def _lagging_replica(self, cluster, lag_records):
        """A replica whose routed-read poll reports ``lag_records``
        without applying anything — the shape a replica takes when its
        leader's journal outruns what it can verify before the read."""
        from repro.dist.replica import PollReport

        replica = cluster.replica(0)
        replica.catch_up()
        replica.poll = lambda: PollReport(lag_records=lag_records)
        return replica

    def test_stale_replica_falls_back_to_the_leader(self, tmp_path):
        with LocalCluster(1, directory=tmp_path) as cluster:
            with cluster.database() as db:
                db.register("c0", ["F a"])
                replica = self._lagging_replica(cluster, lag_records=2)
                db.attach_replica(0, replica, ReadPreference(
                    max_staleness_records=0,
                ))
                # new writes the lagging replica never applied
                db.register("c1", ["F a"])
                outcome = db.query("F a")
                # the leader answered: both contracts, not the stale one
                assert outcome.contract_names == ("c0", "c1")
                assert db.metrics.counter_value(
                    "dist.replica_read_fallbacks"
                ) == 1
                assert db.metrics.counter_value("dist.replica_reads") == 0

    def test_staleness_bound_admits_a_lagging_replica(self, tmp_path):
        with LocalCluster(1, directory=tmp_path) as cluster:
            with cluster.database() as db:
                db.register("c0", ["F a"])
                replica = self._lagging_replica(cluster, lag_records=2)
                db.attach_replica(0, replica, ReadPreference(
                    max_staleness_records=2,
                ))
                db.register("c1", ["F a"])
                outcome = db.query("F a")
                # two records behind is within the bound: the replica's
                # (stale but honestly stale) answer is served
                assert outcome.contract_names == ("c0",)
                assert db.metrics.counter_value("dist.replica_reads") == 1

    def test_detach_restores_leader_reads(self, tmp_path):
        with LocalCluster(1, directory=tmp_path) as cluster:
            with cluster.database() as db:
                db.register("c0", ["F a"])
                replica = cluster.replica(0)
                replica.catch_up()
                db.attach_replica(0, replica)
                db.detach_replica(0)
                db.query("F a")
                assert db.metrics.counter_value("dist.replica_reads") == 0

    def test_negative_staleness_is_rejected(self):
        with pytest.raises(DistError, match="max_staleness_records"):
            ReadPreference(max_staleness_records=-1)

    def test_attach_to_an_unknown_shard_is_rejected(self, tmp_path):
        with LocalCluster(1, directory=tmp_path) as cluster:
            with cluster.database() as db:
                with pytest.raises(DistError):
                    db.attach_replica(7, cluster.replica(0))


class TestPromotion:
    def _leader(self, tmp_path, contracts=3):
        leader_dir = tmp_path / "leader"
        db = open_database(leader_dir)
        for i in range(contracts):
            db.register(f"c{i}", ["G (a -> F b)"], {"price": i})
        return leader_dir, db

    def test_promotion_bumps_the_epoch_and_roundtrips(self, tmp_path):
        leader_dir, leader = self._leader(tmp_path)
        replica = Replica(leader_dir)
        replica.catch_up()
        leader.journal.close()  # the leader "dies"
        report = replica.promote(tmp_path / "promoted")
        assert report.epoch == 1  # past the dead leader's epoch 0
        assert report.contracts == 3
        assert replica.promoted
        # the promoted directory is a complete, loadable leader whose
        # answers match what the dead leader would have said
        recovered = load_database(tmp_path / "promoted")
        assert sorted(c.name for c in recovered.contracts()) == [
            "c0", "c1", "c2",
        ]
        expected = leader.query("F a")
        got = recovered.query("F a")
        assert got.contract_names == expected.contract_names

    def test_promoted_replica_is_writable(self, tmp_path):
        leader_dir, _ = self._leader(tmp_path)
        replica = Replica(leader_dir)
        replica.catch_up()
        replica.promote(tmp_path / "promoted")
        # local ids survive promotion (global ids stay stable across
        # the coordinator's failover) and new writes journal cleanly
        replica.db.register("fresh", ["F a"])
        assert len(replica.db) == 4

    def test_promotion_refuses_the_leader_directory(self, tmp_path):
        leader_dir, _ = self._leader(tmp_path)
        replica = Replica(leader_dir)
        replica.catch_up()
        with pytest.raises(DistError, match="fresh directory"):
            replica.promote(leader_dir)

    def test_double_promotion_refused(self, tmp_path):
        leader_dir, _ = self._leader(tmp_path)
        replica = Replica(leader_dir)
        replica.catch_up()
        replica.promote(tmp_path / "promoted")
        with pytest.raises(DistError, match="already promoted"):
            replica.promote(tmp_path / "promoted-again")

    def test_poll_after_promotion_refused(self, tmp_path):
        leader_dir, _ = self._leader(tmp_path)
        replica = Replica(leader_dir)
        replica.catch_up()
        replica.promote(tmp_path / "promoted")
        with pytest.raises(DistError, match="leader now"):
            replica.poll()

    def test_stalled_replica_refuses_promotion(self, tmp_path):
        leader_dir, leader = self._leader(tmp_path, contracts=1)
        replica = Replica(leader_dir)
        replica.catch_up()
        # poison the tail: a journal record the replica cannot apply
        # (an unparseable clause) stalls it on a consistent prefix
        leader.journal.append("register", {
            "name": "poison", "clauses": ["((("], "attributes": {},
        })
        report = replica.poll()
        assert replica.stalled, report
        with pytest.raises(DistError, match="stalled"):
            replica.promote(tmp_path / "promoted")

    def test_sibling_replica_resyncs_from_the_promoted_leader(
            self, tmp_path):
        leader_dir, leader = self._leader(tmp_path)
        replica = Replica(leader_dir)
        replica.catch_up()
        leader.journal.close()
        promoted_dir = tmp_path / "promoted"
        replica.promote(promoted_dir)
        # a sibling replica re-pointed at the new leader sees the epoch
        # bump and resyncs from the promoted snapshot
        sibling = Replica(promoted_dir)
        report = sibling.catch_up()
        assert report.resynced
        assert sorted(c.name for c in sibling.db.contracts()) == [
            "c0", "c1", "c2",
        ]
