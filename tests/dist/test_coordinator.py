"""The coordinator: routing, fan-out/merge, and — crucially — how
per-shard degradation surfaces in the merged outcome.

The invariant under test throughout is the single-node one, invariant
15 makes it survive distribution: ``permitted ⊆ exact ⊆ permitted ∪
maybe`` where *exact* is what the single-node oracle answers for the
same contracts and query.
"""

import asyncio

import pytest

from repro.broker.database import ContractDatabase
from repro.broker.options import Degradation, QueryOptions
from repro.broker.query import Verdict
from repro.broker.spec import QuerySpec
from repro.dist import (
    Coordinator,
    DistributedDatabase,
    LocalCluster,
    RoutedContract,
)
from repro.dist.coordinator import RPC_GRACE_SECONDS
from repro.errors import DistError, QueryBudgetError

SPECS = [
    (f"contract-{i}", ["G (a -> F b)"] if i % 2 else ["G !a"], {"price": i * 100})
    for i in range(8)
]


@pytest.fixture
def cluster():
    with LocalCluster(3) as cluster:
        yield cluster


def _populate(db):
    for name, clauses, attributes in SPECS:
        db.register(name, clauses, attributes)


def _oracle():
    db = ContractDatabase()
    _populate(db)
    return db


class TestEndToEnd:
    def test_matches_single_node_oracle(self, cluster):
        oracle = _oracle()
        with cluster.database() as db:
            _populate(db)
            assert len(db) == len(oracle)
            for query in ("F a", "G !a", "F (a & F b)"):
                expected = oracle.query(query)
                got = db.query(query)
                # identical answers in identical (registration) order
                assert got.contract_names == expected.contract_names
                assert got.maybe_names == expected.maybe_names
                assert got.stats.candidates == expected.stats.candidates

    def test_query_many_matches_oracle(self, cluster):
        queries = ["F a", "G (a -> F b)", "F b"]
        oracle = _oracle()
        expected = [o.contract_names for o in oracle.query_many(queries)]
        with cluster.database() as db:
            _populate(db)
            got = db.query_many(queries)
            assert [o.contract_names for o in got] == expected

    def test_attribute_filter_crosses_the_wire(self, cluster):
        oracle = _oracle()
        spec = QuerySpec.from_dict({
            "query": "F a", "filter": [["price", "<=", 300]],
        })
        with cluster.database() as db:
            _populate(db)
            assert (
                db.query(spec).contract_names
                == oracle.query(spec).contract_names
            )

    def test_duplicate_registration_rejected_globally(self, cluster):
        with cluster.database() as db:
            db.register("alpha", ["F a"])
            with pytest.raises(DistError, match="already registered"):
                db.register("alpha", ["F b"])

    def test_deregister_routes_home(self, cluster):
        with cluster.database() as db:
            routed = [db.register(n, c, a) for n, c, a in SPECS[:4]]
            db.deregister(routed[1].contract_id)
            assert len(db) == 3
            with pytest.raises(DistError, match="no contract"):
                db.deregister(routed[1].contract_id)

    def test_ingest_routes_by_contract(self, cluster):
        with cluster.database() as db:
            db.register("alpha", ["G (a -> F b)"])
            db.register("beta", ["G (a -> F b)"])
            report = db.ingest([
                {"contract": "alpha", "events": ["a"]},
                {"contract": "beta", "events": ["a", "b"]},
            ])
            assert report["events"] == 2  # two stream records routed
            assert report["deliveries"] == 2
            with pytest.raises(DistError, match="no contract"):
                db.ingest([{"contract": "ghost", "events": ["a"]}])

    def test_status_spans_the_cluster(self, cluster):
        with cluster.database() as db:
            _populate(db)
            status = db.status()
            assert status["contracts"] == len(SPECS)
            assert len(status["shards"]) == 3
            placed = sorted(
                name for shard in status["shards"]
                for name in shard["names"]
            )
            assert placed == sorted(name for name, _, _ in SPECS)


class TestDegradedMerge:
    """Satellite: one shard down or late must surface exactly as the
    single-node degradation contract demands."""

    def _cluster_with_dead_shard(self):
        cluster = LocalCluster(3)
        db = cluster.database(rpc_timeout=2.0)
        _populate(db)
        dead = cluster.servers[1]
        dead_names = {
            name for name, _, _ in SPECS
            if db.coordinator.router.shard_for(name) == 1
        }
        assert dead_names, "fixture needs contracts on the dead shard"
        dead.stop()
        # drop the persistent connections: the dead shard's accept
        # socket is closed, so the re-dial fails and the degradation
        # path — not a half-open handler thread — answers
        db._run(db.coordinator.aclose())
        return cluster, db, dead_names

    def test_dead_shard_contracts_become_skipped_maybe(self):
        cluster, db, dead_names = self._cluster_with_dead_shard()
        try:
            oracle = _oracle()
            exact = set(oracle.query("F a").contract_names)
            outcome = db.query("F a")

            permitted = set(outcome.contract_names)
            maybe = set(outcome.maybe_names)
            # the single-node degradation invariant, distributed:
            assert permitted <= exact <= permitted | maybe
            # precisely the dead shard's contracts became maybes
            assert maybe == dead_names
            by_name = {
                db.coordinator._catalog[i].name: v
                for i, v in outcome.verdicts.items()
            }
            for name in dead_names:
                assert by_name[name] is Verdict.SKIPPED
            assert outcome.stats.degraded
            assert outcome.stats.skipped >= len(dead_names)
            # every dead-shard contract is counted a candidate (we
            # cannot know which its prefilter would have kept)
            assert (
                outcome.stats.candidates
                == outcome.stats.checked + len(dead_names)
            )
            assert (
                db.metrics.counter_value("dist.merge.skipped_shards") >= 1
            )
        finally:
            db.close()
            cluster.stop()

    def test_dead_shard_with_fail_policy_raises(self):
        # a failed shard under Degradation.FAIL is the same typed
        # refusal a single node gives an exhausted budget
        cluster, db, _ = self._cluster_with_dead_shard()
        try:
            with pytest.raises(QueryBudgetError):
                db.query("F a", QueryOptions(degradation=Degradation.FAIL))
        finally:
            db.close()
            cluster.stop()

    def test_dead_shard_with_drop_policy_drops(self):
        cluster, db, dead_names = self._cluster_with_dead_shard()
        try:
            outcome = db.query(
                "F a", QueryOptions(degradation=Degradation.DROP)
            )
            assert not set(outcome.maybe_names)
            assert set(outcome.contract_names).isdisjoint(dead_names)
            assert outcome.stats.degraded
        finally:
            db.close()
            cluster.stop()


class TestMergeUnit:
    """Direct `_merge` coverage with synthetic shard documents — the
    degradation shapes a live shard can report (TIMED_OUT, SKIPPED)
    plus a completely failed shard, in one outcome."""

    def _coordinator(self):
        coordinator = Coordinator([("127.0.0.1", 1), ("127.0.0.1", 2),
                                   ("127.0.0.1", 3)])
        for cid, (name, shard) in enumerate(
            [("alpha", 0), ("beta", 1), ("gamma", 2),
             ("delta", 0), ("epsilon", 1)], start=1,
        ):
            routed = RoutedContract(cid, name, shard)
            coordinator._catalog[cid] = routed
            coordinator._by_name[name] = cid
        return coordinator

    def test_global_registration_order_restored(self):
        coordinator = self._coordinator()
        outcome = coordinator._merge("F a", [
            (0, {"verdicts": {"alpha": "permitted", "delta": "permitted"},
                 "stats": {"candidates": 2, "checked": 2, "permitted": 2}}),
            (1, {"verdicts": {"beta": "permitted", "epsilon": "not_permitted"},
                 "stats": {"candidates": 2, "checked": 2, "permitted": 1}}),
            (2, {"verdicts": {"gamma": "permitted"},
                 "stats": {"candidates": 1, "checked": 1, "permitted": 1}}),
        ], QueryOptions())
        # ascending global id, regardless of shard arrival order
        assert outcome.contract_names == ("alpha", "beta", "gamma", "delta")
        assert outcome.contract_ids == (1, 2, 3, 4)
        assert outcome.stats.candidates == 5
        assert outcome.stats.permitted == 4
        assert not outcome.stats.degraded

    def test_timed_out_on_a_live_shard_becomes_maybe(self):
        coordinator = self._coordinator()
        outcome = coordinator._merge("F a", [
            (0, {"verdicts": {"alpha": "permitted", "delta": "timed_out"},
                 "stats": {"candidates": 2, "checked": 2, "permitted": 1,
                           "timed_out": 1, "degraded": True}}),
            (1, {"verdicts": {"beta": "skipped"},
                 "stats": {"candidates": 1, "skipped": 1, "degraded": True}}),
            (2, {"verdicts": {}, "stats": {}}),
        ], QueryOptions())
        assert outcome.contract_names == ("alpha",)
        assert outcome.maybe_names == ("beta", "delta")
        assert outcome.verdicts[4] is Verdict.TIMED_OUT
        assert outcome.verdicts[2] is Verdict.SKIPPED
        assert outcome.stats.timed_out == 1
        assert outcome.stats.degraded

    def test_failed_shard_merges_with_live_degradation(self):
        coordinator = self._coordinator()
        outcome = coordinator._merge("F a", [
            (0, {"verdicts": {"alpha": "permitted", "delta": "timed_out"},
                 "stats": {"candidates": 2, "checked": 2, "permitted": 1,
                           "timed_out": 1, "degraded": True}}),
            (1, None),  # shard 1 never answered
            (2, {"verdicts": {"gamma": "permitted"},
                 "stats": {"candidates": 1, "checked": 1, "permitted": 1}}),
        ], QueryOptions())
        assert outcome.contract_names == ("alpha", "gamma")
        # maybes in ascending global-id order even across sources
        assert outcome.maybe_ids == (2, 4, 5)
        assert outcome.maybe_names == ("beta", "delta", "epsilon")
        assert outcome.verdicts[2] is Verdict.SKIPPED
        assert outcome.verdicts[5] is Verdict.SKIPPED
        # failed-shard contracts count as candidates and skipped
        assert outcome.stats.candidates == 5
        assert outcome.stats.skipped == 2
        assert outcome.stats.degraded

    def test_permission_time_is_critical_path_not_sum(self):
        coordinator = self._coordinator()
        outcome = coordinator._merge("F a", [
            (0, {"verdicts": {}, "stats": {"permission_seconds": 0.5,
                                           "total_seconds": 0.6}}),
            (1, {"verdicts": {}, "stats": {"permission_seconds": 0.2,
                                           "total_seconds": 0.3}}),
            (2, {"verdicts": {}, "stats": {"permission_seconds": 0.1,
                                           "total_seconds": 0.2}}),
        ], QueryOptions())
        assert outcome.stats.permission_seconds == 0.5
        assert outcome.stats.total_seconds == 0.6


class TestDeadlinePropagation:
    def test_shards_get_the_remaining_budget(self):
        coordinator = Coordinator([("127.0.0.1", 1), ("127.0.0.1", 2)])
        coordinator._catalog[1] = RoutedContract(1, "alpha", 0)
        coordinator._by_name["alpha"] = 1
        calls = []

        async def fake_call(shard, doc, *, timeout=None, deadline=None):
            calls.append((shard, doc, timeout))
            return {"ok": True, "outcomes": [{"verdicts": {}, "stats": {}}]}

        coordinator._call = fake_call
        asyncio.run(coordinator.query_many(
            ["F a"], QueryOptions(deadline_seconds=10.0)
        ))
        assert len(calls) == 2
        for _, doc, timeout in calls:
            shipped = doc["options"]["deadline_seconds"]
            # the shard gets what is left of the budget, not more
            assert 0.0 < shipped <= 10.0
            assert timeout == pytest.approx(shipped + RPC_GRACE_SECONDS)

    def test_rejects_non_distributable_options(self):
        coordinator = Coordinator([("127.0.0.1", 1)])
        with pytest.raises(DistError):
            asyncio.run(coordinator.query_many(
                ["F a"], QueryOptions(explain=True)
            ))


class TestClientSurface:
    def test_single_query_string_rejected_by_query_many(self, cluster):
        with cluster.database() as db:
            with pytest.raises(DistError, match="sequence"):
                db.query_many("F a")

    def test_empty_cluster_rejected(self):
        with pytest.raises(DistError, match="at least one shard"):
            DistributedDatabase([])

    def test_close_is_idempotent(self, cluster):
        db = cluster.database()
        db.close()
        db.close()
