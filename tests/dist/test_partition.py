"""Shard placement: stable across processes and hash seeds, minimal
movement under rebalancing."""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.partition import ShardRouter, jump_hash, stable_key
from repro.errors import ReproError

#: Pinned placements: if any of these move, every deployed cluster's
#: routing table silently breaks — they may only change together with
#: an explicit migration story.
PINNED = {
    ("alpha", 3): 2,
    ("beta", 3): 0,
    ("gamma", 3): 0,
    ("contract-0", 5): 0,
    ("contract-1", 5): 0,
    ("contract-2", 5): 4,
    ("", 7): 5,
    ("airfare-SAN-NYC", 4): 1,
}


class TestStableKey:
    def test_pinned_placements(self):
        for (name, shards), expected in PINNED.items():
            assert ShardRouter(shards).shard_for(name) == expected

    def test_key_is_sha256_derived(self):
        # independent of PYTHONHASHSEED by construction: the key comes
        # from the digest, not from hash()
        assert stable_key("alpha") == int.from_bytes(
            __import__("hashlib").sha256(b"alpha").digest()[:8], "big"
        )

    def test_distinct_names_distinct_keys(self):
        keys = {stable_key(f"c{i}") for i in range(1000)}
        assert len(keys) == 1000

    def test_deterministic_across_hash_seeds(self):
        """The placement function must not depend on the interpreter's
        per-process string-hash salt: run the same placements in
        subprocesses with different PYTHONHASHSEED values."""
        program = (
            "from repro.dist.partition import ShardRouter\n"
            "r = ShardRouter(5)\n"
            "print(','.join(str(r.shard_for(f'c{i}')) for i in range(50)))\n"
        )
        outputs = set()
        for seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (env.get("PYTHONPATH"), "src") if p
            )
            result = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True, text=True, env=env, check=True,
                cwd=os.path.dirname(os.path.dirname(
                    os.path.dirname(os.path.abspath(__file__))
                )),
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1, f"placement varied with hash seed: {outputs}"

    @given(st.text(max_size=50))
    @settings(max_examples=200, deadline=None)
    def test_in_process_determinism(self, name):
        router = ShardRouter(4)
        assert router.shard_for(name) == router.shard_for(name)


class TestJumpHash:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=300, deadline=None)
    def test_in_range(self, key, buckets):
        assert 0 <= jump_hash(key, buckets) < buckets

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=100, deadline=None)
    def test_single_bucket(self, key):
        assert jump_hash(key, 1) == 0

    def test_rejects_no_buckets(self):
        with pytest.raises(ReproError):
            jump_hash(7, 0)


class TestRebalance:
    """Growing N → N+1 shards must move only keys that land on the new
    shard — never between two pre-existing shards — and only about
    1/(N+1) of them (the jump-consistent-hash contract)."""

    @given(st.integers(min_value=1, max_value=9))
    @settings(max_examples=9, deadline=None)
    def test_moves_only_to_the_new_shard(self, shards):
        names = [f"contract-{i}" for i in range(400)]
        before = ShardRouter(shards)
        after = ShardRouter(shards + 1)
        moved = 0
        for name in names:
            old, new = before.shard_for(name), after.shard_for(name)
            if old != new:
                moved += 1
                assert new == shards, (
                    f"{name!r} moved {old}->{new}, not to the new shard"
                )
        expected = len(names) / (shards + 1)
        # generous tolerance: binomial noise on 400 draws
        assert moved <= expected * 2 + 10
        assert moved >= expected * 0.3 - 5

    def test_partition_is_a_partition(self):
        router = ShardRouter(3)
        names = [f"c{i}" for i in range(120)]
        parts = router.partition(names)
        assert sorted(n for p in parts for n in p) == sorted(names)
        for shard, part in enumerate(parts):
            for name in part:
                assert router.shard_for(name) == shard
        # hash placement balances within reason
        assert all(len(p) > 0 for p in parts)

    def test_router_rejects_nonpositive_shards(self):
        with pytest.raises(ReproError):
            ShardRouter(0)
        with pytest.raises(ReproError):
            ShardRouter(-2)
