"""One shard behind a socket: dispatch, persistence, error surfaces."""

import pytest

from repro.broker.journal import open_database
from repro.dist.server import SHARD_OPS, ShardClient, ShardServer
from repro.errors import DistError


@pytest.fixture
def shard():
    server = ShardServer(0)
    yield server
    server.stop()


def _register(server, name, clauses, attributes=None):
    response = server.handle_request({
        "op": "register", "name": name, "clauses": clauses,
        "attributes": attributes or {},
    })
    assert response["ok"], response
    return response


class TestDispatch:
    def test_ping(self, shard):
        assert shard.handle_request({"op": "ping"}) == {
            "ok": True, "pong": True, "shard_id": 0,
        }

    def test_unknown_op_is_an_error_response(self, shard):
        response = shard.handle_request({"op": "explode"})
        assert response["ok"] is False
        assert "unknown op" in response["error"]

    def test_malformed_request_is_an_error_response(self, shard):
        # missing required keys must not crash the server loop
        response = shard.handle_request({"op": "register"})
        assert response["ok"] is False
        assert response["kind"] == "ProtocolError"

    def test_register_query_deregister(self, shard):
        _register(shard, "alpha", ["G (a -> F b)"])
        _register(shard, "beta", ["G !a"])
        request = {
            "op": "query", "query": "F a",
            # prefilter off so beta is a candidate and gets a verdict
            "options": {"use_prefilter": False},
        }
        response = shard.handle_request(request)
        assert response["ok"]
        outcome = response["outcome"]
        assert outcome["permitted"] == ["alpha"]
        assert outcome["verdicts"]["beta"] == "not_permitted"

        assert shard.handle_request(
            {"op": "deregister", "name": "beta"}
        )["ok"]
        response = shard.handle_request(request)
        assert set(response["outcome"]["verdicts"]) == {"alpha"}

    def test_duplicate_register_rejected(self, shard):
        _register(shard, "alpha", ["F a"])
        response = shard.handle_request({
            "op": "register", "name": "alpha", "clauses": ["F b"],
            "attributes": {},
        })
        assert response["ok"] is False
        assert "already holds" in response["error"]

    def test_deregister_unknown_rejected(self, shard):
        response = shard.handle_request({"op": "deregister", "name": "ghost"})
        assert response["ok"] is False
        assert "no contract" in response["error"]

    def test_query_with_attribute_filter(self, shard):
        _register(shard, "cheap", ["F a"], {"price": 100})
        _register(shard, "pricey", ["F a"], {"price": 900})
        response = shard.handle_request({
            "op": "query", "query": "F a",
            "filter": [["price", "<=", 500]],
        })
        assert response["outcome"]["permitted"] == ["cheap"]

    def test_query_many(self, shard):
        _register(shard, "alpha", ["G (a -> F b)"])
        response = shard.handle_request({
            "op": "query_many", "queries": ["F a", "G !a"],
        })
        assert response["ok"]
        assert len(response["outcomes"]) == 2

    def test_status_reports_names_and_counters(self, shard):
        _register(shard, "alpha", ["F a"])
        status = shard.handle_request({"op": "status"})
        assert status["shard_id"] == 0
        assert status["contracts"] == 1
        assert status["names"] == ["alpha"]
        assert status["journal"] is None
        assert status["metrics"]["dist.shard.ops.register"] == 1

    def test_save_without_directory_rejected(self, shard):
        response = shard.handle_request({"op": "save"})
        assert response["ok"] is False
        assert "memory-only" in response["error"]


class TestPersistence:
    def test_journaled_shard_survives_restart(self, tmp_path):
        server = ShardServer(2, directory=tmp_path)
        try:
            _register(server, "alpha", ["F a"], {"price": 10})
            status = server.handle_request({"op": "status"})
            assert status["journal"]["records"] >= 1
        finally:
            server.stop()

        reborn = ShardServer(2, directory=tmp_path)
        try:
            status = reborn.handle_request({"op": "status"})
            assert status["names"] == ["alpha"]
            # local ids were recovered: the name stays addressable
            assert reborn.handle_request(
                {"op": "deregister", "name": "alpha"}
            )["ok"]
        finally:
            reborn.stop()

    def test_save_bumps_epoch(self, tmp_path):
        server = ShardServer(0, directory=tmp_path)
        try:
            _register(server, "alpha", ["F a"])
            before = server.handle_request({"op": "status"})
            response = server.handle_request({"op": "save"})
            assert response["ok"]
            assert response["epoch"] == before["journal"]["epoch"] + 1
        finally:
            server.stop()

        db = open_database(tmp_path)
        try:
            assert len(db) == 1
        finally:
            db.journal.close()


class TestSocketSurface:
    def test_client_round_trip(self):
        server = ShardServer(1).start()
        try:
            with ShardClient(*server.address) as client:
                assert client.request({"op": "ping"})["shard_id"] == 1
                client.request({
                    "op": "register", "name": "alpha",
                    "clauses": ["F a"], "attributes": {},
                })
                outcome = client.request(
                    {"op": "query", "query": "F a"}
                )["outcome"]
                assert outcome["permitted"] == ["alpha"]
        finally:
            server.stop()

    def test_error_response_raises_dist_error(self):
        server = ShardServer(1).start()
        try:
            with ShardClient(*server.address) as client:
                with pytest.raises(DistError, match="rejected"):
                    client.request({"op": "deregister", "name": "ghost"})
                # the connection survives an application-level error
                assert client.request({"op": "ping"})["pong"]
        finally:
            server.stop()

    def test_client_rejects_unreachable_shard(self):
        with pytest.raises(DistError, match="cannot reach"):
            ShardClient("127.0.0.1", 1, timeout=0.5)

    def test_address_requires_serving(self):
        server = ShardServer(0)
        with pytest.raises(DistError):
            server.address

    def test_shard_ops_is_the_full_surface(self, shard):
        for op in SHARD_OPS:
            assert hasattr(shard, f"_op_{op}")
