"""Unit tests for label projections (Definition 8 / Theorem 7 setup)."""

from repro.automata.buchi import BuchiAutomaton
from repro.automata.labels import TRUE_LABEL, neg, pos
from repro.projection.project import project, required_literals


class TestProject:
    def test_keeps_only_given_literals(self):
        ba = BuchiAutomaton.make(
            0, [(0, "a & !d", 1), (1, "!d & c", 1)], final=[1]
        )
        projected = project(ba, [neg("d")])
        labels = {str(label) for label in projected.labels()}
        assert labels == {"!d"}

    def test_projection_on_everything_is_identity(self):
        ba = BuchiAutomaton.make(
            0, [(0, "a & !d", 1), (1, "true", 1)], final=[1]
        )
        assert project(ba, ba.literals()) == ba

    def test_projection_on_nothing_blanks_labels(self):
        ba = BuchiAutomaton.make(0, [(0, "a", 1), (1, "b", 1)], final=[1])
        projected = project(ba, [])
        assert all(label == TRUE_LABEL for label in projected.labels())

    def test_merges_newly_equal_transitions(self):
        ba = BuchiAutomaton.make(
            0, [(0, "a & x", 1), (0, "a & y", 1)], final=[1]
        )
        projected = project(ba, [pos("a")])
        assert projected.num_transitions == 1

    def test_states_and_finals_untouched(self):
        ba = BuchiAutomaton.make(
            0, [(0, "a", 1), (1, "b", 2), (2, "true", 2)], final=[2]
        )
        projected = project(ba, [pos("a")])
        assert projected.states == ba.states
        assert projected.final == ba.final
        assert projected.initial == ba.initial

    def test_figure_4a_shape(self):
        """Projecting Figure 2b's round-trip ticket onto !dateChange makes
        previously distinct labels collapse to !d / true."""
        ba = BuchiAutomaton.make(
            "init",
            [
                ("init", "purchase & !dateChange", "s2"),
                ("s2", "dateChange", "s2b"),
                ("s2b", "useFirst & !dateChange", "s4"),
                ("s2", "useFirst & !dateChange", "s4"),
                ("s4", "useSecond & !dateChange", "s6"),
                ("s4", "askRefund & !dateChange", "s5"),
                ("s5", "refund & !dateChange", "s6"),
                ("s6", "!dateChange", "s6"),
            ],
            final=["s6"],
        )
        projected = project(ba, [neg("dateChange")])
        labels = {str(label) for label in projected.labels()}
        assert labels == {"!dateChange", "true"}


class TestRequiredLiterals:
    def test_negations_intersected_with_contract(self):
        contract_literals = frozenset([neg("a"), pos("b"), neg("c")])
        query_literals = [pos("a"), pos("c"), pos("z")]
        assert required_literals(query_literals, contract_literals) == {
            neg("a"), neg("c")
        }

    def test_uncited_negations_dropped(self):
        contract_literals = frozenset([pos("b")])
        assert required_literals([pos("a")], contract_literals) == frozenset()

    def test_polarity_matters(self):
        contract_literals = frozenset([pos("a")])
        # query literal !a needs contract literal a
        assert required_literals([neg("a")], contract_literals) == {pos("a")}
        # query literal a needs contract literal !a, which is not cited
        assert required_literals([pos("a")], contract_literals) == frozenset()
