"""Tests for workload-guided projection precomputation (§5.2)."""

from hypothesis import given, settings

from repro.automata.ltl2ba import translate
from repro.broker.database import BrokerConfig, ContractDatabase
from repro.core.permission import permits
from repro.ltl.parser import parse
from repro.projection.project import (
    required_literals,
    workload_projection_subsets,
)
from repro.projection.store import ProjectionStore

from ..strategies import formulas


class TestWorkloadSubsets:
    def test_one_subset_per_query(self):
        contract = translate(parse("G(a -> !b) && G(c -> !d)"))
        queries = [translate(parse("F b")), translate(parse("F(b && F d)"))]
        subsets = workload_projection_subsets(
            contract.literals(), [q.literals() for q in queries]
        )
        assert subsets == {
            required_literals(q.literals(), contract.literals())
            for q in queries
        }


class TestPrecompute:
    def test_precompute_adds_requested_subsets(self):
        contract = translate(parse("G(a -> !b) && G(c -> !d) && G(e -> !f)"))
        store = ProjectionStore(contract, max_subset_size=0)
        query = translate(parse("F(b && F(d && F f))"))
        needed = required_literals(query.literals(), store.literals)
        assert len(needed) > 0
        assert not store.has_subset(needed)
        added = store.precompute([needed])
        assert added == 1
        assert store.has_subset(needed)

    def test_precompute_is_idempotent(self):
        contract = translate(parse("G(a -> !b)"))
        store = ProjectionStore(contract, max_subset_size=1)
        query = translate(parse("F b"))
        needed = required_literals(query.literals(), store.literals)
        store.precompute([needed])
        assert store.precompute([needed]) == 0

    def test_precomputed_projection_serves_query(self):
        """After precompute, select() no longer falls back to the full BA
        for a query beyond the lattice cap."""
        contract = translate(parse("G(a -> !b) && G(c -> !d) && F e"))
        store_capped = ProjectionStore(contract, max_subset_size=0)
        query = translate(parse("F(b && F d)"))
        fallback = store_capped.select(query.literals())
        assert fallback is contract

        needed = required_literals(query.literals(), store_capped.literals)
        store_capped.precompute([needed])
        selected = store_capped.select(query.literals())
        assert selected.num_states <= contract.num_states

    @given(formulas(max_depth=3), formulas(max_depth=3))
    @settings(max_examples=50, deadline=None)
    def test_precomputed_projections_preserve_permission(
        self, contract_formula, query_formula
    ):
        contract = translate(contract_formula)
        vocabulary = contract_formula.variables()
        store = ProjectionStore(contract, max_subset_size=0)
        query = translate(query_formula)
        store.precompute(
            workload_projection_subsets(store.literals, [query.literals()])
        )
        selected = store.select(query.literals())
        assert permits(selected, query, vocabulary) == permits(
            contract, query, vocabulary
        )


class TestBrokerIntegration:
    def test_precompute_for_workload(self):
        db = ContractDatabase(BrokerConfig(projection_subset_cap=0))
        db.register("a", ["G(a -> !b)", "G(c -> !d)"])
        db.register("b", ["G(!b)", "F(a && c)"])
        queries = ["F(b && F d)", "F b"]
        added = db.precompute_for_workload(queries)
        assert added > 0
        # results unchanged, of course
        for query in queries:
            with_projections = db.query(query, use_projections=True)
            without = db.query(query, use_projections=False)
            assert with_projections.contract_ids == without.contract_ids

    def test_precompute_noop_without_projections(self):
        db = ContractDatabase(BrokerConfig(use_projections=False))
        db.register("a", "G a")
        assert db.precompute_for_workload(["F a"]) == 0
