"""Tests for the projection store, centered on the Theorem 9 property:
checking permission on the selected simplified automaton gives the same
verdict as on the full contract BA."""

import pytest
from hypothesis import given, settings

from repro.automata.ltl2ba import translate
from repro.core.permission import permits
from repro.errors import ProjectionError
from repro.projection.project import project
from repro.projection.store import ProjectionStore
from repro.ltl.parser import parse

from ..strategies import formulas


class TestBuild:
    def test_subset_count_with_cap(self):
        ba = translate(parse("G(a -> !b)"))
        store = ProjectionStore(ba, max_subset_size=1)
        literals = ba.literals()
        assert store.num_subsets == 1 + len(literals)

    def test_all_subsets_without_cap(self):
        ba = translate(parse("G a"))
        store = ProjectionStore(ba, max_subset_size=None)
        assert store.num_subsets == 2 ** len(ba.literals())

    def test_partitions_deduplicated(self):
        ba = translate(parse("G(a -> F b)"))
        store = ProjectionStore(ba, max_subset_size=2)
        assert store.num_distinct_partitions <= store.num_subsets

    def test_stats_populated(self):
        ba = translate(parse("G(a -> F b)"))
        store = ProjectionStore(ba, max_subset_size=2)
        assert store.stats.subsets_considered == store.num_subsets
        assert store.stats.partitions_computed == store.num_subsets
        assert store.stats.distinct_partitions == store.num_distinct_partitions
        assert store.stats.build_seconds >= 0.0

    def test_partition_for_known_subset(self):
        ba = translate(parse("G a"))
        store = ProjectionStore(ba, max_subset_size=None)
        blocks = store.partition_for(frozenset())
        assert sum(len(b) for b in blocks) == ba.num_states

    def test_partition_for_unknown_subset_raises(self):
        ba = translate(parse("G a"))
        store = ProjectionStore(ba, max_subset_size=0)
        from repro.automata.labels import pos

        with pytest.raises(ProjectionError):
            store.partition_for(frozenset([pos("zzz")]))

    def test_storage_estimate_positive(self):
        ba = translate(parse("G(a -> F b)"))
        store = ProjectionStore(ba, max_subset_size=2)
        assert store.storage_estimate() > 0


class TestSelect:
    def test_full_ba_when_requirements_exceed_cap(self):
        ba = translate(parse("G(a -> !b) && G(c -> !d)"))
        store = ProjectionStore(ba, max_subset_size=0)
        query = translate(parse("F(a && F(b && F(c && F d)))"))
        assert store.select(query.literals()) is ba

    def test_simplified_smaller_or_equal(self):
        ba = translate(parse("G(a -> !b) && F c"))
        store = ProjectionStore(ba, max_subset_size=2)
        query = translate(parse("F b"))
        selected = store.select(query.literals())
        assert selected.num_states <= ba.num_states

    def test_select_caches_materializations(self):
        ba = translate(parse("G(a -> !b) && F c"))
        store = ProjectionStore(ba, max_subset_size=2)
        query = translate(parse("F b"))
        first = store.select(query.literals())
        second = store.select(query.literals())
        assert first is second or first == second


class TestTheorem9:
    """Permission on the selected projection == permission on the full BA."""

    def test_airfare_queries(self, airfare_contracts):
        queries = [
            "F(missedFlight && F refund)",
            "F(dateChange && X F dateChange)",
            "F refund",
            "G !dateChange",
        ]
        for contract in airfare_contracts.values():
            store = ProjectionStore(contract.ba, max_subset_size=2)
            for text in queries:
                q = translate(parse(text))
                selected = store.select(q.literals())
                assert permits(selected, q, contract.vocabulary) == permits(
                    contract.ba, q, contract.vocabulary
                ), (contract.name, text)

    @given(formulas(max_depth=3), formulas(max_depth=3))
    @settings(max_examples=60, deadline=None)
    def test_random_contracts_and_queries(self, contract_formula, query_formula):
        ba = translate(contract_formula)
        vocabulary = contract_formula.variables()
        store = ProjectionStore(ba, max_subset_size=2)
        q = translate(query_formula)
        selected = store.select(q.literals())
        assert permits(selected, q, vocabulary) == permits(
            ba, q, vocabulary
        )

    @given(formulas(max_depth=3), formulas(max_depth=3))
    @settings(max_examples=40, deadline=None)
    def test_uncapped_store_agrees(self, contract_formula, query_formula):
        ba = translate(contract_formula)
        if len(ba.literals()) > 6:
            return  # keep the uncapped lattice small
        vocabulary = contract_formula.variables()
        store = ProjectionStore(ba, max_subset_size=None)
        q = translate(query_formula)
        selected = store.select(q.literals())
        assert permits(selected, q, vocabulary) == permits(
            ba, q, vocabulary
        )


class TestTheorem3Consistency:
    """Seeded lattice traversal must give the same partitions as direct
    computation for every subset."""

    def test_against_direct_bisimulation(self):
        from repro.automata.bisim import (
            bisimulation_partition,
            partition_signature,
        )

        ba = translate(parse("G(a -> F b) && G(c -> !a)"))
        store = ProjectionStore(ba, max_subset_size=2)
        from itertools import combinations

        for size in range(0, 3):
            for subset in combinations(sorted(ba.literals()), size):
                direct = bisimulation_partition(project(ba, subset))
                stored_blocks = store.partition_for(frozenset(subset))
                assert frozenset(stored_blocks) == partition_signature(direct)


class TestSerialization:
    def _store(self):
        ba = translate(parse("G(a -> F b) && G(c -> !a)")).canonical()
        return ba, ProjectionStore(ba, max_subset_size=2)

    def test_round_trip_preserves_partitions(self):
        import json

        ba, store = self._store()
        doc = json.loads(json.dumps(store.to_dict()))
        restored = ProjectionStore.from_dict(ba, doc)
        assert restored.num_subsets == store.num_subsets
        assert restored.num_distinct_partitions == (
            store.num_distinct_partitions
        )
        from itertools import combinations

        for size in range(0, 3):
            for subset in combinations(sorted(ba.literals()), size):
                assert restored.partition_for(
                    frozenset(subset)
                ) == store.partition_for(frozenset(subset))

    def test_round_trip_select_agrees(self):
        ba, store = self._store()
        restored = ProjectionStore.from_dict(ba, store.to_dict())
        q = translate(parse("F b"))
        assert restored.select(q.literals()).num_states == (
            store.select(q.literals()).num_states
        )

    def test_from_dict_rejects_foreign_states(self):
        ba, store = self._store()
        doc = store.to_dict()
        doc["partitions"][0] = [[999, 0]]
        with pytest.raises(ProjectionError):
            ProjectionStore.from_dict(ba, doc)

    def test_from_dict_rejects_unknown_subset_literals(self):
        ba, store = self._store()
        doc = store.to_dict()
        doc["subsets"].append({"literals": ["zzz"], "partition": 0})
        with pytest.raises(ProjectionError):
            ProjectionStore.from_dict(ba, doc)
