"""Table 2: dataset statistics.

Regenerates the paper's dataset-statistics table (sizes, pattern counts,
BA state/transition averages and standard deviations) for the six
generated datasets, and prints the paper's reported values next to ours
for shape comparison.  Absolute values differ because our translator is
not byte-identical to LTL2BA and the scaled datasets are smaller; the
ordering simple < medium < complex is the reproduced shape.
"""

from repro.bench.reporting import format_table, write_report
from repro.workload.datasets import dataset_statistics

#: The paper's Table 2, for side-by-side reference.
PAPER_TABLE2 = {
    "Simple contracts": (3000, 5, 31.00, 34.73, 628.71, 1253.37),
    "Medium contracts": (1000, 6, 41.82, 43.23, 964.69, 1628.66),
    "Complex contracts": (1000, 7, 50.85, 47.5, 1291.63, 1904.82),
    "Simple queries": (100, 1, 2.31, 1.41, 5.2, 5.4),
    "Medium queries": (100, 2, 5.44, 4.81, 23.86, 33.18),
    "Complex queries": (100, 3, 9.6, 11.11, 92.84, 203.42),
}

ORDER = [
    "simple_contracts", "medium_contracts", "complex_contracts",
    "simple_queries", "medium_queries", "complex_queries",
]


def test_table2_statistics(benchmark, results_dir, datasets, bench_sizes):
    sample = bench_sizes["table2_sample"]

    def experiment():
        return {
            key: dataset_statistics(datasets[key], sample_size=sample)
            for key in ORDER
        }

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for key in ORDER:
        stats = measured[key]
        paper = PAPER_TABLE2[stats.name]
        rows.append(stats.row() + (
            f"(paper: {paper[2]} / {paper[4]})",
        ))
    report = format_table(
        ["dataset", "size", "#patterns", "states avg", "states stdev",
         "trans avg", "trans stdev", "paper states/trans avg"],
        rows,
        title="Table 2 - dataset statistics",
    )
    write_report(results_dir / "table2.txt", report)

    # Shape assertions: complexity must grow monotonically within each
    # family, as it does in the paper's table.
    contracts = [measured[k] for k in ORDER[:3]]
    queries = [measured[k] for k in ORDER[3:]]
    assert (
        contracts[0].transitions_avg
        < contracts[1].transitions_avg
        < contracts[2].transitions_avg
    )
    assert (
        queries[0].states_avg <= queries[1].states_avg <= queries[2].states_avg
    )


def test_benchmark_contract_translation(benchmark, datasets):
    """The per-contract registration conversion the statistics rest on."""
    from repro.automata.ltl2ba import translate
    from repro.ltl.ast import conj

    specs = datasets["simple_contracts"].generate(5)
    formulas = [conj(s.clauses) for s in specs]

    def translate_batch():
        return [translate(f) for f in formulas]

    automata = benchmark(translate_batch)
    assert len(automata) == 5
