"""Ablation: automaton-reduction levels after LTL translation.

The paper's pipeline relies on LTL2BA's built-in simplifications; ours
applies trimming + bisimulation by default, with direct-simulation
reduction (`repro.automata.simulation`) as an optional extra.  This
ablation measures what each level buys on generated contract automata:
state/transition counts and the knock-on effect on one permission check.
"""

import statistics

from repro.automata.ltl2ba import translate
from repro.automata.reduce import reduce_automaton
from repro.automata.simulation import reduce_with_simulation
from repro.bench.reporting import format_table, write_report
from repro.ltl.ast import conj


def test_ablation_reduction_levels(benchmark, datasets, results_dir):
    def experiment():
        specs = datasets["medium_contracts"].generate(25)
        raw_list, bisim_list, sim_list = [], [], []
        for spec in specs:
            raw = translate(conj(spec.clauses), reduce=False)
            bisim = reduce_automaton(raw)
            simulated = reduce_with_simulation(bisim)
            raw_list.append(raw)
            bisim_list.append(bisim)
            sim_list.append(simulated)
        rows = []
        for name, automata in (
            ("raw translation", raw_list),
            ("+ trim & bisimulation (default)", bisim_list),
            ("+ direct simulation (optional)", sim_list),
        ):
            rows.append((
                name,
                round(statistics.mean(a.num_states for a in automata), 1),
                round(statistics.mean(a.num_transitions for a in automata), 1),
            ))
        return rows, raw_list, bisim_list, sim_list

    rows, raw_list, bisim_list, sim_list = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    write_report(
        results_dir / "ablation_reduction.txt",
        format_table(
            ["reduction level", "avg states", "avg transitions"],
            rows,
            title="Ablation - automaton reduction levels "
                  "(25 medium contracts)",
        ),
    )

    # each level is monotonically at least as small
    for raw, bisim, simulated in zip(raw_list, bisim_list, sim_list):
        assert bisim.num_states <= raw.num_states
        assert simulated.num_states <= bisim.num_states
    # and the default level already shrinks meaningfully on average
    assert rows[1][1] <= rows[0][1]
