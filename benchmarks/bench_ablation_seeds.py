"""Ablation: the seeds optimization of §6.2.4.

Algorithm 2 starts a nested cycle search at every product pair whose
query state is final; the seed precomputation skips pairs whose contract
state cannot lie on an accepting cycle.  This ablation measures the
nested-search work saved and the wall-clock effect on a batch of
permission checks.
"""

import statistics

from repro.automata.ltl2ba import translate
from repro.bench.reporting import format_table, write_report
from repro.core.permission import PermissionStats, permits_ndfs
from repro.core.seeds import compute_seeds
from repro.ltl.ast import conj


def _prepare(datasets, n_contracts: int = 20, n_queries: int = 6):
    contracts = []
    for spec in datasets["medium_contracts"].generate(n_contracts):
        formula = conj(spec.clauses)
        ba = translate(formula)
        contracts.append((ba, formula.variables(), compute_seeds(ba)))
    queries = [
        translate(conj(spec.clauses))
        for spec in datasets["medium_queries"].generate(n_queries)
    ]
    return contracts, queries


def test_ablation_seeds(benchmark, datasets, results_dir):
    contracts, queries = _prepare(datasets)

    def run(use_seeds: bool):
        import time

        searches = 0
        skipped = 0
        start = time.perf_counter()
        for ba, vocabulary, seeds in contracts:
            for query in queries:
                stats = PermissionStats()
                permits_ndfs(
                    ba, query, vocabulary,
                    seeds=seeds if use_seeds else None,
                    use_seeds=use_seeds, stats=stats,
                )
                searches += stats.cycle_searches
                skipped += stats.seeds_skipped
        return time.perf_counter() - start, searches, skipped

    def experiment():
        return {"on": run(True), "off": run(False)}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    (time_on, searches_on, skipped_on) = results["on"]
    (time_off, searches_off, _) = results["off"]

    write_report(
        results_dir / "ablation_seeds.txt",
        format_table(
            ["seeds", "total time (ms)", "cycle searches", "seeds skipped"],
            [
                ("on", round(time_on * 1000, 1), searches_on, skipped_on),
                ("off", round(time_off * 1000, 1), searches_off, 0),
            ],
            title="Ablation - the seeds optimization (§6.2.4)",
        ),
    )

    # seeds can only skip doomed searches, never add them
    assert searches_on <= searches_off

    # results agree either way (also covered by property tests)
    for ba, vocabulary, seeds in contracts[:5]:
        for query in queries[:3]:
            assert permits_ndfs(
                ba, query, vocabulary, seeds=seeds, use_seeds=True
            ) == permits_ndfs(ba, query, vocabulary, use_seeds=False)
