"""Realistic-corpus benchmark (not a paper figure).

Registers the curated multi-domain contract corpus and answers every
customer question, with and without the optimizations — a
regression-guard for end-to-end latency on hand-written (rather than
synthetic) contracts, and a check that the optimizations help on
realistic clause structure too.
"""

import statistics

from repro.bench.reporting import format_table, write_report
from repro.broker.database import BrokerConfig, ContractDatabase
from repro.broker.options import QueryOptions
from repro.workload.corpus import all_domains


def test_corpus_end_to_end(benchmark, results_dir):
    def experiment():
        rows = []
        for domain in all_domains():
            db = ContractDatabase(BrokerConfig(),
                                  vocabulary=domain.vocabulary)
            for spec in domain.contracts:
                db.register(spec)
            # warm projections
            for ltl, _ in domain.questions.values():
                db.query(ltl)
            scan_times, fast_times = [], []
            for question, (ltl, expected) in domain.questions.items():
                scan = db.query(ltl, QueryOptions(
                    use_prefilter=False, use_projections=False))
                fast = db.query(ltl)
                assert set(scan.contract_names) == set(expected), question
                assert set(fast.contract_names) == set(expected), question
                scan_times.append(scan.stats.total_seconds)
                fast_times.append(fast.stats.total_seconds)
            rows.append((
                domain.name,
                len(domain.contracts),
                len(domain.questions),
                round(statistics.mean(scan_times) * 1000, 2),
                round(statistics.mean(fast_times) * 1000, 2),
            ))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    write_report(
        results_dir / "corpus.txt",
        format_table(
            ["domain", "contracts", "questions", "scan avg (ms)",
             "optimized avg (ms)"],
            rows,
            title="Realistic corpus - end-to-end question answering",
        ),
    )
    assert len(rows) == 4
