"""Bounded tail latency under execution budgets (the 1.3 QueryOptions API).

Not a paper figure — the degradation counterpart of §7.1's runtime
module.  Permission checking is PSPACE-complete in the formula sizes
(Theorem 6), so an adversarial database can make any latency target
unattainable for *exact* answers.  This benchmark builds exactly such a
database (wide eventuality conjunctions whose product searches are
exhaustive) and shows what a deadline buys: the exact scan's latency
grows with the database, while the budgeted scan returns a degraded
``QueryOutcome`` within a fixed wall-clock envelope, every time.

Shape assertions:

* the budgeted query's worst observed latency stays under the 1 s
  envelope (a 100 ms deadline plus scheduling slack), while the exact
  scan is far slower;
* every budgeted run is sound: its PERMITTED set is a subset of the
  exact answer, and the exact answer is covered by PERMITTED ∪ maybe;
* the ledger balances: candidates = checked + timed_out + skipped.
"""

import os
import time

from repro.bench.reporting import format_table, write_report
from repro.broker.database import BrokerConfig, ContractDatabase
from repro.broker.options import QueryOptions
from repro.ltl.printer import format_formula
from repro.workload.generator import pathological_query, pathological_specs

DEADLINE_SECONDS = 0.1
LATENCY_ENVELOPE_SECONDS = 1.0
ROUNDS = 10


def _contract_count() -> int:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return max(10, int(round(60 * scale)))


def _build_db(count: int) -> ContractDatabase:
    # scan mode: the prefilter would prune the adversarial candidates
    # outright, which is the *other* benchmark's story (bench_figure5)
    db = ContractDatabase(
        BrokerConfig(use_prefilter=False, use_projections=False)
    )
    for i, spec in enumerate(pathological_specs(count, seed=7)):
        db.register(f"pathological-{i}", list(spec.clauses))
    return db


def test_budgeted_tail_latency(benchmark, results_dir):
    count = _contract_count()
    db = _build_db(count)
    query = format_formula(pathological_query())
    budgeted_options = QueryOptions(
        use_prefilter=False, deadline_seconds=DEADLINE_SECONDS
    )

    exact_start = time.perf_counter()
    exact = db.query(query, QueryOptions(use_prefilter=False))
    exact_seconds = time.perf_counter() - exact_start

    latencies = []
    outcomes = []
    for _ in range(ROUNDS):
        outcome = db.query(query, budgeted_options)
        latencies.append(outcome.stats.total_seconds)
        outcomes.append(outcome)

    # the timed entry is one budgeted degraded scan
    benchmark(lambda: db.query(query, budgeted_options))

    worst = max(latencies)
    assert worst < LATENCY_ENVELOPE_SECONDS
    assert not exact.degraded
    for outcome in outcomes:
        assert outcome.degraded
        s = outcome.stats
        assert s.candidates == s.checked + s.timed_out + s.skipped
        # degraded answers stay sound: no false positives, no silent
        # false negatives — everything unresolved is reported as maybe
        assert set(outcome.contract_ids) <= set(exact.contract_ids)
        assert set(exact.contract_ids) <= (
            set(outcome.contract_ids) | set(outcome.maybe_ids)
        )

    rows = [
        ("exact scan", f"{exact_seconds * 1000:.0f}", "-", "-", "-",
         "no"),
        ("budgeted scan (worst of %d)" % ROUNDS,
         f"{worst * 1000:.0f}",
         outcomes[-1].stats.checked,
         outcomes[-1].stats.timed_out,
         outcomes[-1].stats.skipped,
         "yes"),
    ]
    report = format_table(
        ["run", "latency (ms)", "checked", "timed out", "skipped",
         "degraded"],
        rows,
        title=f"Bounded tail latency - {count} adversarial contracts, "
              f"{DEADLINE_SECONDS * 1000:.0f}ms deadline",
    )
    write_report(results_dir / "budget_tail_latency.txt", report)

    assert worst < exact_seconds
