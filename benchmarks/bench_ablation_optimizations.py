"""Ablation: prefilter-only vs bisimulation-only vs both vs neither.

The paper calls its two indexing techniques "distinct and complementary"
(§1): prefiltering shines on selective complex queries, the bisimulation
projections on simple queries over complex contracts.  This ablation
quantifies each technique's individual contribution on one mixed
workload — the analysis behind that claim.
"""

import statistics
from dataclasses import replace

from repro.bench.harness import build_database, specs_to_formulas
from repro.bench.reporting import format_table, write_report
from repro.broker.database import BrokerConfig
from repro.broker.options import QueryOptions

MODES = [
    ("neither", False, False),
    ("prefilter only", True, False),
    ("bisimulation only", False, True),
    ("both", True, True),
]


def test_ablation_optimizations(benchmark, datasets, bench_sizes,
                                results_dir):
    def experiment():
        contracts = datasets["medium_contracts"].generate(
            max(30, bench_sizes["figure6_db_size"] // 2)
        )
        queries = []
        for key in ("simple_queries", "complex_queries"):
            config = replace(
                datasets[key],
                size=max(4, bench_sizes["queries_per_workload"] // 2),
            )
            queries.extend(specs_to_formulas(config.generate()))
        db = build_database(contracts, BrokerConfig())
        # warm the lazily materialized projections (the paper precomputes
        # simplified BAs at registration)
        for query in queries:
            db.query(query)

        results = {}
        baseline = None
        for name, prefilter, projections in MODES:
            times = []
            answers = []
            for query in queries:
                result = db.query(query, QueryOptions(
                    use_prefilter=prefilter,
                    use_projections=projections,
                ))
                times.append(result.stats.total_seconds)
                answers.append(frozenset(result.contract_ids))
            if baseline is None:
                baseline = answers
            assert answers == baseline, f"{name} changed query answers"
            results[name] = statistics.mean(times)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    neither = results["neither"]
    rows = [
        (name, round(seconds * 1000, 2), round(neither / seconds, 2))
        for name, seconds in results.items()
    ]
    write_report(
        results_dir / "ablation_optimizations.txt",
        format_table(
            ["mode", "avg query (ms)", "speedup vs neither"],
            rows,
            title="Ablation - contribution of each optimization "
                  "(medium contracts, simple+complex queries)",
        ),
    )

    # bisimulation is the dominant single technique on this mixed
    # workload; prefiltering alone may only break even here (its wins
    # come on selective queries — see bench_selectivity.py), but must
    # never hurt beyond noise; together they are the best configuration
    assert results["bisimulation only"] < neither
    assert results["prefilter only"] <= 1.15 * neither
    assert results["both"] < neither
    assert results["both"] <= 1.5 * min(
        results["prefilter only"], results["bisimulation only"]
    )
