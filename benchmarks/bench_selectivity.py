"""Selectivity sweep: pruning power and speedup vs query specificity.

Supports the paper's claim that prefiltering "is extremely effective for
highly selective complex queries" (§1) with a controlled experiment:
queries are derived from stored contracts as eventuality chains of
growing depth (`repro.workload.selectivity`), so deeper chains are more
selective, and the candidate-set fraction plus the scan/optimized
speedup are charted against depth.
"""

import statistics

from repro.bench.harness import build_database
from repro.bench.reporting import format_table, write_report
from repro.broker.database import BrokerConfig
from repro.broker.options import QueryOptions
from repro.workload.selectivity import derived_workload

DEPTHS = (1, 2, 3, 4)


def test_selectivity_sweep(benchmark, datasets, bench_sizes, results_dir):
    def experiment():
        contracts = datasets["simple_contracts"].generate(
            max(60, bench_sizes["figure6_db_size"])
        )
        db = build_database(contracts, BrokerConfig())
        contract_bas = [c.ba for c in db.contracts()]

        rows = []
        fractions = []
        for depth in DEPTHS:
            queries = derived_workload(
                contract_bas, depth,
                count=max(6, bench_sizes["queries_per_workload"]),
            )
            assert queries, f"no depth-{depth} queries derivable"
            for query in queries:  # warm projections
                db.query(query)
            candidate_fractions = []
            speedups = []
            matched = []
            for query in queries:
                scan = db.query(query, QueryOptions(
                    use_prefilter=False, use_projections=False))
                fast = db.query(query)
                assert scan.contract_ids == fast.contract_ids
                candidate_fractions.append(
                    fast.stats.candidates / len(db)
                )
                matched.append(len(fast.contract_ids))
                speedups.append(
                    max(scan.stats.total_seconds, 1e-9)
                    / max(fast.stats.total_seconds, 1e-9)
                )
            fraction = statistics.mean(candidate_fractions)
            fractions.append(fraction)
            rows.append((
                depth,
                len(queries),
                round(statistics.mean(matched), 1),
                f"{fraction:.0%}",
                round(statistics.mean(speedups), 1),
            ))
        return rows, fractions

    rows, fractions = benchmark.pedantic(experiment, rounds=1, iterations=1)

    write_report(
        results_dir / "selectivity.txt",
        format_table(
            ["chain depth", "queries", "avg matches", "avg candidates",
             "avg speedup"],
            rows,
            title="Selectivity sweep - pruning power vs query "
                  "specificity (derived eventuality-chain queries)",
        ),
    )

    # deeper chains are at least as selective on average (small slack for
    # the changing query mix)
    assert fractions[-1] <= fractions[0] + 0.05
    # and the index genuinely prunes on the deepest tier
    assert fractions[-1] < 0.9
