"""Ablation: approximated vs complete pruning conditions (§4.1.1).

The paper implements an approximated lasso pruning condition and claims
it "has nearly the same number of false positives as the complete
pruning conditions" while being much faster to compute.  This ablation
measures both grades on the same database and query workload: extraction
time, candidate counts, and false positives against the exact permitted
sets.
"""

import statistics
import time
from dataclasses import replace

from repro.automata.ltl2ba import translate
from repro.bench.harness import build_database, specs_to_formulas
from repro.bench.reporting import format_table, write_report
from repro.broker.database import BrokerConfig
from repro.core.permission import permits
from repro.index.complete_pruning import complete_pruning_condition
from repro.index.pruning import pruning_condition


def test_ablation_pruning_grade(benchmark, datasets, bench_sizes,
                                results_dir):
    def experiment():
        contracts = datasets["simple_contracts"].generate(
            max(40, bench_sizes["figure6_db_size"] // 2)
        )
        db = build_database(contracts, BrokerConfig(use_projections=False))
        query_config = replace(
            datasets["medium_queries"],
            size=max(6, bench_sizes["queries_per_workload"]),
        )
        queries = [
            translate(q) for q in specs_to_formulas(query_config.generate())
        ]

        grades = {"approximated": pruning_condition,
                  "complete": complete_pruning_condition}
        metrics = {}
        per_query_candidates = {}
        for grade, extractor in grades.items():
            extract_time = 0.0
            candidates = []
            false_positives = []
            for query in queries:
                start = time.perf_counter()
                condition = extractor(query)
                extract_time += time.perf_counter() - start
                selected = db.index.evaluate(condition)
                exact = {
                    c.contract_id
                    for c in db.contracts()
                    if c.contract_id in selected
                    and permits(c.ba, query, c.vocabulary, seeds=c.seeds)
                }
                # soundness re-check against the full database
                for contract in db.contracts():
                    if contract.contract_id in selected:
                        continue
                    assert not permits(
                        contract.ba, query, contract.vocabulary,
                        seeds=contract.seeds,
                    ), f"{grade} condition pruned a permitting contract"
                candidates.append(len(selected))
                false_positives.append(len(selected) - len(exact))
            metrics[grade] = (
                extract_time / len(queries),
                statistics.mean(candidates),
                statistics.mean(false_positives),
            )
            per_query_candidates[grade] = candidates
        return metrics, per_query_candidates, len(contracts)

    metrics, per_query, db_size = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    rows = [
        (grade,
         round(values[0] * 1000, 2),
         round(values[1], 1),
         round(values[2], 1))
        for grade, values in metrics.items()
    ]
    write_report(
        results_dir / "ablation_pruning_grade.txt",
        format_table(
            ["condition grade", "avg extraction (ms)", "avg candidates",
             "avg false positives"],
            rows,
            title=f"Ablation - approximated vs complete pruning conditions "
                  f"({db_size} simple contracts, medium queries)",
        ),
    )

    # the paper's claim: nearly the same false positives, cheaper to build
    approx_fp = metrics["approximated"][2]
    complete_fp = metrics["complete"][2]
    assert complete_fp <= approx_fp + 1e-9
    assert approx_fp <= complete_fp + max(3.0, 0.15 * db_size)
