"""Sharded query_many throughput and replication lag (dist subsystem).

Runs the same contract corpus and query workload through a single-shard
cluster and a 3-shard cluster (both real socket round trips through the
coordinator) and compares **critical-path throughput**: the per-query
merged ``total_seconds`` is the slowest shard's evaluation time (the
shards run concurrently), so summing it over the workload gives the
wall time an N-core deployment would observe.  On the single-core CI
container the raw wall clock cannot show the win — three shard threads
time-share one core — so the wall-clock numbers are reported as
informational context while the acceptance floor is on the
critical-path ratio, which measures exactly what sharding changes: how
much work any one shard still has to do.

A journal-shipping replica of shard 0 is exercised alongside: the
leader's registrations pile up journal lag, one catch-up drains it, and
the before/after lag plus catch-up time go into the report.

Writes ``BENCH_dist.json`` at the repository root (the committed perf
baseline CI's bench-smoke step regenerates and asserts against).
"""

import json
import statistics
import sys
import time
from pathlib import Path

from repro.bench.reporting import format_table, write_report
from repro.dist import LocalCluster

from .conftest import scaled

#: CI assertion floor for the 3-shard critical-path speedup.  Ideal for
#: the 18/16/14 placement below is ~2.7x; 2.0x is the acceptance bar.
MIN_CRITICAL_SPEEDUP = 2.0
ROUNDS = 3
SHARDS = 3

BASELINE_PATH = Path(__file__).parent.parent / "BENCH_dist.json"

#: Moderately expensive, homogeneous clause sets so per-shard work
#: tracks contract count (cycled per contract).
CLAUSE_SETS = [
    ["G (request -> F response)", "G (a -> F b)"],
    ["G ((a & !b) -> F (b | c))", "F G !d"],
    ["G (pay -> F ticket)", "G (cancel -> G !ticket)"],
    ["(F a) & (F b) & (F c)"],
]

QUERIES = [
    "F a", "F response", "G !cancel", "F (a & F b)",
    "G (a -> F b)", "F ticket", "F (b | c)", "G !d",
]


def _specs(count):
    return [
        (f"bench-{i}", CLAUSE_SETS[i % len(CLAUSE_SETS)],
         {"price": 100 + i, "route": f"r{i % 5}"})
        for i in range(count)
    ]


def _populate(db, specs):
    for name, clauses, attributes in specs:
        db.register(name, clauses, attributes)


def _measure(cluster, specs, queries):
    """Median busy/wall seconds for query_many over the whole workload
    (one warm-up round primes the per-shard compilation caches, so
    steady-state permission work — not LTL translation — is measured)."""
    with cluster.database() as db:
        _populate(db, specs)
        busy_rounds = []
        wall_rounds = []
        for round_index in range(ROUNDS + 1):
            start = time.perf_counter()
            outcomes = db.query_many(queries)
            wall = time.perf_counter() - start
            assert not any(o.degraded for o in outcomes), (
                "a degraded bench round measures failure handling, "
                "not throughput"
            )
            if round_index == 0:
                continue  # warm-up
            # merged total_seconds is the slowest shard's time for that
            # query: summing gives the critical-path workload time
            busy_rounds.append(sum(o.stats.total_seconds for o in outcomes))
            wall_rounds.append(wall)
        permitted = [len(o.contract_names) for o in outcomes]
    return statistics.median(busy_rounds), statistics.median(wall_rounds), \
        permitted


def _replica_lag(tmp_path, specs, queries):
    """Register through a journaled 3-shard cluster, then let a replica
    of shard 0 catch up; report lag before/after and catch-up time."""
    with LocalCluster(SHARDS, directory=tmp_path) as cluster:
        with cluster.database() as db:
            _populate(db, specs)
            from repro.dist.replica import PollReport

            replica = cluster.replica()
            before = PollReport()
            replica._observe_lag(before)
            start = time.perf_counter()
            report = replica.catch_up()
            catchup_seconds = time.perf_counter() - start
            leader_names = {
                name for name, _, _ in specs
                if db.coordinator.router.shard_for(name) == 0
            }
            got = {c.name for c in replica.db.contracts()}
            assert got == leader_names, (
                "replica must converge to exactly the leader shard's "
                "contracts"
            )
            outcome = replica.query(queries[0])
            return {
                "leader_contracts": len(leader_names),
                "lag_records_before": before.lag_records,
                "lag_bytes_before": before.lag_bytes,
                "lag_records_after": report.lag_records,
                "lag_bytes_after": report.lag_bytes,
                "catchup_seconds": round(catchup_seconds, 4),
                "replica_query_permitted": len(outcome.contract_names),
            }


def test_benchmark_dist_query_many(benchmark, results_dir, tmp_path):
    specs = _specs(scaled(48))
    queries = QUERIES * max(1, scaled(2))

    with LocalCluster(1) as single:
        single_busy, single_wall, single_permitted = _measure(
            single, specs, queries
        )
    with LocalCluster(SHARDS) as sharded:
        shard_busy, shard_wall, shard_permitted = _measure(
            sharded, specs, queries
        )

    # invariant 15 sanity: distribution never changes answers
    assert shard_permitted == single_permitted

    critical_speedup = single_busy / shard_busy
    replica = _replica_lag(tmp_path, specs, queries)

    measured = {
        "single_shard_busy_seconds": round(single_busy, 6),
        "sharded_critical_path_seconds": round(shard_busy, 6),
        "single_shard_queries_per_second": round(
            len(queries) / single_busy, 1
        ),
        "sharded_critical_queries_per_second": round(
            len(queries) / shard_busy, 1
        ),
        "critical_path_speedup": round(critical_speedup, 2),
        # informational: on a single-core runner the shard threads
        # time-share the CPU, so wall clock shows no speedup
        "single_shard_wall_seconds": round(single_wall, 6),
        "sharded_wall_seconds": round(shard_wall, 6),
        "replica": replica,
    }

    doc = {
        "benchmark": "distributed query_many, 1 vs 3 shards + replica lag",
        "sweep": {
            "contracts": len(specs),
            "queries": len(queries),
            "rounds": ROUNDS,
            "shards": SHARDS,
        },
        "python": sys.version.split()[0],
        "results": measured,
    }
    BASELINE_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    write_report(
        results_dir / "dist_query_many.txt",
        format_table(
            ["configuration", "busy seconds", "queries/s"],
            [
                ["1 shard", measured["single_shard_busy_seconds"],
                 measured["single_shard_queries_per_second"]],
                [f"{SHARDS} shards (critical path)",
                 measured["sharded_critical_path_seconds"],
                 measured["sharded_critical_queries_per_second"]],
                ["speedup", f"{measured['critical_path_speedup']}x", ""],
                ["replica catch-up",
                 replica["catchup_seconds"],
                 f"{replica['lag_records_before']} records drained"],
            ],
            title="Distributed broker: sharded fan-out vs single shard",
        ),
    )

    assert critical_speedup >= MIN_CRITICAL_SPEEDUP, (
        f"3-shard critical path only {measured['critical_path_speedup']}x "
        f"faster than single-shard (floor {MIN_CRITICAL_SPEEDUP}x) — "
        f"regression against BENCH_dist.json baseline?"
    )
    assert replica["lag_records_after"] == 0
    assert replica["lag_bytes_after"] == 0

    # the timed callable pytest-benchmark tracks: one sharded fan-out
    with LocalCluster(SHARDS) as cluster:
        with cluster.database() as db:
            _populate(db, specs)
            db.query_many(queries)  # warm the caches

            benchmark(lambda: db.query_many(queries))
