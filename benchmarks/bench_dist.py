"""Sharded query_many throughput and replication lag (dist subsystem).

Runs the same contract corpus and query workload through a single-shard
cluster and a 3-shard cluster (both real socket round trips through the
coordinator) and compares **critical-path throughput**: the per-query
merged ``total_seconds`` is the slowest shard's evaluation time (the
shards run concurrently), so summing it over the workload gives the
wall time an N-core deployment would observe.  On the single-core CI
container neither wall clock nor the timed busy ratio is reliable —
three shard threads time-share one core and GIL hand-offs bill one
shard for another's work — so the timed numbers are reported (with a
loose catastrophe floor) while the hard acceptance floor is on the
*placement* critical path: total contracts over the biggest shard's
share, the deterministic bound on how much work any one shard still
has to do.

A journal-shipping replica of shard 0 is exercised alongside: the
leader's registrations pile up journal lag, one catch-up drains it, and
the before/after lag plus catch-up time go into the report.

Since 1.10 the coordinator tracks per-shard health (circuit breaker +
retry with backoff) on every RPC, so two more rows pin its cost: the
same per-query fan-out workload fault-free vs. with 10% of ``dist.send``
crossings raising a transient ``OSError`` (the retries must absorb every
fault and the answers must stay bit-for-bit exact — invariant 16), and a
direct measurement of the per-RPC health bookkeeping (breaker check,
success record, disarmed seam crossings) asserted to cost <5% of a
fault-free query (the happy-path regression floor).

Writes ``BENCH_dist.json`` at the repository root (the committed perf
baseline CI's bench-smoke step regenerates and asserts against).
"""

import json
import statistics
import sys
import time
from pathlib import Path

from repro.bench.reporting import format_table, write_report
from repro.core.faults import FAULTS
from repro.core.retry import BackoffPolicy
from repro.dist import LocalCluster, ShardHealth
from repro.dist.partition import ShardRouter

from .conftest import scaled

#: CI assertion floor on the *placement* critical path — total
#: contracts over the biggest shard's share, the deterministic bound on
#: how much work any one shard still has to do.  The 18/16/14 placement
#: below gives 48/18 ≈ 2.67x; 2.0x is the acceptance bar.
MIN_CRITICAL_SPEEDUP = 2.0
#: Catastrophe floor on the *measured* busy-time ratio.  Timing on a
#: shared single-core runner jitters (GIL hand-offs bill one shard for
#: another's work — the seed baseline itself measured anywhere from
#: 0.5x to 2.8x across runs of the same tree), so the timed ratio only
#: guards against sharding being outright broken, while the placement
#: floor above carries the real acceptance bar deterministically.
MIN_TIMED_SPEEDUP = 1.3
#: One in this many ``dist.send`` crossings fails in the flaky row.
FLAKY_EVERY = 10
#: Happy-path floor: the per-RPC health bookkeeping may cost at most
#: this fraction of a fault-free fan-out query.
MAX_HEALTH_OVERHEAD_FRACTION = 0.05
#: Tight backoff for the flaky row so it measures retry *work*, not
#: production-shaped sleeps.
FLAKY_RETRY = BackoffPolicy(max_retries=2, base_seconds=0.002,
                            cap_seconds=0.01)
#: Five measured rounds (plus warm-up): the median rides out the
#: scheduler noise a single-core runner adds to ~5ms samples.
ROUNDS = 5
SHARDS = 3

BASELINE_PATH = Path(__file__).parent.parent / "BENCH_dist.json"

#: Moderately expensive, homogeneous clause sets so per-shard work
#: tracks contract count (cycled per contract).
CLAUSE_SETS = [
    ["G (request -> F response)", "G (a -> F b)"],
    ["G ((a & !b) -> F (b | c))", "F G !d"],
    ["G (pay -> F ticket)", "G (cancel -> G !ticket)"],
    ["(F a) & (F b) & (F c)"],
]

QUERIES = [
    "F a", "F response", "G !cancel", "F (a & F b)",
    "G (a -> F b)", "F ticket", "F (b | c)", "G !d",
]


def _specs(count):
    return [
        (f"bench-{i}", CLAUSE_SETS[i % len(CLAUSE_SETS)],
         {"price": 100 + i, "route": f"r{i % 5}"})
        for i in range(count)
    ]


def _populate(db, specs):
    for name, clauses, attributes in specs:
        db.register(name, clauses, attributes)


def _measure(cluster, specs, queries):
    """Busy/wall seconds for query_many over the whole workload (one
    warm-up round primes the per-shard compilation caches, so
    steady-state permission work — not LTL translation — is measured).

    The per-shard ``total_seconds`` each shard reports is wall time
    inside that shard's thread, so on a single-core runner the GIL's
    default 5ms switch interval can preempt a ~2ms evaluation midway
    and bill one shard for another's work.  A coarse switch interval
    during the measured rounds lets each shard evaluation run to
    completion in one slice, so the number reflects the shard's own
    work — which is the quantity the critical-path ratio is about."""
    switch_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.05)
    try:
        with cluster.database() as db:
            _populate(db, specs)
            busy_rounds = []
            wall_rounds = []
            for round_index in range(ROUNDS + 1):
                start = time.perf_counter()
                outcomes = db.query_many(queries)
                wall = time.perf_counter() - start
                assert not any(o.degraded for o in outcomes), (
                    "a degraded bench round measures failure handling, "
                    "not throughput"
                )
                if round_index == 0:
                    continue  # warm-up
                # merged total_seconds is the slowest shard's time for
                # that query: summing gives the critical-path workload
                # time
                busy_rounds.append(
                    sum(o.stats.total_seconds for o in outcomes)
                )
                wall_rounds.append(wall)
            permitted = [len(o.contract_names) for o in outcomes]
    finally:
        sys.setswitchinterval(switch_interval)
    # min, not median, for the asserted busy number: preemption only
    # ever *inflates* a round, so the least-interfered round is the
    # measurement
    return min(busy_rounds), statistics.median(wall_rounds), permitted


def _measure_per_query(db, queries):
    """Median wall seconds for the workload as per-query fan-outs (one
    RPC per shard per query — the shape that exposes transport
    flakiness) plus the per-query permitted counts."""
    walls = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        outcomes = [db.query(query) for query in queries]
        walls.append(time.perf_counter() - start)
        assert not any(o.degraded for o in outcomes), (
            "a degraded bench round measures failure handling, not "
            "throughput"
        )
    return statistics.median(walls), [
        len(o.contract_names) for o in outcomes
    ]


def _flaky_network_rows(specs, queries):
    """Fault-free vs. 10%-flaky ``dist.send`` on one cluster.

    Every injected fault must be absorbed by the retry machinery —
    no degradation, identical answers — so the delta between the two
    rows is the genuine price of 10% transport flakiness."""
    flake_counter = {"hits": 0}

    def every_nth_send(**context):
        flake_counter["hits"] += 1
        if flake_counter["hits"] % FLAKY_EVERY == 0:
            raise OSError("bench: injected 10% send flake")

    with LocalCluster(SHARDS) as cluster:
        with cluster.database(retry=FLAKY_RETRY) as db:
            _populate(db, specs)
            [db.query(query) for query in queries]  # warm the caches
            clean_wall, clean_permitted = _measure_per_query(db, queries)
            FAULTS.fail_at(
                "dist.send", nth=1, times=10 ** 9, action=every_nth_send
            )
            try:
                flaky_wall, flaky_permitted = _measure_per_query(
                    db, queries
                )
            finally:
                FAULTS.reset()
            retries = db.metrics.counter_value("dist.retries")

    # invariant 16: the retried run answers exactly like the
    # never-failed one
    assert flaky_permitted == clean_permitted
    assert retries > 0, "a 10% flake rate must actually trigger retries"
    return {
        "fault_free_wall_seconds": round(clean_wall, 6),
        "flaky_wall_seconds": round(flaky_wall, 6),
        "flaky_overhead_ratio": round(flaky_wall / clean_wall, 3),
        "send_faults_injected": flake_counter["hits"] // FLAKY_EVERY,
        "retries": retries,
    }, clean_wall


def _health_hot_path_seconds(iterations=20_000):
    """Per-RPC cost of the 1.10 health bookkeeping: one breaker check,
    the two disarmed seam crossings, one success record — exactly the
    extra client-side work a healthy RPC pays since health tracking
    landed."""
    health = ShardHealth()
    start = time.perf_counter()
    for _ in range(iterations):
        health.allow()
        FAULTS.hit("dist.send", shard=0, op="query_many")
        FAULTS.hit("dist.recv", shard=0, op="query_many")
        health.record_success()
    return (time.perf_counter() - start) / iterations


def _replica_lag(tmp_path, specs, queries):
    """Register through a journaled 3-shard cluster, then let a replica
    of shard 0 catch up; report lag before/after and catch-up time."""
    with LocalCluster(SHARDS, directory=tmp_path) as cluster:
        with cluster.database() as db:
            _populate(db, specs)
            from repro.dist.replica import PollReport

            replica = cluster.replica()
            before = PollReport()
            replica._observe_lag(before)
            start = time.perf_counter()
            report = replica.catch_up()
            catchup_seconds = time.perf_counter() - start
            leader_names = {
                name for name, _, _ in specs
                if db.coordinator.router.shard_for(name) == 0
            }
            got = {c.name for c in replica.db.contracts()}
            assert got == leader_names, (
                "replica must converge to exactly the leader shard's "
                "contracts"
            )
            outcome = replica.query(queries[0])
            return {
                "leader_contracts": len(leader_names),
                "lag_records_before": before.lag_records,
                "lag_bytes_before": before.lag_bytes,
                "lag_records_after": report.lag_records,
                "lag_bytes_after": report.lag_bytes,
                "catchup_seconds": round(catchup_seconds, 4),
                "replica_query_permitted": len(outcome.contract_names),
            }


def test_benchmark_dist_query_many(benchmark, results_dir, tmp_path):
    specs = _specs(scaled(48))
    queries = QUERIES * max(1, scaled(2))

    with LocalCluster(1) as single:
        single_busy, single_wall, single_permitted = _measure(
            single, specs, queries
        )
    with LocalCluster(SHARDS) as sharded:
        shard_busy, shard_wall, shard_permitted = _measure(
            sharded, specs, queries
        )

    # invariant 15 sanity: distribution never changes answers
    assert shard_permitted == single_permitted

    critical_speedup = single_busy / shard_busy
    # the deterministic critical path: placement decides how much work
    # any one shard still has to do, independent of runner load
    placement = [0] * SHARDS
    router = ShardRouter(SHARDS)
    for name, _, _ in specs:
        placement[router.shard_for(name)] += 1
    placement_speedup = len(specs) / max(placement)
    replica = _replica_lag(tmp_path, specs, queries)
    flaky, clean_wall = _flaky_network_rows(specs, queries)
    health_rpc_seconds = _health_hot_path_seconds()
    # SHARDS RPCs per fan-out query pay the health bookkeeping
    health_overhead_fraction = (
        health_rpc_seconds * SHARDS * len(queries) / clean_wall
    )

    measured = {
        "single_shard_busy_seconds": round(single_busy, 6),
        "sharded_critical_path_seconds": round(shard_busy, 6),
        "single_shard_queries_per_second": round(
            len(queries) / single_busy, 1
        ),
        "sharded_critical_queries_per_second": round(
            len(queries) / shard_busy, 1
        ),
        "critical_path_speedup": round(critical_speedup, 2),
        "placement": placement,
        "placement_speedup": round(placement_speedup, 2),
        # informational: on a single-core runner the shard threads
        # time-share the CPU, so wall clock shows no speedup
        "single_shard_wall_seconds": round(single_wall, 6),
        "sharded_wall_seconds": round(shard_wall, 6),
        "replica": replica,
        "flaky_network": flaky,
        "health_hot_path_seconds_per_rpc": round(health_rpc_seconds, 9),
        "health_overhead_fraction": round(health_overhead_fraction, 5),
    }

    doc = {
        "benchmark": "distributed query_many, 1 vs 3 shards + replica lag",
        "sweep": {
            "contracts": len(specs),
            "queries": len(queries),
            "rounds": ROUNDS,
            "shards": SHARDS,
        },
        "python": sys.version.split()[0],
        "results": measured,
    }
    BASELINE_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    write_report(
        results_dir / "dist_query_many.txt",
        format_table(
            ["configuration", "busy seconds", "queries/s"],
            [
                ["1 shard", measured["single_shard_busy_seconds"],
                 measured["single_shard_queries_per_second"]],
                [f"{SHARDS} shards (critical path)",
                 measured["sharded_critical_path_seconds"],
                 measured["sharded_critical_queries_per_second"]],
                ["speedup", f"{measured['critical_path_speedup']}x", ""],
                ["replica catch-up",
                 replica["catchup_seconds"],
                 f"{replica['lag_records_before']} records drained"],
                ["fault-free per-query",
                 flaky["fault_free_wall_seconds"], ""],
                [f"10% flaky dist.send ({flaky['retries']} retries)",
                 flaky["flaky_wall_seconds"],
                 f"{flaky['flaky_overhead_ratio']}x"],
            ],
            title="Distributed broker: sharded fan-out vs single shard",
        ),
    )

    assert placement_speedup >= MIN_CRITICAL_SPEEDUP, (
        f"placement critical path only {placement_speedup:.2f}x over the "
        f"biggest shard (floor {MIN_CRITICAL_SPEEDUP}x) — contracts are "
        f"not spreading across shards: {placement}"
    )
    assert critical_speedup >= MIN_TIMED_SPEEDUP, (
        f"3-shard critical path only {measured['critical_path_speedup']}x "
        f"faster than single-shard (catastrophe floor "
        f"{MIN_TIMED_SPEEDUP}x) — is the fan-out running serially?"
    )
    assert replica["lag_records_after"] == 0
    assert replica["lag_bytes_after"] == 0
    # happy-path regression floor: health tracking must stay in the
    # noise of a fault-free query
    assert health_overhead_fraction < MAX_HEALTH_OVERHEAD_FRACTION, (
        f"per-RPC health bookkeeping costs "
        f"{health_overhead_fraction:.1%} of a fault-free query "
        f"(floor {MAX_HEALTH_OVERHEAD_FRACTION:.0%})"
    )

    # the timed callable pytest-benchmark tracks: one sharded fan-out
    with LocalCluster(SHARDS) as cluster:
        with cluster.database() as db:
            _populate(db, specs)
            db.query_many(queries)  # warm the caches

            benchmark(lambda: db.query_many(queries))
