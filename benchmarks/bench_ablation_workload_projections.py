"""Ablation: workload-guided projection precomputation (§5.2).

When contract complexity precludes precomputing all projections, the
paper suggests capping the subset size and, further, using "heuristics
based on historical data and/or expected workloads to determine which
simplification to precompute".  This ablation compares three
registration policies on a query workload that exceeds the lattice cap:

* ``cap-0``       — no lattice, no extras (always the full BA);
* ``cap-1``       — small lattice only;
* ``cap-1+workload`` — small lattice plus exactly the subsets a sample
  workload requests.
"""

import statistics
from dataclasses import replace

from repro.bench.harness import build_database, specs_to_formulas
from repro.bench.reporting import format_table, write_report
from repro.broker.database import BrokerConfig
from repro.automata.ltl2ba import translate


def test_ablation_workload_projections(benchmark, datasets, bench_sizes,
                                       results_dir):
    def experiment():
        contracts = datasets["medium_contracts"].generate(
            max(20, bench_sizes["figure6_db_size"] // 4)
        )
        query_config = replace(
            datasets["medium_queries"],
            size=max(6, bench_sizes["queries_per_workload"] // 2),
        )
        query_formulas = specs_to_formulas(query_config.generate())

        rows = []
        baselines = None
        for policy in ("cap-0", "cap-1", "cap-1+workload"):
            cap = 0 if policy == "cap-0" else 1
            db = build_database(contracts, BrokerConfig(
                projection_subset_cap=cap,
            ))
            if policy.endswith("workload"):
                db.precompute_for_workload(query_formulas)
            # warm materializations, then measure
            for query in query_formulas:
                db.query(query)
            times = []
            selected_sizes = []
            answers = []
            for query in query_formulas:
                result = db.query(query)
                times.append(result.stats.total_seconds)
                answers.append(frozenset(result.contract_ids))
                query_ba = translate(query)
                for contract in db.contracts():
                    store = contract.projections
                    if store is not None:
                        selected_sizes.append(
                            store.select(query_ba.literals()).num_states
                        )
            if baselines is None:
                baselines = answers
            assert answers == baselines, f"{policy} changed answers"
            rows.append((
                policy,
                round(statistics.mean(times) * 1000, 2),
                round(statistics.mean(selected_sizes), 2),
            ))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    write_report(
        results_dir / "ablation_workload_projections.txt",
        format_table(
            ["policy", "avg query (ms)", "avg checked-BA states"],
            rows,
            title="Ablation - workload-guided projection precomputation "
                  "(medium contracts, medium queries)",
        ),
    )

    # workload guidance can only shrink the automata actually checked
    sizes = {policy: states for policy, _, states in rows}
    assert sizes["cap-1+workload"] <= sizes["cap-1"] + 1e-9
    assert sizes["cap-1"] <= sizes["cap-0"] + 1e-9
