"""Index building and size (§7.4, last paragraph).

Regenerates the paper's registration-side numbers: prefilter index build
time / average insertion time / size, projection precomputation time /
average insertion time / storage, and the distinct-partition ratio
(the paper observed ~5% of subsets yield distinct simplified BAs).
"""

import pytest

from repro.bench.harness import index_build_report
from repro.bench.reporting import format_table, write_report
from repro.broker.database import BrokerConfig, ContractDatabase


def test_index_build_report(benchmark, datasets, bench_sizes, results_dir):
    def build():
        db = ContractDatabase(BrokerConfig())
        specs = datasets["simple_contracts"].generate(
            bench_sizes["index_build_contracts"]
        )
        for i, spec in enumerate(specs):
            db.register(f"contract-{i}", list(spec.clauses))
        return db

    built_db = benchmark.pedantic(build, rounds=1, iterations=1)
    report = index_build_report(built_db)
    table = format_table(
        ["metric", "value"],
        report.rows(),
        title="Index building and size (paper §7.4: prefilter <25min / "
              "~500ms avg insert / ~10MB at 3000 contracts; projections "
              "42s avg insert, ~5% distinct partitions, simplified data "
              "~80% of DB size)",
    )
    write_report(results_dir / "index_build.txt", table)

    assert report.contracts == len(built_db)
    assert report.prefilter_nodes > 0
    # projections must dedup aggressively, as the paper observed
    assert report.projection_distinct_ratio < 0.8
    # the paper's simplified-BA data was ~80% of the original database
    # size; ours should likewise stay the same order of magnitude
    assert report.projection_storage_entries < (
        5 * report.database_storage_entries
    )


def test_benchmark_prefilter_insert(benchmark, datasets):
    """Average prefilter insertion time (paper: ~500ms on 2010 Java)."""
    from repro.automata.ltl2ba import translate
    from repro.index.prefilter import PrefilterIndex
    from repro.ltl.ast import conj

    specs = datasets["simple_contracts"].generate(10)
    prepared = []
    for spec in specs:
        formula = conj(spec.clauses)
        prepared.append((translate(formula), formula.variables()))

    def build_index():
        index = PrefilterIndex(depth=2)
        for i, (ba, vocabulary) in enumerate(prepared):
            index.add_contract(i, ba, vocabulary)
        return index

    index = benchmark(build_index)
    assert index.stats.contracts == 10


def test_benchmark_projection_store_build(benchmark, datasets):
    """Average projection precomputation time (paper: 42s avg insert)."""
    from repro.automata.ltl2ba import translate
    from repro.ltl.ast import conj
    from repro.projection.store import ProjectionStore

    spec = datasets["medium_contracts"].generate(1)[0]
    ba = translate(conj(spec.clauses))

    store = benchmark(lambda: ProjectionStore(ba, max_subset_size=2))
    assert store.num_subsets > 0
