"""Tables 1 and 3: the Dwyer pattern catalog the workload is built from.

Regenerates the LTL pattern tables the paper reprints from [8] and
benchmarks instantiating + translating all twenty patterns (the
per-clause unit of work of contract registration).
"""

from repro.automata.ltl2ba import translate
from repro.bench.reporting import format_table, write_report
from repro.ltl.patterns import TEMPLATES, Behavior, Scope
from repro.ltl.printer import format_formula

_EVENTS = {"p": "p", "s": "s", "q": "q", "r": "r"}


def _all_instances():
    for (behavior, scope), tpl in sorted(
        TEMPLATES.items(), key=lambda kv: (kv[0][0].value, kv[0][1].value)
    ):
        mapping = {k: _EVENTS[k] for k in tpl.placeholders}
        yield behavior, scope, tpl, tpl.instantiate(**mapping)


def test_table1_and_table3_catalog(benchmark, results_dir):
    rows = []
    instances = benchmark.pedantic(
        lambda: list(_all_instances()), rounds=1, iterations=1
    )
    for behavior, scope, tpl, formula in instances:
        rows.append((
            behavior.value,
            scope.value,
            format_formula(formula),
            tpl.description,
        ))
    report = format_table(
        ["behavior", "scope", "LTL pattern", "description"],
        rows,
        title="Tables 1 & 3 - property specification patterns (from [8])",
    )
    write_report(results_dir / "table1_table3.txt", report)

    # Table 1 is the precedence row of the catalog.
    precedence_rows = [r for r in rows if r[0] == "precedence"]
    assert len(precedence_rows) == 4
    assert len(rows) == 20


def test_benchmark_pattern_translation(benchmark):
    instances = [formula for _, _, _, formula in _all_instances()]

    def translate_all():
        return [translate(f) for f in instances]

    automata = benchmark(translate_all)
    assert len(automata) == 20
    assert all(not ba.is_empty() for ba in automata)
