"""Cold-start persistence: snapshot load versus full rebuild.

The §7.4 experiments show registration-side cost (LTL→BA translation,
set-trie building, all-subsets partitioning) dominating query cost; the
v2 snapshot format persists every derived artifact exactly so a broker
restart pays O(read) instead of re-running that phase.  This benchmark
measures the saving on a generated corpus and writes the comparison to
``results/persist.txt``.

Shape assertions:

* the snapshot load restores every artifact (no retranslation, index
  adopted wholesale) and beats the full rebuild;
* the restored database answers a query workload identically to the
  database it was saved from.
"""

import time

from repro.bench.harness import (
    build_database,
    specs_to_formulas,
)
from repro.bench.reporting import format_table, write_report
from repro.broker.database import BrokerConfig
from repro.broker.persist import load_database, save_database


def test_cold_start_load_vs_rebuild(
    benchmark, datasets, bench_sizes, results_dir, tmp_path
):
    contracts = datasets["simple_contracts"].generate(
        bench_sizes["persist_contracts"]
    )
    queries = specs_to_formulas(
        datasets["simple_queries"].generate(
            bench_sizes["queries_per_workload"]
        )
    )

    rebuild_start = time.perf_counter()
    db = build_database(contracts, BrokerConfig())
    rebuild_seconds = time.perf_counter() - rebuild_start
    baseline = [db.query(q).contract_names for q in queries]

    directory = save_database(db, tmp_path / "snapshot")

    loaded = benchmark.pedantic(
        lambda: load_database(directory), rounds=1, iterations=1
    )
    report = loaded.load_report

    table = format_table(
        ["metric", "value"],
        [
            ("contracts", report.contracts),
            ("rebuild (register from specs)", f"{rebuild_seconds:.2f}s"),
            ("snapshot load", f"{report.load_seconds:.2f}s"),
            ("speedup", f"{rebuild_seconds / max(report.load_seconds, 1e-9):.1f}x"),
            ("automata restored", report.automata_restored),
            ("seeds restored", report.seeds_restored),
            ("projections restored", report.projections_restored),
            ("index restored", report.index_restored),
        ],
        title="Cold start: v2 snapshot load vs full registration rebuild",
    )
    write_report(results_dir / "persist.txt", table)

    # every derived artifact came back from the snapshot...
    assert report.automata_restored == report.contracts
    assert report.seeds_restored == report.contracts
    assert report.projections_restored == report.contracts
    assert report.index_restored
    assert not report.retranslated
    # ...restoring is faster than re-registering...
    assert report.load_seconds < rebuild_seconds
    # ...and the restored database serves the workload identically.
    assert [loaded.query(q).contract_names for q in queries] == baseline
