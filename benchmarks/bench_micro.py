"""Micro-benchmarks of the individual pipeline stages.

Not a paper figure — a developer-facing breakdown of where query and
registration time goes: LTL→BA translation, pruning-condition
extraction, index lookup, permission checking, projection selection.
"""

import pytest

from repro.automata.labels import Label
from repro.automata.ltl2ba import translate
from repro.core.permission import permits
from repro.core.seeds import compute_seeds
from repro.index.prefilter import PrefilterIndex
from repro.index.pruning import pruning_condition
from repro.ltl.ast import conj
from repro.ltl.parser import parse


@pytest.fixture(scope="module")
def medium_pair(datasets):
    contract_spec = datasets["medium_contracts"].generate(1)[0]
    query_spec = datasets["medium_queries"].generate(1)[0]
    contract_formula = conj(contract_spec.clauses)
    return contract_formula, conj(query_spec.clauses)


def test_benchmark_parse(benchmark):
    text = ("G((p1 && !p2 && F p2) -> ((p3 -> (!p2 U (p4 && !p2))) "
            "U (p2 || G(p3 -> (!p2 U (p4 && !p2))))))")
    formula = benchmark(lambda: parse(text))
    assert formula.variables() == {"p1", "p2", "p3", "p4"}


def test_benchmark_translation_query(benchmark, medium_pair):
    _, query_formula = medium_pair
    ba = benchmark(lambda: translate(query_formula))
    assert ba.num_states >= 1


def test_benchmark_translation_contract(benchmark, medium_pair):
    contract_formula, _ = medium_pair
    ba = benchmark(lambda: translate(contract_formula))
    assert ba.num_states >= 1


def test_benchmark_pruning_condition(benchmark, medium_pair):
    _, query_formula = medium_pair
    query_ba = translate(query_formula)
    condition = benchmark(lambda: pruning_condition(query_ba))
    assert condition is not None


def test_benchmark_permission_check(benchmark, medium_pair):
    contract_formula, query_formula = medium_pair
    contract = translate(contract_formula)
    query = translate(query_formula)
    seeds = compute_seeds(contract)
    vocabulary = contract_formula.variables()
    benchmark(lambda: permits(contract, query, vocabulary, seeds=seeds))


def test_benchmark_index_lookup(benchmark, datasets):
    index = PrefilterIndex(depth=2)
    for i, spec in enumerate(datasets["simple_contracts"].generate(40)):
        formula = conj(spec.clauses)
        index.add_contract(i, translate(formula), formula.variables())
    label = Label.parse("p1 & !p2")
    result = benchmark(lambda: index.lookup(label))
    assert result <= index.universe


def test_benchmark_seeds(benchmark, medium_pair):
    contract_formula, _ = medium_pair
    contract = translate(contract_formula)
    seeds = benchmark(lambda: compute_seeds(contract))
    assert seeds <= contract.states
