"""Ablation: the projection subset-size cap (§5.2).

Precomputing a projection for *every* literal subset is exponential; the
paper proposes capping the subset size ``k``, which preserves the benefit
for queries with up to ``k`` literals (the ones the technique serves
best) and falls back to the full BA beyond.  This ablation sweeps the
cap and reports precomputation cost, storage, and how small the selected
automata get for a simple-query workload.
"""

import statistics
from dataclasses import replace

from repro.automata.ltl2ba import translate
from repro.bench.harness import specs_to_formulas
from repro.bench.reporting import format_table, write_report
from repro.ltl.ast import conj
from repro.projection.store import ProjectionStore

CAPS = (0, 1, 2, 3)


def test_ablation_projection_cap(benchmark, datasets, bench_sizes,
                                 results_dir):
    def experiment():
        contract_specs = datasets["medium_contracts"].generate(
            max(12, bench_sizes["figure6_db_size"] // 6)
        )
        contracts = [translate(conj(s.clauses)) for s in contract_specs]
        query_config = replace(
            datasets["simple_queries"],
            size=max(4, bench_sizes["queries_per_workload"] // 2),
        )
        queries = [
            translate(q) for q in specs_to_formulas(query_config.generate())
        ]

        rows = []
        for cap in CAPS:
            stores = [
                ProjectionStore(ba, max_subset_size=cap) for ba in contracts
            ]
            build = sum(s.stats.build_seconds for s in stores)
            storage = sum(s.storage_estimate() for s in stores)
            selected_sizes = [
                store.select(q.literals()).num_states
                for store in stores
                for q in queries
            ]
            full_sizes = [
                ba.num_states for ba in contracts for _ in queries
            ]
            rows.append((
                cap,
                round(build * 1000, 1),
                storage,
                round(statistics.mean(full_sizes), 1),
                round(statistics.mean(selected_sizes), 1),
            ))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    write_report(
        results_dir / "ablation_projection_cap.txt",
        format_table(
            ["cap k", "build (ms)", "storage (entries)",
             "avg full states", "avg selected states"],
            rows,
            title="Ablation - projection subset-size cap "
                  "(medium contracts, simple queries)",
        ),
    )

    # a larger cap can only help: selected automata shrink monotonically
    selected = [row[4] for row in rows]
    assert all(b <= a + 1e-9 for a, b in zip(selected, selected[1:]))
    # and precomputation cost grows monotonically
    builds = [row[1] for row in rows]
    assert builds == sorted(builds)
    # with cap >= 1 the selected automata are no larger than the originals
    assert rows[-1][4] <= rows[-1][3]
