"""Ablation: the set-trie depth cap ``k`` (§4.2).

The index caps node-label size at ``k`` to avoid exponential growth in
the vocabulary; lookups of longer labels fall back to sound supersets.
This ablation sweeps ``k`` and reports index size, build time and the
candidate-set quality (average candidates per query — lower is better
pruning), quantifying the paper's size/precision trade-off.
"""

import statistics
import time
from dataclasses import replace

from repro.automata.ltl2ba import translate
from repro.bench.harness import specs_to_formulas
from repro.bench.reporting import format_table, write_report
from repro.index.prefilter import PrefilterIndex
from repro.ltl.ast import conj

DEPTHS = (1, 2, 3)


def test_ablation_index_depth(benchmark, datasets, bench_sizes, results_dir):
    def experiment():
        specs = datasets["medium_contracts"].generate(
            max(30, bench_sizes["figure6_db_size"] // 2)
        )
        prepared = []
        for spec in specs:
            formula = conj(spec.clauses)
            prepared.append((translate(formula), formula.variables()))
        query_config = replace(
            datasets["complex_queries"],
            size=max(4, bench_sizes["queries_per_workload"] // 2),
        )
        queries = [
            translate(q) for q in specs_to_formulas(query_config.generate())
        ]

        rows = []
        candidate_sets: dict[int, list[frozenset]] = {}
        for depth in DEPTHS:
            start = time.perf_counter()
            index = PrefilterIndex(depth=depth)
            for i, (ba, vocabulary) in enumerate(prepared):
                index.add_contract(i, ba, vocabulary)
            build_seconds = time.perf_counter() - start

            sets = [index.candidates(q) for q in queries]
            candidate_sets[depth] = sets
            rows.append((
                depth,
                index.num_nodes,
                index.size_estimate(),
                round(build_seconds * 1000, 1),
                round(statistics.mean(len(s) for s in sets), 1),
            ))
        return rows, candidate_sets, len(prepared)

    rows, candidate_sets, n_contracts = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    write_report(
        results_dir / "ablation_index_depth.txt",
        format_table(
            ["depth k", "trie nodes", "size (entries)", "build (ms)",
             "avg candidates"],
            rows,
            title=f"Ablation - set-trie depth cap "
                  f"({n_contracts} medium contracts, complex queries)",
        ),
    )

    # deeper tries are never less precise: candidate sets shrink (or stay)
    for shallow, deep in zip(DEPTHS, DEPTHS[1:]):
        for s_set, d_set in zip(candidate_sets[shallow],
                                candidate_sets[deep]):
            assert d_set <= s_set
    # and never smaller in node count
    node_counts = [row[1] for row in rows]
    assert node_counts == sorted(node_counts)
