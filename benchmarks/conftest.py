"""Shared configuration for the benchmark suite.

Every benchmark writes the paper-style table/series it regenerates to
``benchmarks/results/`` (EXPERIMENTS.md indexes those files) and also
registers a representative timed callable with pytest-benchmark.

Scaling: the default configuration finishes the whole suite in minutes
on a laptop.  Two environment knobs rescale it:

* ``REPRO_BENCH_SCALE`` — float multiplier on database/workload sizes
  (e.g. ``2.0`` doubles every database);
* ``REPRO_BENCH_PAPER=1`` — use the paper's exact dataset parameters
  (20-event vocabulary, 5/6/7-pattern contracts; hours of runtime, as
  the original Java prototype also needed).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.workload.datasets import (
    PAPER_DATASETS,
    SCALED_DATASETS,
    DatasetConfig,
)

RESULTS_DIR = Path(__file__).parent / "results"


def _scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def _paper_mode() -> bool:
    return os.environ.get("REPRO_BENCH_PAPER", "") == "1"


def scaled(n: int, minimum: int = 1) -> int:
    """Apply the REPRO_BENCH_SCALE multiplier to a size."""
    return max(minimum, int(round(n * _scale())))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def datasets() -> dict[str, DatasetConfig]:
    """The active dataset family (scaled by default)."""
    return PAPER_DATASETS if _paper_mode() else SCALED_DATASETS


@pytest.fixture(scope="session")
def bench_sizes() -> dict:
    """Centralized experiment sizes, after scaling."""
    if _paper_mode():
        return {
            "figure5_db_sizes": [100, 500, 1000, 2000, 3000],
            "figure6_db_size": 1000,
            "queries_per_workload": 100,
            "table2_sample": None,
            "index_build_contracts": 3000,
            "persist_contracts": 500,
        }
    return {
        "figure5_db_sizes": [scaled(25), scaled(50), scaled(100),
                             scaled(200), scaled(400)],
        # complex-contract BAs have a heavy transition-count tail (the
        # paper's Table 2 shows the same stddev effect), so the 3x3 grid
        # uses a smaller per-complexity database than the Figure 5 sweep
        "figure6_db_size": scaled(60),
        "queries_per_workload": scaled(10, minimum=4),
        "table2_sample": scaled(40),
        "index_build_contracts": scaled(120),
        # the persistence acceptance bar is a >=50-contract corpus, so
        # the scale multiplier never shrinks below that
        "persist_contracts": scaled(60, minimum=50),
    }
