"""Warm-cache workload serving: repeated queries + batched evaluation.

Not a paper figure — the serving-stack counterpart of §7.1's runtime
module.  Every ``bench_*.py`` sweep (and any production query mix with
popular queries) re-issues the same query texts; the compilation cache
turns those repeats from recompile-per-call into warm-cache serving.
This benchmark measures exactly that regime and writes the broker's
aggregate metrics (cache hit rate, per-stage latency histograms,
pruning distributions) to ``results/workload_cache.txt``.

Shape assertions:

* after the first round every repeat is a cache hit;
* warm per-call translation + prefilter time collapses versus cold
  (the compiled record already holds the BA and pruning condition);
* ``query_many`` (threaded permission checks) returns results identical
  to serial evaluation.
"""

import statistics

from repro.bench.harness import (
    build_database,
    specs_to_formulas,
    workload_metrics_table,
)
from repro.bench.reporting import format_table, write_report
from repro.broker.database import BrokerConfig, ContractDatabase
from repro.broker.options import QueryOptions


ROUNDS = 20


def _workload(datasets, bench_sizes):
    contracts = datasets["simple_contracts"].generate(
        bench_sizes["figure5_db_sizes"][0]
    )
    queries = specs_to_formulas(
        datasets["medium_queries"].generate(
            bench_sizes["queries_per_workload"]
        )
    )
    return contracts, queries


def test_warm_cache_workload(benchmark, datasets, bench_sizes, results_dir):
    contracts, queries = _workload(datasets, bench_sizes)
    db = build_database(contracts, BrokerConfig())

    def serve():
        results = []
        for _ in range(ROUNDS):
            results.append([db.query(q) for q in queries])
        return results

    rounds = benchmark.pedantic(serve, rounds=1, iterations=1)

    cold, warm_rounds = rounds[0], rounds[1:]
    stats = db.cache_stats()
    # every query text after round one is a compilation-cache hit
    assert stats.misses == len(queries)
    assert stats.hits == (ROUNDS - 1) * len(queries)
    assert all(
        r.stats.cache_hit for round_ in warm_rounds for r in round_
    )

    # warm compilation cost (cache lookup) collapses vs the cold compile
    cold_compile = [
        r.stats.translation_seconds + r.stats.prefilter_seconds
        for r in cold
    ]
    warm_compile = [
        statistics.median(
            round_[i].stats.translation_seconds
            + round_[i].stats.prefilter_seconds
            for round_ in warm_rounds
        )
        for i in range(len(queries))
    ]
    assert sum(warm_compile) < sum(cold_compile)

    per_query = format_table(
        ["query", "cold compile (ms)", "warm compile (ms)", "collapse"],
        [
            (i, round(c * 1000, 3), round(w * 1000, 3),
             f"{c / max(w, 1e-9):.0f}x")
            for i, (c, w) in enumerate(zip(cold_compile, warm_compile))
        ],
        title=f"Repeated workload ({len(queries)} queries x {ROUNDS} "
              "rounds) - compilation cost per call",
    )
    metrics = workload_metrics_table(db)
    write_report(results_dir / "workload_cache.txt",
                 per_query + "\n\n" + metrics)


def test_benchmark_query_many_parity(benchmark, datasets, bench_sizes):
    """Batched parallel evaluation is bit-identical to serial and is the
    timed entry (thread pool over permission checks)."""
    contracts, queries = _workload(datasets, bench_sizes)
    db = build_database(contracts, BrokerConfig())
    serial = [db.query(q).contract_ids for q in queries]

    results = benchmark(lambda: db.query_many(queries, QueryOptions(workers=4)))

    assert [r.contract_ids for r in results] == serial
    assert [r.stats.permitted for r in results] == [
        len(ids) for ids in serial
    ]
