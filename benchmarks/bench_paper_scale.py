"""Paper-parameter smoke run.

The scaled datasets trade the paper's exact parameters for wall-clock;
this benchmark keeps the paper's *complexity class* — the 20-event
vocabulary and 5-pattern contracts with 1–2-pattern queries of Table 2 —
and runs a smaller database of them end to end, confirming the pipeline
handles the paper's actual formula sizes and that the optimizations
still win there.  (A full 3000-contract sweep at these parameters is
hours of pure Python; set ``REPRO_BENCH_PAPER=1`` for the real thing.)
"""

import statistics

from repro.bench.harness import build_database, run_queries, specs_to_formulas
from repro.bench.reporting import format_table, write_report
from repro.broker.database import BrokerConfig
from repro.workload.datasets import DatasetConfig

CONTRACTS = DatasetConfig(
    "Paper-class simple contracts", 60, 5, 20, 9101, max_transitions=2000
)
QUERIES = [
    DatasetConfig("Paper-class simple queries", 6, 1, 20, 9201),
    DatasetConfig("Paper-class medium queries", 6, 2, 20, 9202),
]


def test_paper_scale_smoke(benchmark, results_dir):
    def experiment():
        db = build_database(
            CONTRACTS.generate(),
            BrokerConfig(projection_subset_cap=1),
        )
        stats = db.database_stats()
        queries = []
        for config in QUERIES:
            queries.extend(specs_to_formulas(config.generate()))
        scan, optimized = run_queries(db, queries)
        return stats, scan, optimized

    stats, scan, optimized = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    scan_avg = statistics.mean(e.seconds for e in scan)
    optimized_avg = statistics.mean(e.seconds for e in optimized)
    rows = [
        ("contracts", stats["contracts"]),
        ("BA states avg", round(stats["states_avg"], 1)),
        ("BA transitions avg", round(stats["transitions_avg"], 1)),
        ("queries", len(scan)),
        ("scan avg (ms)", round(scan_avg * 1000, 1)),
        ("optimized avg (ms)", round(optimized_avg * 1000, 1)),
        ("aggregate speedup", round(scan_avg / optimized_avg, 1)),
    ]
    write_report(
        results_dir / "paper_scale.txt",
        format_table(
            ["metric", "value"],
            rows,
            title="Paper-parameter smoke run (vocab 20, 5-pattern "
                  "contracts; paper Table 2 reports 31 states / 629 "
                  "transitions avg for this class)",
        ),
    )

    # the paper's complexity class is handled and the optimizations win
    assert stats["states_avg"] > 10     # genuinely paper-sized automata
    assert optimized_avg < scan_avg