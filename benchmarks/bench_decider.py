"""Object vs. encoded decider hot loop (ROADMAP item 2).

Measures the flat int/bitset deciders of :mod:`repro.automata.encode` /
:mod:`repro.core.permission` against their object twins on the same
contract x query sweep, with every registration-time artifact (seeds,
encodings, bindings) prepared up front — i.e. exactly the per-check
work the broker's steady state pays.  Both sides decide the identical
pair set, and the conformance lattice's ``ndfs-encoded`` /
``scc-encoded`` cells prove the answers bit-identical, so this is a
pure representation comparison.

Beyond the pytest-benchmark registration, the run writes the measured
medians to ``BENCH_decider.json`` at the repository root: the committed
copy is the tracked perf baseline (compare against it before accepting
a decider change), and CI's bench-smoke step regenerates it and asserts
the speedup floor below.

The floor is deliberately conservative (shared CI runners are noisy);
the committed baseline records the real local numbers (~13x NDFS,
~5x SCC on the complex-contract sweep).
"""

import json
import statistics
import sys
import time
from pathlib import Path

from repro.automata.encode import bind_query, encode_automaton
from repro.automata.ltl2ba import translate
from repro.bench.reporting import format_table, write_report
from repro.core.permission import permits, permits_encoded
from repro.core.seeds import compute_seeds
from repro.ltl.ast import conj

from .conftest import scaled

#: CI assertion floor — far under the local medians so runner noise
#: can't flake the build, but high enough to catch a regression that
#: erases the representation win.
MIN_SPEEDUP = {"ndfs": 2.0, "scc": 1.5}
ROUNDS = 5

BASELINE_PATH = Path(__file__).parent.parent / "BENCH_decider.json"


def _sweep_fixtures(datasets):
    contracts = []
    for spec in datasets["complex_contracts"].generate(scaled(10)):
        formula = conj(spec.clauses)
        ba = translate(formula)
        vocabulary = formula.variables()
        encoded = encode_automaton(ba, vocabulary)
        seeds = compute_seeds(ba)
        contracts.append(
            (ba, vocabulary, seeds, encoded, encoded.state_mask(seeds))
        )
    queries = []
    for spec in datasets["medium_queries"].generate(scaled(6)):
        ba = translate(conj(spec.clauses))
        queries.append((ba, encode_automaton(ba)))
    bindings = {
        (ci, qi): bind_query(contract[3], query[1])
        for ci, contract in enumerate(contracts)
        for qi, query in enumerate(queries)
    }
    return contracts, queries, bindings


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_benchmark_decider_encoding(benchmark, datasets, results_dir):
    contracts, queries, bindings = _sweep_fixtures(datasets)

    def object_sweep(algorithm):
        for ba, vocabulary, seeds, _, _ in contracts:
            for query_ba, _ in queries:
                permits(ba, query_ba, vocabulary,
                        algorithm=algorithm, seeds=seeds)

    def encoded_sweep(algorithm):
        for ci, (_, _, _, encoded, seeds_mask) in enumerate(contracts):
            for qi, (_, encoded_query) in enumerate(queries):
                permits_encoded(
                    encoded, encoded_query, bindings[ci, qi],
                    algorithm=algorithm, seeds_mask=seeds_mask,
                )

    measured = {}
    for algorithm in ("ndfs", "scc"):
        object_median = statistics.median(
            _time(lambda: object_sweep(algorithm)) for _ in range(ROUNDS)
        )
        encoded_median = statistics.median(
            _time(lambda: encoded_sweep(algorithm)) for _ in range(ROUNDS)
        )
        measured[algorithm] = {
            "object_seconds": round(object_median, 6),
            "encoded_seconds": round(encoded_median, 6),
            "speedup": round(object_median / encoded_median, 2),
        }

    doc = {
        "benchmark": "decider hot loop, object vs encoded",
        "sweep": {
            "contracts": len(contracts),
            "queries": len(queries),
            "pairs": len(bindings),
            "rounds": ROUNDS,
            "datasets": ["complex_contracts", "medium_queries"],
        },
        "python": sys.version.split()[0],
        "results": measured,
    }
    BASELINE_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    write_report(
        results_dir / "decider_encoding.txt",
        format_table(
            ["algorithm", "object s", "encoded s", "speedup"],
            [
                [alg, row["object_seconds"], row["encoded_seconds"],
                 f"{row['speedup']}x"]
                for alg, row in measured.items()
            ],
            title="Decider hot loop: object vs flat int/bitset encoding",
        ),
    )

    for algorithm, floor in MIN_SPEEDUP.items():
        assert measured[algorithm]["speedup"] >= floor, (
            f"{algorithm}: encoded decider only "
            f"{measured[algorithm]['speedup']}x faster (floor {floor}x) — "
            f"regression against BENCH_decider.json baseline?"
        )

    # the timed callable pytest-benchmark tracks: the default-algorithm
    # encoded sweep (what a broker query actually runs per candidate)
    benchmark(lambda: encoded_sweep("ndfs"))
