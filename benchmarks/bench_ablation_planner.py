"""Ablation: per-query planning vs always-on optimizations.

§1 observes the two techniques serve different query profiles; the
:class:`repro.broker.planner.QueryPlanner` engages each only where its
profile fits.  This ablation compares three policies on a mixed
workload: plain scan, always-both, and planned — answers must be
identical, and the planner should be competitive with always-both while
skipping machinery on queries it cannot help.
"""

import statistics
from dataclasses import replace

from repro.bench.harness import build_database, specs_to_formulas
from repro.bench.reporting import format_table, write_report
from repro.broker.database import BrokerConfig
from repro.broker.options import QueryOptions
from repro.broker.planner import QueryPlanner


def test_ablation_planner(benchmark, datasets, bench_sizes, results_dir):
    def experiment():
        contracts = datasets["simple_contracts"].generate(
            max(40, bench_sizes["figure6_db_size"] // 2)
        )
        queries = []
        for key in ("simple_queries", "medium_queries", "complex_queries"):
            config = replace(
                datasets[key],
                size=max(4, bench_sizes["queries_per_workload"] // 2),
            )
            queries.extend(specs_to_formulas(config.generate()))
        db = build_database(contracts, BrokerConfig())
        for query in queries:  # warm materializations
            db.query(query)

        planner = QueryPlanner()
        policies = {
            "scan": lambda q: db.query(q, QueryOptions(
                use_prefilter=False, use_projections=False
            )),
            "always-both": lambda q: db.query(q),
            "planned": lambda q: db.query(
                q, QueryOptions(use_planner=True, planner=planner)
            ),
        }
        import time

        results = {}
        baseline = None
        for name, run in policies.items():
            times = []
            answers = []
            for query in queries:
                start = time.perf_counter()
                result = run(query)
                # wall time around the whole call, so the planned policy
                # pays for its planning translation like everyone else
                times.append(time.perf_counter() - start)
                answers.append(frozenset(result.contract_ids))
            if baseline is None:
                baseline = answers
            assert answers == baseline, f"policy {name} changed answers"
            results[name] = statistics.mean(times)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    scan = results["scan"]
    rows = [
        (name, round(seconds * 1000, 2), round(scan / seconds, 2))
        for name, seconds in results.items()
    ]
    write_report(
        results_dir / "ablation_planner.txt",
        format_table(
            ["policy", "avg query (ms)", "speedup vs scan"],
            rows,
            title="Ablation - per-query planning vs always-on "
                  "optimizations (simple contracts, mixed queries)",
        ),
    )

    # the planner must beat the scan and stay in the same league as
    # always-both (it pays one extra query translation for the plan)
    assert results["planned"] < scan
    assert results["planned"] < 2.5 * results["always-both"]
