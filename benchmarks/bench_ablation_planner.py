"""Ablation: cost-based planning vs the static pipeline configurations.

§1 observes the two techniques serve different query profiles; the
cost-based :class:`repro.broker.planner.QueryPlanner` prices both per
query from the database statistics and engages each only where its
profile fits.  This ablation runs four *workload profiles* against the
four static configurations — plain scan, prefilter-only,
projections-only, always-both — plus the planner, on one shared
database.  Answers must be identical under every policy (invariant 14:
plans change time, never answers); the timing claim is that the planner
tracks the best static configuration on every profile while no static
configuration does (each has a profile where it loses badly).

Beyond the pytest-benchmark registration, the run writes the measured
medians and the derived ratios to ``BENCH_planner.json`` at the
repository root: the committed copy is the tracked perf baseline
(regenerated locally, it shows the planner within 5% of the best static
configuration on every profile and ≥2x faster than the worst on at
least one), and CI's bench-smoke step regenerates it and asserts the
conservative floors below.
"""

import json
import statistics
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.bench.harness import specs_to_formulas
from repro.bench.reporting import format_table, write_report
from repro.broker.database import BrokerConfig, ContractDatabase
from repro.broker.options import QueryOptions
from repro.broker.planner import QueryPlanner
from repro.broker.relational import MATCH_ALL, AttributeFilter, le
from repro.automata.ltl2ba import translate
from repro.index.pruning import pruning_condition
from repro.ltl.parser import parse

#: CI assertion floors — looser than the committed-baseline claims
#: (within 5% of best / ≥2x over worst) so shared-runner noise cannot
#: flake the build, but tight enough that a planner that stops tracking
#: the best static configuration, or loses its win over the worst one,
#: fails the job.
MAX_PLANNER_VS_BEST = 1.30
MIN_WORST_VS_PLANNER = 1.4
ROUNDS = 7

BASELINE_PATH = Path(__file__).parent.parent / "BENCH_planner.json"

#: The static configurations the planner is arbitrating between.  The
#: planner additionally chooses the stage order, which no static
#: configuration controls (they run the executor's default).
STATIC_POLICIES = {
    "scan": dict(use_prefilter=False, use_projections=False),
    "prefilter-only": dict(use_prefilter=True, use_projections=False),
    "projections-only": dict(use_prefilter=False, use_projections=True),
    "both": dict(use_prefilter=True, use_projections=True),
}

#: Queries the §4 index cannot prune (tautologies: every behavior
#: satisfies them, so the pruning condition is TRUE and any probe is
#: pure overhead).  Over the scaled datasets' ``p*`` vocabulary.
UNPRUNABLE_QUERIES = (
    "true",
    "G(p1 -> p1)",
    "G(p2 -> p2)",
    "F p3 || !F p3",
    "G(p4 -> p4)",
    "F p5 || !F p5",
    "p6 || !p6",
    "G(p7 -> p7)",
)


def _build_database(datasets, size: int) -> ContractDatabase:
    """Simple contracts with synthetic relational attributes (price
    bands and cycling routes) so the filtered profile has a selective
    predicate to exercise.

    Contracts draw from the paper's 20-event vocabulary (Table 2) while
    the scaled query workloads keep their narrower one — so per-label
    posting lists are sparse and the §4 index has real pruning room, as
    in the paper's setup."""
    db = ContractDatabase(BrokerConfig())
    specs = replace(
        datasets["simple_contracts"], vocabulary_size=20
    ).generate(size)
    for i, spec in enumerate(specs):
        db.register(
            f"contract-{i}",
            list(spec.clauses),
            attributes={
                "price": 100 * (i % 20 + 1),
                "route": f"R{i % 16}",
            },
        )
    return db


def _wide_condition_queries(db, datasets, count: int):
    """Complex queries whose pruning conditions are the widest of a
    larger pool (big and/or trees, labels past the trie depth cap that
    fan out into subset probes) — the §4 index's hostile profile, where
    probing costs more than the checks it saves."""
    pool = specs_to_formulas(
        replace(datasets["complex_queries"], size=4 * count).generate()
    )
    scored = []
    for query in pool:
        condition = pruning_condition(translate(query))
        scored.append((db.index.estimate_probe_cost(condition), query))
    scored.sort(key=lambda pair: pair[0], reverse=True)
    return [query for _, query in scored[:count]]


def _profiles(db, datasets, queries_per_profile: int):
    """(name, queries, attribute_filter) per workload profile."""
    def formulas(key):
        config = replace(datasets[key], size=queries_per_profile)
        return specs_to_formulas(config.generate())

    filtered = AttributeFilter.where(le("price", 1000))
    return [
        ("simple-queries", formulas("simple_queries"), MATCH_ALL),
        ("complex-queries", formulas("complex_queries"), MATCH_ALL),
        ("wide-conditions",
         _wide_condition_queries(db, datasets, 4), MATCH_ALL),
        ("unprunable", [parse(q) for q in UNPRUNABLE_QUERIES], MATCH_ALL),
        ("filtered", formulas("simple_queries"), filtered),
    ]


def _sweep(db, queries, options) -> tuple[float, tuple]:
    """One timed pass over the profile's queries; returns (seconds,
    answer signature)."""
    answers = []
    start = time.perf_counter()
    for query in queries:
        result = db.query(query, options)
        answers.append(frozenset(result.contract_ids))
    return time.perf_counter() - start, tuple(answers)


def test_ablation_planner(benchmark, datasets, bench_sizes, results_dir):
    db = _build_database(
        datasets, max(160, 2 * bench_sizes["figure6_db_size"])
    )
    profiles = _profiles(
        db, datasets, max(6, bench_sizes["queries_per_workload"] // 2)
    )
    planner = QueryPlanner()

    measured = {}
    for name, queries, attribute_filter in profiles:
        policies = {
            policy: QueryOptions(
                attribute_filter=attribute_filter, **toggles
            )
            for policy, toggles in STATIC_POLICIES.items()
        }
        policies["planner"] = QueryOptions(
            attribute_filter=attribute_filter,
            use_planner=True,
            planner=planner,
        )

        # one untimed pass per policy: compiles the queries, materializes
        # the lazy projection quotients, and fills the plan cache — the
        # steady-state regime every policy is then timed in
        signature = None
        for options in policies.values():
            _, answers = _sweep(db, queries, options)
            if signature is None:
                signature = answers
            assert answers == signature, f"{name}: answers diverged"

        # policies interleave round-robin so clock drift and transient
        # machine load hit every policy equally instead of biasing
        # whichever one happened to run during the slow stretch
        samples = {policy: [] for policy in policies}
        for _ in range(ROUNDS):
            for policy, options in policies.items():
                seconds, answers = _sweep(db, queries, options)
                assert answers == signature, (
                    f"{name}/{policy}: answers diverged"
                )
                samples[policy].append(seconds)
        timings = {
            policy: statistics.median(times)
            for policy, times in samples.items()
        }

        statics = {p: timings[p] for p in STATIC_POLICIES}
        best = min(statics, key=statics.get)
        worst = max(statics, key=statics.get)
        measured[name] = {
            **{p: round(s, 6) for p, s in timings.items()},
            "queries": len(queries),
            "best_static": best,
            "worst_static": worst,
            "planner_vs_best": round(timings["planner"] / statics[best], 3),
            "worst_vs_planner": round(
                statics[worst] / timings["planner"], 2
            ),
        }

    doc = {
        "benchmark": "planner vs static pipeline configurations",
        "sweep": {
            "contracts": len(db),
            "profiles": {
                name: row["queries"] for name, row in measured.items()
            },
            "rounds": ROUNDS,
            "static_policies": sorted(STATIC_POLICIES),
        },
        "python": sys.version.split()[0],
        "results": measured,
    }
    BASELINE_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    write_report(
        results_dir / "ablation_planner.txt",
        format_table(
            ["profile", "best static", "worst static",
             "planner/best", "worst/planner"],
            [
                [name, row["best_static"], row["worst_static"],
                 row["planner_vs_best"], f"{row['worst_vs_planner']}x"]
                for name, row in measured.items()
            ],
            title="Ablation - cost-based planner vs static pipeline "
                  "configurations (simple contracts)",
        ),
    )

    for name, row in measured.items():
        assert row["planner_vs_best"] <= MAX_PLANNER_VS_BEST, (
            f"{name}: planner {row['planner_vs_best']}x the best static "
            f"configuration ({row['best_static']}; ceiling "
            f"{MAX_PLANNER_VS_BEST}x) — regression against "
            "BENCH_planner.json baseline?"
        )
    assert any(
        row["worst_vs_planner"] >= MIN_WORST_VS_PLANNER
        for row in measured.values()
    ), (
        "no profile shows the planner beating the worst static "
        f"configuration by ≥{MIN_WORST_VS_PLANNER}x — regression against "
        "BENCH_planner.json baseline?"
    )

    # the timed callable pytest-benchmark tracks: the planned policy over
    # every profile (what a broker configured with use_planner serves)
    def planned_sweeps():
        for _, queries, attribute_filter in profiles:
            _sweep(db, queries, QueryOptions(
                attribute_filter=attribute_filter,
                use_planner=True,
                planner=planner,
            ))

    benchmark(planned_sweeps)
