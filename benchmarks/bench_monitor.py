"""Object vs. encoded streaming monitor hot loop (ROADMAP item 3).

Replays one deterministic event stream over a fleet of complex
contracts twice: once through per-contract
:class:`~repro.broker.monitor.ContractMonitor` objects (the object-graph
walk), once through the :class:`~repro.stream.FleetMonitor` engine
(packed-int frontiers, memoized snapshot tables, live pruning baked into
the successor masks).  The conformance lattice's ``monitor-stream`` /
``monitor-unknown`` cells prove the two sides verdict-identical on every
prefix, so this is a pure representation comparison.

The stream is a round-robin interleaving of per-contract *allowed*
traces (random walks over each automaton's live states), so every
monitor stays ACTIVE for the whole replay — a violated monitor
short-circuits to a near-free return on both sides, which would measure
dispatch rather than the frontier step this benchmark is about.

All monitors are constructed outside the timed region — construction
(liveness analysis, row compilation) is registration-time work the
steady state never repays.  Each round replays the full stream from the
initial frontiers.

Beyond the pytest-benchmark registration, the run writes the measured
medians to ``BENCH_monitor.json`` at the repository root: the committed
copy is the tracked perf baseline, and CI's bench-smoke step regenerates
it and asserts the speedup floor below.

The floor is deliberately conservative (shared CI runners are noisy);
the committed baseline records the real local number (>=10x events/sec
on the complex-contract fleet).
"""

import json
import random
import statistics
import sys
import time
from pathlib import Path

from repro.automata import graph
from repro.automata.encode import encode_automaton
from repro.automata.ltl2ba import translate
from repro.bench.reporting import format_table, write_report
from repro.broker.monitor import ContractMonitor
from repro.ltl.ast import conj
from repro.stream import FleetMonitor

from .conftest import scaled

#: CI assertion floor — far under the local median so runner noise
#: can't flake the build, but high enough to catch a regression that
#: erases the representation win.
MIN_SPEEDUP = 3.0
ROUNDS = 5
#: events per contract per replay
TRACE_LENGTH = 120

BASELINE_PATH = Path(__file__).parent.parent / "BENCH_monitor.json"


def _allowed_trace(ba, rng, length):
    """A random walk over the automaton's live states, emitting for each
    step a snapshot that satisfies the chosen label (its positive
    literals) — a history the contract allows, so the monitor's frontier
    never empties."""
    reachable = graph.reachable_from(ba.initial, ba.successor_states)
    cores = graph.states_on_accepting_cycles(
        reachable, ba.successor_states, ba.is_final
    )
    live = graph.backward_reachable(cores, reachable, ba.successor_states)
    state = ba.initial
    trace = []
    for _ in range(length):
        options = [
            (label, dst) for label, dst in ba.successors(state)
            if dst in live
        ]
        label, state = rng.choice(options)
        trace.append(frozenset(
            lit.event for lit in label.literals if lit.positive
        ))
    return trace


def _fleet_fixtures(datasets):
    rng = random.Random("bench-monitor")
    length = scaled(TRACE_LENGTH)
    contracts = []
    traces = []
    for i, spec in enumerate(
        datasets["complex_contracts"].generate(scaled(30))
    ):
        formula = conj(spec.clauses)
        ba = translate(formula)
        vocab = formula.variables()
        contracts.append((f"contract-{i}", ba, vocab,
                          encode_automaton(ba, vocab)))
        traces.append(_allowed_trace(ba, rng, length))
    # round-robin interleaving: the stream a shared event bus delivers
    stream = [
        (contracts[i][0], traces[i][t])
        for t in range(length)
        for i in range(len(contracts))
    ]
    return contracts, stream


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_benchmark_monitor_stream(benchmark, datasets, results_dir):
    contracts, stream = _fleet_fixtures(datasets)

    def object_replay(monitors):
        for name, snap in stream:
            monitors[name].advance(snap)

    def fleet_replay(fleet):
        for name, snap in stream:
            fleet.advance(name, snap)

    # construction stays outside the timed region on both sides: a
    # fresh object fleet per round, one engine reset to its initial
    # frontiers per round (reset keeps the compiled tables, exactly the
    # broker's steady state)
    object_times = []
    for _ in range(ROUNDS):
        monitors = {
            name: ContractMonitor(ba, vocab)
            for name, ba, vocab, _ in contracts
        }
        object_times.append(_time(lambda: object_replay(monitors)))
    object_median = statistics.median(object_times)

    fleet = FleetMonitor()
    for name, _, _, encoded in contracts:
        fleet.add_contract(name, encoded)
    fleet_times = []
    for _ in range(ROUNDS):
        fleet.reset()
        fleet_times.append(_time(lambda: fleet_replay(fleet)))
        assert len(fleet.active_contracts) == len(contracts), (
            "allowed traces must keep the whole fleet ACTIVE"
        )
    fleet_median = statistics.median(fleet_times)

    speedup = object_median / fleet_median
    measured = {
        "object_seconds": round(object_median, 6),
        "encoded_seconds": round(fleet_median, 6),
        "object_events_per_second": round(len(stream) / object_median, 1),
        "encoded_events_per_second": round(len(stream) / fleet_median, 1),
        "speedup": round(speedup, 2),
    }

    doc = {
        "benchmark": "streaming monitor hot loop, object vs encoded fleet",
        "sweep": {
            "contracts": len(contracts),
            "stream_events": len(stream),
            "events_per_contract": len(stream) // len(contracts),
            "rounds": ROUNDS,
            "datasets": ["complex_contracts"],
        },
        "python": sys.version.split()[0],
        "results": measured,
    }
    BASELINE_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    write_report(
        results_dir / "monitor_stream.txt",
        format_table(
            ["path", "seconds", "events/s"],
            [
                ["object monitors", measured["object_seconds"],
                 measured["object_events_per_second"]],
                ["encoded fleet", measured["encoded_seconds"],
                 measured["encoded_events_per_second"]],
                ["speedup", f"{measured['speedup']}x", ""],
            ],
            title="Streaming monitor: object-graph walk vs encoded frontiers",
        ),
    )

    assert speedup >= MIN_SPEEDUP, (
        f"encoded fleet only {measured['speedup']}x faster than object "
        f"monitors (floor {MIN_SPEEDUP}x) — regression against "
        f"BENCH_monitor.json baseline?"
    )

    # the timed callable pytest-benchmark tracks: the engine replay
    # (what `contract-broker monitor` runs per event)
    def tracked():
        fleet.reset()
        fleet_replay(fleet)

    benchmark(tracked)
