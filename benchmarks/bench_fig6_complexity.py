"""Figure 6: scaling with contract and query complexity.

Regenerates the paper's second experiment batch (§7.3): the 3x3 grid of
contract complexity (simple/medium/complex databases of fixed size) x
query complexity (simple/medium/complex workloads), reporting the
average speedup of the optimized system per cell.

Reproduced shape (paper): speedup *decreases* with query complexity
(complex queries cite more variables and cannot use the most simplified
projections) and does not degrade — the paper sees it *increase* — with
contract complexity (more variables to project away, so the bisimulation
technique bites harder).
"""

import statistics
from dataclasses import replace

from repro.bench.harness import run_figure6
from repro.bench.reporting import format_table, write_report
from repro.broker.database import BrokerConfig


def test_figure6(benchmark, datasets, bench_sizes, results_dir):
    contract_configs = [
        datasets["simple_contracts"],
        datasets["medium_contracts"],
        datasets["complex_contracts"],
    ]
    query_configs = [
        replace(datasets[key], size=bench_sizes["queries_per_workload"])
        for key in ("simple_queries", "medium_queries", "complex_queries")
    ]

    def experiment():
        return run_figure6(
            contract_configs=contract_configs,
            query_configs=query_configs,
            database_size=bench_sizes["figure6_db_size"],
            broker_config=BrokerConfig(),
        )

    cells = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = format_table(
        ["contracts", "queries", "speedup avg", "speedup stdev",
         "scan avg (ms)", "optimized avg (ms)"],
        [c.row() for c in cells],
        title=f"Figure 6 - average speedup vs contract and query "
              f"complexity (database size = "
              f"{bench_sizes['figure6_db_size']})",
    )
    write_report(results_dir / "figure6.txt", table)

    # -- the paper's qualitative claims ------------------------------------
    # optimized wins in every cell
    for cell in cells:
        assert cell.optimized_avg_seconds < cell.scan_avg_seconds, (
            cell.contract_dataset, cell.query_dataset,
        )

    # speedup decreases with query complexity (averaged over contract
    # complexities, as in the paper's grouped bars)
    by_query: dict[str, list[float]] = {}
    for cell in cells:
        by_query.setdefault(cell.query_dataset, []).append(cell.speedup_avg)
    simple = statistics.mean(by_query["Simple queries"])
    complex_ = statistics.mean(by_query["Complex queries"])
    assert simple > complex_

    # speedup holds up as contracts get more complex
    by_contract: dict[str, list[float]] = {}
    for cell in cells:
        by_contract.setdefault(cell.contract_dataset, []).append(
            cell.speedup_avg
        )
    assert statistics.mean(by_contract["Complex contracts"]) > (
        statistics.mean(by_contract["Simple contracts"]) * 0.5
    )


def test_benchmark_complex_contract_check(benchmark, datasets):
    """Micro view: one permission check of a complex contract against a
    medium query (the grid's unit of work)."""
    from repro.automata.ltl2ba import translate
    from repro.core.permission import permits
    from repro.core.seeds import compute_seeds
    from repro.ltl.ast import conj

    contract_spec = datasets["complex_contracts"].generate(1)[0]
    query_spec = datasets["medium_queries"].generate(1)[0]
    contract_formula = conj(contract_spec.clauses)
    contract = translate(contract_formula)
    query = translate(conj(query_spec.clauses))
    seeds = compute_seeds(contract)
    vocabulary = contract_formula.variables()

    benchmark(lambda: permits(contract, query, vocabulary, seeds=seeds))
