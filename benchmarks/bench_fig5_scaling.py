"""Figure 5: scaling with database size.

Regenerates the paper's first experiment batch (§7.3): databases of
simple contracts of growing size, all query complexities mixed, average
unoptimized ('scan') time, optimized time, and per-query speedup with
standard deviation.

Reproduced shape (paper, 100→3000 contracts): both curves grow roughly
linearly with database size; the optimized system is faster everywhere;
the average speedup *increases* with database size ("a common effect of
indexing schemes") and is rarely below a few x.

The full sweep runs as a single-round pytest-benchmark entry so that
``pytest benchmarks/ --benchmark-only`` both times it and writes
``results/figure5.txt``.
"""

from dataclasses import replace

from repro.bench.harness import run_figure5
from repro.bench.reporting import format_bar_chart, format_table, write_report
from repro.broker.database import BrokerConfig
from repro.broker.options import QueryOptions


def _query_configs(datasets, bench_sizes):
    return [
        replace(datasets[key], size=bench_sizes["queries_per_workload"])
        for key in ("simple_queries", "medium_queries", "complex_queries")
    ]


def test_figure5(benchmark, datasets, bench_sizes, results_dir):
    def experiment():
        return run_figure5(
            contract_config=datasets["simple_contracts"],
            query_configs=_query_configs(datasets, bench_sizes),
            database_sizes=bench_sizes["figure5_db_sizes"],
            broker_config=BrokerConfig(),
        )

    points = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = format_table(
        ["db size", "scan avg (ms)", "optimized avg (ms)",
         "speedup avg", "speedup stdev", "speedup min", "speedup max",
         "aggregate speedup"],
        [p.row() for p in points],
        title="Figure 5 - speedup and running times vs database size "
              "(simple contracts, all query complexities)",
    )
    chart = format_bar_chart(
        [f"{p.database_size} contracts" for p in points],
        [p.speedup_avg for p in points],
        title="Figure 5 - average speedup",
    )
    write_report(results_dir / "figure5.txt", table + "\n\n" + chart)

    # -- the paper's qualitative claims ------------------------------------
    first, last = points[0], points[-1]
    # scan time grows with the database (near-linear growth)
    assert last.scan_avg_seconds > first.scan_avg_seconds
    # the optimized system wins on every database size
    for point in points:
        assert point.optimized_avg_seconds < point.scan_avg_seconds
    # the speedup does not erode as the database grows (the paper sees it
    # *increase*; a noise margin keeps the assertion robust on shared
    # machines — the reported table shows the actual trend)
    assert last.aggregate_speedup > 0.6 * first.aggregate_speedup
    assert last.aggregate_speedup > 1.2


def test_benchmark_optimized_query(benchmark, datasets, bench_sizes):
    """pytest-benchmark micro view: one optimized query on a mid-size DB."""
    from repro.bench.harness import build_database, specs_to_formulas

    size = bench_sizes["figure5_db_sizes"][1]
    db = build_database(
        datasets["simple_contracts"].generate(size), BrokerConfig()
    )
    query = specs_to_formulas(datasets["simple_queries"].generate(1))[0]
    db.query(query)  # warm projections

    result = benchmark(lambda: db.query(query))
    assert result.stats.database_size == size


def test_benchmark_scan_query(benchmark, datasets, bench_sizes):
    """The unoptimized counterpart of the micro view above."""
    from repro.bench.harness import build_database, specs_to_formulas

    size = bench_sizes["figure5_db_sizes"][1]
    db = build_database(
        datasets["simple_contracts"].generate(size), BrokerConfig()
    )
    query = specs_to_formulas(datasets["simple_queries"].generate(1))[0]

    result = benchmark(
        lambda: db.query(query, QueryOptions(
            use_prefilter=False, use_projections=False))
    )
    assert result.stats.candidates == size
