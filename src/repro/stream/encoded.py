"""The encoded-frontier monitor core.

One :class:`EncodedMonitor` tracks one contract.  All per-event work
happens on machine integers:

* the **frontier** (the set of automaton states consistent with the
  observed history, live states only) is one packed int;
* a snapshot is interned once into a vocabulary bitmask, the mask into
  the bitset of *satisfied label classes*, and that bitset into a
  per-state table of combined successor masks — three memo layers, so a
  repeated snapshot advances the frontier with a single dict hit and a
  few bitwise ORs;
* live-state pruning (states that can still contribute to an accepting
  run) is baked into the successor masks at compile time, exactly
  mirroring the eager pruning of the object monitor.

Watch queries reduce to one precomputed int as well: see
:func:`winning_mask`.
"""

from __future__ import annotations

from typing import Iterable

from ..automata import graph
from ..automata.buchi import BuchiAutomaton
from ..automata.encode import (
    EncodedAutomaton,
    QueryBinding,
    _iter_bits,
    bind_query,
    encode_automaton,
)
from ..errors import MonitorError
from .options import MonitorOptions, MonitorStatus

#: Memo-size cap: a streaming workload normally sees a small set of
#: distinct snapshots, but an adversarial stream must not grow the
#: tables without bound.  On overflow the memo is simply dropped and
#: rebuilt — correctness never depends on it.
_MEMO_CAP = 4096


def live_state_mask(enc: EncodedAutomaton) -> int:
    """Bitset of *live* state ids: reachable from the initial state and
    able to reach a cycle through a final state.  Only these states can
    contribute to an accepting run, so the frontier is restricted to
    them (emptiness — i.e. violation — is then detected as early as the
    object monitor does)."""
    reachable = graph.reachable_from(enc.initial, enc.successor_ids)
    cores = graph.states_on_accepting_cycles(
        reachable, enc.successor_ids, enc.is_final
    )
    live = graph.backward_reachable(cores, reachable, enc.successor_ids)
    mask = 0
    for state in live:
        mask |= 1 << state
    return mask


def compile_step_rows(
    enc: EncodedAutomaton, live_mask: int
) -> tuple[tuple[tuple[int, int], ...], ...]:
    """Per-state transition rows ``((label_class, dst_mask), ...)`` with
    destinations restricted to ``live_mask`` and merged per label class.
    This is the compile-time half of the advance: at stream time a row
    entry participates iff its label class is satisfied by the
    snapshot."""
    rows = []
    for state in range(enc.num_states):
        by_class: dict[int, int] = {}
        for ti in range(enc.offsets[state], enc.offsets[state + 1]):
            dst = enc.trans_dsts[ti]
            if not (live_mask >> dst) & 1:
                continue
            label_class = enc.trans_labels[ti]
            by_class[label_class] = by_class.get(label_class, 0) | (1 << dst)
        rows.append(tuple(sorted(by_class.items())))
    return tuple(rows)


def _as_encoded_query(query) -> EncodedAutomaton:
    """Coerce an LTL string / formula / BA / prebuilt encoding into an
    encoded query automaton (over its own label events, as
    :func:`~repro.automata.encode.bind_query` expects)."""
    from ..automata.ltl2ba import translate
    from ..ltl.ast import Formula
    from ..ltl.parser import parse

    if isinstance(query, EncodedAutomaton):
        return query
    if isinstance(query, BuchiAutomaton):
        return encode_automaton(query)
    if isinstance(query, Formula):
        return encode_automaton(translate(query))
    return encode_automaton(translate(parse(query)))


def winning_mask(
    contract: EncodedAutomaton,
    query: EncodedAutomaton,
    binding: QueryBinding | None = None,
    *,
    live_mask: int | None = None,
    rows: tuple[tuple[tuple[int, int], ...], ...] | None = None,
) -> int:
    """Bitset of contract states from which ``query`` is still
    permitted: state ``s`` is set iff the compatibility product holds a
    simultaneous lasso starting at ``(s, query.initial)``.

    This is the whole trick behind O(1) watch queries: the object
    monitor's ``can_still`` builds a continuation automaton whose fresh
    initial state copies the frontier's first steps, then runs a full
    product search.  But a lasso from that fresh state enters the real
    product after one step, so permission from a frontier ``{s1..sk}``
    is exactly ``∃ i: lasso from (s_i, q0)`` — i.e.
    ``frontier & winning_mask != 0``.  (Restricting to live contract
    states loses nothing: every contract state on a witness lasso can
    itself reach an accepting cycle, hence is live.)

    The mask is computed once per (contract, query) pair by the same
    SCC characterization :func:`repro.core.permission.permits_scc_encoded`
    uses: an accepting knot is a cyclic SCC containing both a
    query-final and a contract-final pair.
    """
    if live_mask is None:
        live_mask = live_state_mask(contract)
    if rows is None:
        rows = compile_step_rows(contract, live_mask)
    if binding is None:
        binding = bind_query(contract, query)
    nq = query.num_states
    compat = binding.compat
    q_off, q_lab, q_dst = query.offsets, query.trans_labels, query.trans_dsts

    cache: dict[int, list[int]] = {}

    def expand(pair: int) -> list[int]:
        cached = cache.get(pair)
        if cached is None:
            c, q = divmod(pair, nq)
            seen_local: dict[int, None] = {}
            for qi in range(q_off[q], q_off[q + 1]):
                row = compat[q_lab[qi]]
                if not row:
                    continue
                dq = q_dst[qi]
                for label_class, dst_mask in rows[c]:
                    if (row >> label_class) & 1:
                        for dst in _iter_bits(dst_mask):
                            seen_local[dst * nq + dq] = None
            cached = list(seen_local)
            cache[pair] = cached
        return cached

    q0 = query.initial
    starts = [s * nq + q0 for s in _iter_bits(live_mask)]
    reachable: set[int] = set(starts)
    stack = list(starts)
    while stack:
        pair = stack.pop()
        for succ in expand(pair):
            if succ not in reachable:
                reachable.add(succ)
                stack.append(succ)

    query_final = query.final_mask
    contract_final = contract.final_mask
    accepting: set[int] = set()
    for component in graph.strongly_connected_components(reachable, expand):
        has_query_final = any((query_final >> (p % nq)) & 1 for p in component)
        has_contract_final = any(
            (contract_final >> (p // nq)) & 1 for p in component
        )
        if not (has_query_final and has_contract_final):
            continue
        if graph.is_cyclic_component(component, expand):
            accepting.update(component)
    winners = graph.backward_reachable(accepting, reachable, expand)

    mask = 0
    for state in _iter_bits(live_mask):
        if state * nq + q0 in winners:
            mask |= 1 << state
    return mask


class EncodedMonitor:
    """One contract's streaming monitor over the flat encoding.

    Verdict-equivalent to :class:`repro.broker.monitor.ContractMonitor`
    on every prefix (invariant 13) — ``status``, ``can_still``,
    ``violation_index`` and ``unknown_events`` all agree — but the
    per-event cost is a few dict hits and bitwise ORs instead of an
    object-graph walk.

    The encoding must cover the contract's full spec vocabulary
    (``encode_automaton(ba, spec.vocabulary)``), exactly as the broker
    builds it at registration time.
    """

    __slots__ = (
        "encoded", "options", "live_mask", "rows",
        "_frontier", "_initial_frontier", "_events_seen",
        "_violation_index", "unknown_events",
        "_snap_memo", "_sat_tables", "_watch_memo",
    )

    def __init__(
        self,
        encoded: EncodedAutomaton,
        options: MonitorOptions | None = None,
    ):
        self.encoded = encoded
        self.options = options or MonitorOptions()
        self.live_mask = live_state_mask(encoded)
        self.rows = compile_step_rows(encoded, self.live_mask)
        initial_bit = 1 << encoded.initial
        self._initial_frontier = initial_bit & self.live_mask
        self._frontier = self._initial_frontier
        self._events_seen = 0
        #: index of the first violating snapshot; ``-1`` when the
        #: contract is unsatisfiable from the start; ``None`` while ACTIVE
        self._violation_index: int | None = (
            None if self._frontier else -1
        )
        self.unknown_events = 0
        # snapshot -> (per-state step table, unknown-event count)
        self._snap_memo: dict[frozenset, tuple[tuple[int, ...], int]] = {}
        # satisfied-label-class bitset -> per-state step table (shared
        # across snapshots that satisfy the same classes)
        self._sat_tables: dict[int, tuple[int, ...]] = {}
        # query string -> winning mask
        self._watch_memo: dict[str, int] = {}

    # -- observation ------------------------------------------------------------

    def advance(self, snapshot: Iterable[str]) -> MonitorStatus:
        """Consume one snapshot and return the updated status.

        Violation is absorbing: once the frontier is empty the call
        returns immediately — no table work, no history, no
        unknown-event accounting (mirroring the object monitor's
        short-circuit)."""
        if not self._frontier:
            return MonitorStatus.VIOLATED
        snap = (
            snapshot if isinstance(snapshot, frozenset)
            else frozenset(snapshot)
        )
        entry = self._snap_memo.get(snap)
        if entry is None:
            entry = self._compile_snapshot(snap)
        table, unknown = entry
        self.unknown_events += unknown
        frontier = self._frontier
        new = 0
        while frontier:
            low = frontier & -frontier
            new |= table[low.bit_length() - 1]
            frontier ^= low
        self._frontier = new
        self._events_seen += 1
        if not new:
            self._violation_index = self._events_seen - 1
            return MonitorStatus.VIOLATED
        return MonitorStatus.ACTIVE

    def _compile_snapshot(
        self, snap: frozenset
    ) -> tuple[tuple[int, ...], int]:
        """The memo-miss path: intern a snapshot into its step table."""
        event_index = self.encoded.event_index
        mask = 0
        unknown = 0
        for event in snap:
            bit = event_index.get(event)
            if bit is None:
                unknown += 1
            else:
                mask |= 1 << bit
        if unknown and self.options.strict_vocabulary:
            bad = sorted(e for e in snap if e not in event_index)
            raise MonitorError(
                f"snapshot cites events outside the contract "
                f"vocabulary: {bad}"
            )
        sat = 0
        for label_class, (pos, neg) in enumerate(
            zip(self.encoded.label_pos, self.encoded.label_neg)
        ):
            if (pos & mask) == pos and not (neg & mask):
                sat |= 1 << label_class
        table = self._sat_tables.get(sat)
        if table is None:
            table = tuple(
                self._combined_mask(row, sat) for row in self.rows
            )
            if len(self._sat_tables) >= _MEMO_CAP:
                self._sat_tables.clear()
            self._sat_tables[sat] = table
        if len(self._snap_memo) >= _MEMO_CAP:
            self._snap_memo.clear()
        entry = (table, unknown)
        self._snap_memo[snap] = entry
        return entry

    @staticmethod
    def _combined_mask(row: tuple[tuple[int, int], ...], sat: int) -> int:
        combined = 0
        for label_class, dst_mask in row:
            if (sat >> label_class) & 1:
                combined |= dst_mask
        return combined

    def reset(self) -> None:
        """Return to the initial frontier, keeping the compiled tables
        and memos (they are history-independent)."""
        self._frontier = self._initial_frontier
        self._events_seen = 0
        self._violation_index = None if self._frontier else -1
        self.unknown_events = 0

    # -- verdicts ----------------------------------------------------------------

    @property
    def frontier(self) -> int:
        """The packed state bitset consistent with the history."""
        return self._frontier

    @property
    def possible_states(self) -> frozenset:
        """The frontier translated back to original state values."""
        return frozenset(
            self.encoded.states[i] for i in _iter_bits(self._frontier)
        )

    @property
    def status(self) -> MonitorStatus:
        if not self._frontier:
            return MonitorStatus.VIOLATED
        return MonitorStatus.ACTIVE

    @property
    def violated(self) -> bool:
        return not self._frontier

    @property
    def events_seen(self) -> int:
        """Snapshots consumed (post-violation snapshots are not)."""
        return self._events_seen

    @property
    def violation_index(self) -> int | None:
        """Index of the first violating snapshot, ``-1`` for a contract
        unsatisfiable before any event, ``None`` while ACTIVE."""
        return self._violation_index

    def watch_mask(self, query) -> int:
        """The :func:`winning_mask` of a query against this contract,
        memoized for string queries (the common registry case)."""
        if isinstance(query, str):
            cached = self._watch_memo.get(query)
            if cached is not None:
                return cached
        mask = winning_mask(
            self.encoded,
            _as_encoded_query(query),
            live_mask=self.live_mask,
            rows=self.rows,
        )
        if isinstance(query, str):
            if len(self._watch_memo) >= _MEMO_CAP:
                self._watch_memo.clear()
            self._watch_memo[query] = mask
        return mask

    def can_still(self, query) -> bool:
        """Can the history still extend to an allowed sequence whose
        future satisfies ``query``?  Equivalent to the object monitor's
        ``can_still`` (same permission semantics, contract vocabulary),
        evaluated as a single bitwise AND."""
        return bool(self._frontier & self.watch_mask(query))
