"""The fleet engine: many contracts, one event stream, a watch-query
registry, and alert records.

Events arrive either addressed to one contract or broadcast to the
whole fleet (the common case for a shared event bus).  Each delivery is
one :meth:`EncodedMonitor.advance` — a few dict hits and bitwise ORs —
and the engine emits an :class:`Alert` exactly when a verdict *flips*:

* a contract's frontier empties → ``"violated"`` (absorbing; the
  contract leaves the active set and costs nothing from then on);
* a registered watch query's winning mask no longer intersects the
  frontier → ``"watch-unsatisfiable"``.

All ``monitor.*`` metrics feed a
:class:`~repro.obs.metrics.MetricsRegistry`, so a fleet can be watched
exactly like the query path (``monitor.events``, ``monitor.violations``,
``monitor.watch_flips``, ``monitor.unknown_events``, plus batch latency
and size histograms).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import IO, Iterable, Iterator

from ..automata.encode import EncodedAutomaton
from ..errors import MonitorError
from ..obs.metrics import COUNT_BUCKETS, MetricsRegistry
from .encoded import EncodedMonitor, _as_encoded_query
from .options import MonitorOptions, MonitorStatus


@dataclass(frozen=True)
class Event:
    """One stream record: a snapshot addressed to one contract
    (``contract`` = its name) or broadcast to the fleet (``None``)."""

    events: frozenset[str]
    contract: str | None = None


@dataclass(frozen=True)
class Alert:
    """A verdict flip.

    ``event_index`` is the per-contract index of the triggering snapshot
    (``-1`` when the flip happened at registration time, before any
    event — e.g. a watch query that was never satisfiable)."""

    kind: str  #: ``"violated"`` or ``"watch-unsatisfiable"``
    contract: str
    contract_id: int | None
    watch: str | None
    event_index: int
    events: frozenset[str]

    def describe(self) -> str:
        suffix = f" watch={self.watch!r}" if self.watch else ""
        return (
            f"ALERT {self.kind} contract={self.contract!r}{suffix} "
            f"event={self.event_index} events={sorted(self.events)}"
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "contract": self.contract,
            "contract_id": self.contract_id,
            "watch": self.watch,
            "event_index": self.event_index,
            "events": sorted(self.events),
        }


@dataclass
class IngestReport:
    """The outcome of one :meth:`FleetMonitor.ingest` batch."""

    #: stream records consumed
    events: int = 0
    #: contract-monitor advances performed (a broadcast fans out)
    deliveries: int = 0
    alerts: list[Alert] = field(default_factory=list)
    #: unknown-event observations across the batch (counting mode)
    unknown_events: int = 0

    @property
    def violations(self) -> list[Alert]:
        return [a for a in self.alerts if a.kind == "violated"]


class _WatchState:
    """One (contract, watch) cell: the precomputed winning mask and the
    last satisfiability verdict (so alerts fire on *flips*, not on
    every event).

    Satisfiability is not monotone: the query restarts at its initial
    state on every prefix, so a frontier can move out of the winning
    region and later back into it.  The current verdict is therefore
    always ``frontier & mask``; ``satisfiable`` only remembers the
    previous one for edge detection, and a watch that recovers re-arms
    (a later loss emits a fresh alert)."""

    __slots__ = ("name", "mask", "satisfiable")

    def __init__(self, name: str, mask: int, satisfiable: bool):
        self.name = name
        self.mask = mask
        self.satisfiable = satisfiable


class FleetMonitor:
    """Streaming monitor over a fleet of encoded contracts.

    Contracts are added by name (usually via
    :meth:`repro.broker.database.ContractDatabase.monitor_fleet`); watch
    queries are registered per contract or fleet-wide.  All mutating
    entry points are serialized by an internal lock, so one fleet can be
    fed from multiple threads.
    """

    def __init__(
        self,
        options: MonitorOptions | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.options = options or MonitorOptions()
        self.metrics = metrics or MetricsRegistry()
        self._monitors: dict[str, EncodedMonitor] = {}
        self._ids: dict[str, int | None] = {}
        self._active: dict[str, EncodedMonitor] = {}
        self._watches: dict[str, list[_WatchState]] = {}
        #: fleet-wide watches, re-applied to contracts added later
        self._fleet_watches: list[tuple[str, EncodedAutomaton]] = []
        self._alerts: list[Alert] = []
        self._lock = threading.Lock()

    # -- registry ---------------------------------------------------------------

    def add_contract(
        self,
        name: str,
        encoded: EncodedAutomaton,
        *,
        contract_id: int | None = None,
    ) -> EncodedMonitor:
        """Start monitoring a contract from its registration-time
        encoding (which must cover the spec vocabulary)."""
        with self._lock:
            if name in self._monitors:
                raise MonitorError(f"contract {name!r} is already monitored")
            monitor = EncodedMonitor(encoded, self.options)
            self._monitors[name] = monitor
            self._ids[name] = contract_id
            self._watches[name] = []
            if monitor.violated:
                # unsatisfiable from the start: alert immediately
                self._emit(Alert(
                    kind="violated", contract=name, contract_id=contract_id,
                    watch=None, event_index=-1, events=frozenset(),
                ))
            else:
                self._active[name] = monitor
            for watch_name, query in self._fleet_watches:
                self._attach_watch(name, watch_name, query)
            return monitor

    def register_watch(
        self,
        name: str,
        query,
        contracts: Iterable[str] | None = None,
    ) -> None:
        """Register a watch query under ``name``: an LTL string /
        formula / BA / prebuilt encoding whose continued satisfiability
        is tracked per event.  ``contracts=None`` makes it fleet-wide
        (it also attaches to contracts added later)."""
        encoded_query = _as_encoded_query(query)
        with self._lock:
            if contracts is None:
                self._fleet_watches.append((name, encoded_query))
                targets = list(self._monitors)
            else:
                targets = list(contracts)
            for contract_name in targets:
                if contract_name not in self._monitors:
                    raise MonitorError(
                        f"cannot watch unknown contract {contract_name!r}"
                    )
                self._attach_watch(contract_name, name, encoded_query)

    def _attach_watch(
        self, contract_name: str, watch_name: str, query: EncodedAutomaton
    ) -> None:
        cells = self._watches[contract_name]
        if any(cell.name == watch_name for cell in cells):
            raise MonitorError(
                f"watch {watch_name!r} is already registered on "
                f"contract {contract_name!r}"
            )
        monitor = self._monitors[contract_name]
        mask = monitor.watch_mask(query)
        satisfiable = bool(monitor.frontier & mask)
        cells.append(_WatchState(watch_name, mask, satisfiable))
        if not satisfiable:
            # never (or no longer) satisfiable at registration time
            self._emit(Alert(
                kind="watch-unsatisfiable", contract=contract_name,
                contract_id=self._ids[contract_name], watch=watch_name,
                event_index=monitor.events_seen - 1, events=frozenset(),
            ))

    # -- ingestion --------------------------------------------------------------

    def advance(self, contract: str, snapshot: Iterable[str]) -> list[Alert]:
        """Deliver one snapshot to one contract; returns the alerts it
        triggered (also accumulated on :attr:`alerts`)."""
        snap = (
            snapshot if isinstance(snapshot, frozenset)
            else frozenset(snapshot)
        )
        with self._lock:
            return self._deliver(contract, snap)

    def broadcast(self, snapshot: Iterable[str]) -> list[Alert]:
        """Deliver one snapshot to every active contract."""
        snap = (
            snapshot if isinstance(snapshot, frozenset)
            else frozenset(snapshot)
        )
        with self._lock:
            emitted: list[Alert] = []
            for name in list(self._active):
                emitted.extend(self._deliver(name, snap))
            return emitted

    def ingest(self, events: Iterable) -> IngestReport:
        """Consume a batch of stream records — :class:`Event` instances,
        ``{"events": [...], "contract": ...}`` dicts (the JSONL record
        shape), or ``(contract_or_None, snapshot)`` pairs — and return
        an :class:`IngestReport`.  This is the bulk API the broker's
        :meth:`~repro.broker.database.ContractDatabase.ingest` exposes.
        """
        report = IngestReport()
        started = time.perf_counter()
        unknown_before = self.unknown_event_count
        with self._lock:
            for record in events:
                event = _coerce_event(record)
                report.events += 1
                if event.contract is None:
                    for name in list(self._active):
                        report.deliveries += 1
                        report.alerts.extend(
                            self._deliver(name, event.events)
                        )
                else:
                    report.deliveries += 1
                    report.alerts.extend(
                        self._deliver(event.contract, event.events)
                    )
        report.unknown_events = self.unknown_event_count - unknown_before
        elapsed = time.perf_counter() - started
        self.metrics.inc("monitor.batches")
        self.metrics.observe("monitor.batch_seconds", elapsed)
        self.metrics.observe(
            "monitor.batch_events", report.events, COUNT_BUCKETS
        )
        return report

    def _deliver(self, name: str, snap: frozenset) -> list[Alert]:
        monitor = self._monitors.get(name)
        if monitor is None:
            raise MonitorError(f"unknown contract {name!r}")
        if monitor.violated:
            return []
        unknown_before = monitor.unknown_events
        status = monitor.advance(snap)
        self.metrics.inc("monitor.events")
        new_unknown = monitor.unknown_events - unknown_before
        if new_unknown:
            self.metrics.inc("monitor.unknown_events", new_unknown)
        emitted: list[Alert] = []
        contract_id = self._ids[name]
        if status is MonitorStatus.VIOLATED:
            self._active.pop(name, None)
            self._emit(Alert(
                kind="violated", contract=name, contract_id=contract_id,
                watch=None, event_index=monitor.violation_index,
                events=snap,
            ), emitted)
            # a violated contract satisfies no future: close out the
            # watch cells (flips are subsumed by the violation alert)
            for cell in self._watches[name]:
                cell.satisfiable = False
        else:
            frontier = monitor.frontier
            for cell in self._watches[name]:
                satisfiable = bool(frontier & cell.mask)
                if cell.satisfiable and not satisfiable:
                    self._emit(Alert(
                        kind="watch-unsatisfiable", contract=name,
                        contract_id=contract_id, watch=cell.name,
                        event_index=monitor.events_seen - 1, events=snap,
                    ), emitted)
                cell.satisfiable = satisfiable
        return emitted

    def _emit(self, alert: Alert, batch: list[Alert] | None = None) -> None:
        self._alerts.append(alert)
        if batch is not None:
            batch.append(alert)
        self.metrics.inc("monitor.alerts")
        if alert.kind == "violated":
            self.metrics.inc("monitor.violations")
        else:
            self.metrics.inc("monitor.watch_flips")

    # -- introspection ----------------------------------------------------------

    @property
    def contracts(self) -> tuple[str, ...]:
        return tuple(self._monitors)

    @property
    def active_contracts(self) -> tuple[str, ...]:
        return tuple(self._active)

    @property
    def alerts(self) -> tuple[Alert, ...]:
        return tuple(self._alerts)

    @property
    def unknown_event_count(self) -> int:
        return sum(m.unknown_events for m in self._monitors.values())

    def monitor(self, name: str) -> EncodedMonitor:
        try:
            return self._monitors[name]
        except KeyError:
            raise MonitorError(f"unknown contract {name!r}") from None

    def status(self, name: str) -> MonitorStatus:
        return self.monitor(name).status

    def watch_satisfiable(self, name: str, watch: str) -> bool:
        """The current verdict of a registered watch on one contract
        (recomputed from the live frontier — satisfiability can recover
        after a loss, see :class:`_WatchState`)."""
        monitor = self.monitor(name)
        for cell in self._watches.get(name, ()):
            if cell.name == watch:
                return bool(monitor.frontier & cell.mask)
        raise MonitorError(
            f"no watch {watch!r} registered on contract {name!r}"
        )

    def can_still(self, name: str, query) -> bool:
        """Ad-hoc satisfiability probe (no registration, no alerts)."""
        return self.monitor(name).can_still(query)

    def reset(self) -> None:
        """Rewind every monitor to its initial frontier and clear the
        accumulated alerts; registered watches stay registered (their
        verdicts are recomputed from the initial frontier)."""
        with self._lock:
            self._alerts.clear()
            self._active.clear()
            for name, monitor in self._monitors.items():
                monitor.reset()
                if not monitor.violated:
                    self._active[name] = monitor
                for cell in self._watches[name]:
                    cell.satisfiable = bool(monitor.frontier & cell.mask)


def _coerce_event(record) -> Event:
    if isinstance(record, Event):
        return record
    if isinstance(record, dict):
        return parse_event(record)
    if isinstance(record, tuple) and len(record) == 2:
        contract, snapshot = record
        return Event(events=frozenset(snapshot), contract=contract)
    raise MonitorError(
        f"cannot interpret stream record of type {type(record).__name__}"
    )


def parse_event(doc: dict) -> Event:
    """Parse one JSONL stream record: ``{"events": [...]}`` with an
    optional ``"contract"`` name (absent or ``null`` = broadcast)."""
    try:
        events = doc["events"]
    except (KeyError, TypeError):
        raise MonitorError(
            f"stream record must carry an 'events' list: {doc!r}"
        ) from None
    if isinstance(events, str) or not isinstance(events, (list, tuple, set, frozenset)):
        raise MonitorError(
            f"'events' must be a list of event names: {events!r}"
        )
    contract = doc.get("contract")
    if contract is not None and not isinstance(contract, str):
        raise MonitorError(f"'contract' must be a name or null: {contract!r}")
    return Event(events=frozenset(str(e) for e in events), contract=contract)


def read_event_log(lines: Iterable[str] | IO[str]) -> Iterator[Event]:
    """Iterate the events of a JSONL log (one record per line; blank
    lines and ``#`` comments are skipped)."""
    for lineno, line in enumerate(lines, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise MonitorError(
                f"event log line {lineno} is not valid JSON: {exc}"
            ) from None
        if not isinstance(doc, dict):
            raise MonitorError(
                f"event log line {lineno} must be a JSON object"
            )
        yield parse_event(doc)
