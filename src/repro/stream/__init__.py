"""Fleet-scale streaming monitoring over encoded frontiers (ROADMAP item 3).

The object-graph :class:`~repro.broker.monitor.ContractMonitor` answers
"is this one contract still satisfiable after what we observed?" by
walking :class:`~repro.automata.buchi.BuchiAutomaton` objects per event.
That is the right tool for inspecting a single contract; it is the wrong
hot path for a broker tracking thousands of live contracts against a
shared event stream.

This package re-expresses the monitor on the flat int/bitset encoding of
:mod:`repro.automata.encode` (the PR-6 decider core):

* a contract's nondeterministic **frontier** becomes one packed int over
  :class:`~repro.automata.encode.EncodedAutomaton` state ids;
* one event becomes a **table lookup** — snapshots map to satisfied
  label-class bitsets, label classes map to per-state successor masks —
  so the advance is a handful of dict hits plus bitwise OR, with the
  eager live-state pruning of the object monitor baked into the masks;
* a **watch query** ("can this ticket still be refunded?") becomes a
  single precomputed *winning mask*: the set of contract states from
  which a simultaneous lasso with the query automaton still exists.
  ``can_still`` collapses to ``frontier & mask != 0`` per event, instead
  of a product search per call.

:class:`FleetMonitor` scales this to a contract fleet: broadcast or
per-contract event ingestion, a watch-query registry, and
:class:`Alert` records emitted the moment a contract flips to VIOLATED
or a watch flips to no-longer-satisfiable.  The conformance lattice's
``monitor-stream`` / ``monitor-unknown`` cells prove the encoded
verdicts bit-identical to the object monitor on generated traces
(docs/DEVELOPMENT.md invariant 13).
"""

from .encoded import EncodedMonitor, compile_step_rows, live_state_mask, winning_mask
from .engine import (
    Alert,
    Event,
    FleetMonitor,
    IngestReport,
    parse_event,
    read_event_log,
)
from .options import MonitorOptions, MonitorStatus

__all__ = [
    "Alert",
    "EncodedMonitor",
    "Event",
    "FleetMonitor",
    "IngestReport",
    "MonitorOptions",
    "MonitorStatus",
    "compile_step_rows",
    "live_state_mask",
    "parse_event",
    "read_event_log",
    "winning_mask",
]
