"""Monitoring verdicts and options shared by the object monitor
(:class:`repro.broker.monitor.ContractMonitor`) and the encoded
streaming engine (:mod:`repro.stream.engine`).

They live here — below the broker in the layering — so both monitor
implementations agree on one vocabulary-handling policy and one status
enum, which is what lets the conformance lattice compare their verdicts
bit-for-bit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MonitorStatus(enum.Enum):
    """Verdict about the observed history."""

    #: Some allowed sequence extends the history.
    ACTIVE = "active"
    #: No allowed sequence extends the history: the contract is violated.
    VIOLATED = "violated"


@dataclass(frozen=True)
class MonitorOptions:
    """Policy knobs shared by every monitor implementation.

    Attributes:
        strict_vocabulary: how to treat snapshot events outside the
            contract vocabulary.  ``False`` (the default) *counts* them —
            on the monitor's ``unknown_events`` attribute and the
            ``monitor.unknown_events`` metric — and otherwise ignores
            them, which is verdict-preserving: contract labels only ever
            cite vocabulary events, so an unknown event can neither
            satisfy nor block a transition.  ``True`` raises
            :class:`~repro.errors.MonitorError` before the monitor's
            state is touched, for deployments where a typo'd event name
            must not masquerade as a healthy stream.
    """

    strict_vocabulary: bool = False
