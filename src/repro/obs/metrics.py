"""Aggregate broker metrics: counters and bucketed histograms.

The paper's runtime module "outputs statistics regarding their
evaluation" per query (§7.1); a serving broker additionally needs the
*aggregate* view over a whole workload — how often the compilation cache
hit, where the latency distribution sits, how hard the prefilter pruned.
This module is that aggregation layer: a tiny, dependency-free metrics
registry in the spirit of Prometheus client libraries, restricted to
exactly what the broker and the benchmark harness consume.

Design constraints:

* **cheap** — recording a value is a dict lookup plus a few integer
  increments; the broker feeds every :class:`~repro.broker.query.QueryStats`
  through it unconditionally, so this sits on the hot path;
* **thread-safe** — :meth:`ContractDatabase.query_many` evaluates
  permission checks from a thread pool, and nothing stops applications
  from sharing a database across threads;
* **bounded** — histograms store fixed bucket counters (plus running
  count/sum/min/max), never the observations themselves, so memory does
  not grow with traffic.

Quantiles are estimated from the buckets (the upper bound of the bucket
where the cumulative count crosses the rank), the same estimate
Prometheus' ``histogram_quantile`` makes; they are exact enough to read
"p99 latency" off a benchmark report.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping, Sequence

#: Default buckets for second-valued latencies (log-spaced, 100 µs – 2.5 s).
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Default buckets for ratios in [0, 1] (pruning ratio, hit rates).
RATIO_BUCKETS: tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)

#: Default buckets for small cardinalities (candidate-set sizes).
COUNT_BUCKETS: tuple[float, ...] = (
    0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500,
)

#: Log-spaced buckets for the planner's abstract cost estimates (units
#: of one attribute compare; see :class:`repro.broker.planner.CostModel`).
COST_BUCKETS: tuple[float, ...] = (
    10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000,
)


class Counter:
    """A monotonically increasing counter.

    Thread-safe: each instrument carries its own lock, so handles
    obtained via :meth:`MetricsRegistry.counter` can be incremented from
    worker threads directly (the broker's ``query_many`` pool does).
    """

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down — the current state of something
    (a replica's replication lag, a queue depth), not an accumulation.

    Thread-safe like the other instruments: per-gauge lock.
    """

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A fixed-bucket histogram with running summary statistics.

    ``buckets`` are the inclusive upper bounds of each bin; observations
    above the last bound land in an implicit overflow bin whose quantile
    estimate is the observed maximum.

    Thread-safe: :meth:`observe` updates five running aggregates that
    must stay mutually consistent, so the instrument serializes them
    under its own lock (per-instrument, not per-registry — concurrent
    observations of *different* histograms do not contend).
    """

    __slots__ = ("name", "buckets", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(self, name: str,
                 buckets: Sequence[float] = LATENCY_BUCKETS):
        self.name = name
        if not buckets:
            raise ValueError(f"histogram {name}: no buckets")
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = self._bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def _bucket_index(self, value: float) -> int:
        # buckets are few (≤ ~15); linear scan beats bisect overhead
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                return i
        return len(self.buckets)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution estimate of the ``q``-quantile (0 < q ≤ 1)."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile {q} outside (0, 1]")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for i, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if i == len(self.buckets):
                    return self._max
                # clamp the bucket upper bound to the observed extremes so
                # the estimate never lies outside the data range
                return min(max(self.buckets[i], self._min), self._max)
        return self._max  # pragma: no cover - rank <= count always

    def snapshot(self) -> dict:
        with self._lock:
            count = self._count
            return {
                "count": count,
                "sum": self._sum,
                "mean": self._sum / count if count else 0.0,
                "min": self._min if count else 0.0,
                "max": self._max if count else 0.0,
                "p50": self._quantile_locked(0.50),
                "p90": self._quantile_locked(0.90),
                "p99": self._quantile_locked(0.99),
                "buckets": dict(zip(self.buckets, self._counts)),
                "overflow": self._counts[-1],
            }


class MetricsRegistry:
    """A named collection of counters and histograms.

    Instruments are created on first use (``registry.inc("query.count")``)
    so call sites stay one-liners; names are free-form dotted strings.
    The registry lock guards only instrument creation and lookup; the
    recorded values themselves are protected by each instrument's own
    lock, so threads recording into different instruments do not
    serialize against each other.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- recording ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def histogram(self, name: str,
                  buckets: Sequence[float] | None = None) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(
                    name, buckets if buckets is not None else LATENCY_BUCKETS
                )
            return histogram

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name)
            return gauge

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                buckets: Sequence[float] | None = None) -> None:
        self.histogram(name, buckets).observe(value)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- reading --------------------------------------------------------------------

    def counter_value(self, name: str) -> int:
        with self._lock:
            counter = self._counters.get(name)
            return counter.value if counter is not None else 0

    def gauge_value(self, name: str) -> float:
        with self._lock:
            gauge = self._gauges.get(name)
            return gauge.value if gauge is not None else 0.0

    def snapshot(self) -> dict:
        """A plain-dict view of every instrument (JSON-serializable)."""
        with self._lock:
            snap = {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "histograms": {
                    name: h.snapshot()
                    for name, h in sorted(self._histograms.items())
                },
            }
            if self._gauges:
                snap["gauges"] = {
                    name: g.value for name, g in sorted(self._gauges.items())
                }
            return snap

    def render_text(self) -> str:
        """Human-readable report: a counter table and a histogram table."""
        snap = self.snapshot()
        lines: list[str] = []
        if snap["counters"]:
            lines.append("counters")
            width = max(len(n) for n in snap["counters"])
            for name, value in snap["counters"].items():
                lines.append(f"  {name.ljust(width)}  {value}")
        if snap.get("gauges"):
            if lines:
                lines.append("")
            lines.append("gauges")
            width = max(len(n) for n in snap["gauges"])
            for name, value in snap["gauges"].items():
                lines.append(f"  {name.ljust(width)}  {_value(value)}")
        if snap["histograms"]:
            if lines:
                lines.append("")
            lines.append("histograms"
                         "  (count / mean / p50 / p90 / p99 / max)")
            width = max(len(n) for n in snap["histograms"])
            for name, h in snap["histograms"].items():
                lines.append(
                    f"  {name.ljust(width)}  {h['count']:>6}  "
                    f"{_value(h['mean'])}  {_value(h['p50'])}  "
                    f"{_value(h['p90'])}  {_value(h['p99'])}  "
                    f"{_value(h['max'])}"
                )
        if not lines:
            return "(no metrics recorded)"
        return "\n".join(lines)


def _value(v: float) -> str:
    """Compact numeric cell: millisecond-style precision for small values."""
    if v == 0:
        return "0".rjust(9)
    if abs(v) < 10:
        return f"{v:9.4f}"
    return f"{v:9.1f}"
