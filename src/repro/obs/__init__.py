"""Observability primitives (counters, histograms, registry)."""

from .metrics import (  # noqa: F401
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    RATIO_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
)
