"""The *seeds* optimization of §6.2.4.

Algorithm 2 starts a nested cycle search at every reachable product pair
``(s, q)`` whose query state ``q`` is final.  The paper observes that the
search is doomed unless the *contract* state ``s`` lies on a cycle of the
contract BA that contains a contract-final state — otherwise no
simultaneous lasso can close through the pair.  The set of such contract
states depends only on the contract, so the broker precomputes it at
registration time and Algorithm 2 skips all other candidate knots.
"""

from __future__ import annotations

from ..automata import graph
from ..automata.buchi import BuchiAutomaton
from ..automata.encode import EncodedAutomaton


def compute_seeds(contract_ba: BuchiAutomaton) -> frozenset:
    """Contract states lying on a cycle through a contract-final state.

    A state is on such a cycle iff its strongly connected component is
    cyclic and contains a final state (any two states of an SCC share a
    cycle).  Only pairs whose contract state is in this set can knot a
    simultaneous lasso path.
    """
    reachable = graph.reachable_from(contract_ba.initial,
                                     contract_ba.successor_states)
    return frozenset(
        graph.states_on_accepting_cycles(
            reachable, contract_ba.successor_states, contract_ba.is_final
        )
    )


def compute_seeds_mask(enc: EncodedAutomaton) -> int:
    """:func:`compute_seeds` over an encoded automaton, as a bitset of
    encoded state ids.

    Equal to ``enc.state_mask(compute_seeds(ba))`` for the automaton
    ``enc`` was built from — the same SCC analysis run directly on the
    CSR adjacency, so the broker can rebuild seed masks from a restored
    encoding without materializing the object automaton's seed set.
    """
    reachable = graph.reachable_from(enc.initial, enc.successor_ids)
    mask = 0
    for state_id in graph.states_on_accepting_cycles(
        reachable, enc.successor_ids, enc.is_final
    ):
        mask |= 1 << state_id
    return mask
