"""Fault injection: deterministic failures at named runtime seams.

The broker's robustness machinery — the write-ahead journal, the
snapshot fallback ladder, the quarantined registration pool, the
query-side thread-pool fallback — exists to survive failures that are
rare and hard to provoke on demand: a full disk mid-save, a worker
process dying under a poison pill, a thread pool refusing new work.
This module makes those failures *reproducible*: production code calls
:func:`hit` at its failure seams (a no-op costing one attribute read
when nothing is armed), and chaos tests (plus the ``contract-broker
chaos`` CLI drill) arm faults against those seams by name::

    from repro.core import faults

    faults.fail_at("persist.artifact_write", nth=3, exc=OSError("disk full"))
    try:
        save_database(db, directory)    # third artifact write explodes
    finally:
        faults.reset()

Actions, in evaluation order when several are configured on one
armed fault:

* ``delay`` — sleep that many seconds before continuing (latency
  injection; combine with ``exc=None`` for a pure slow-down);
* ``action`` — an arbitrary callable receiving the seam's context
  kwargs (escape hatch for bespoke corruption);
* ``exc`` — raise that exception instance.  :class:`SimulatedCrash`
  derives from ``BaseException`` so ordinary ``except Exception``
  recovery code cannot swallow it — it models the process dying, and
  only a test harness catches it.

Faults are counted per *site*: ``nth=3`` arms the third ``hit`` on that
site after arming, and ``times`` controls how many consecutive hits
fire from there on (default 1).  The registry is thread-safe; seams are
hit from pool worker threads.

Seams currently wired into production code:

* ``persist.artifact_write`` — each artifact file write in
  :func:`~repro.broker.persist.save_database`;
* ``journal.append`` / ``journal.fsync`` / ``journal.compact`` — the
  write-ahead journal's durability points;
* ``register.pool`` / ``query.pool`` — the parallel broker's worker
  dispatch;
* ``dist.connect`` / ``dist.send`` / ``dist.recv`` — the distributed
  broker's *client-side* transport edges (the coordinator's RPC path
  and :class:`~repro.dist.server.ShardClient`), with ``shard=`` /
  ``op=`` context kwargs so an ``action`` callable can target one
  shard or one op (a partition is "raise ``OSError`` when
  ``kwargs.get('shard') == 1``").  Server-side traffic never hits
  these seams, so ``nth`` counts client attempts deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable


class SimulatedCrash(BaseException):
    """An injected process-death stand-in.

    Deliberately *not* a :class:`~repro.errors.ReproError` (nor even an
    ``Exception``): recovery code that survives real faults by catching
    ``Exception`` must not be able to "survive" a simulated kill-9.
    Only chaos harnesses catch this.
    """


@dataclass
class _ArmedFault:
    site: str
    nth: int
    times: int
    exc: BaseException | None
    delay: float | None
    action: Callable[..., Any] | None
    #: hits observed on the site since this fault was armed
    seen: int = 0
    #: times this fault has fired
    fired: int = 0

    def should_fire(self) -> bool:
        return self.nth <= self.seen < self.nth + self.times


@dataclass
class FaultReport:
    """What an injector did while armed (for assertions and drills)."""

    armed: int = 0
    hits: dict[str, int] = field(default_factory=dict)
    fired: dict[str, int] = field(default_factory=dict)


class FaultInjector:
    """A registry of armed faults keyed by seam name.

    One module-level default instance (:data:`FAULTS`) serves the whole
    process; tests needing isolation can instantiate their own and pass
    it where supported, but the seams consult the default.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._faults: dict[str, list[_ArmedFault]] = {}
        self._hits: dict[str, int] = {}
        # read without the lock on the hot path; Python attribute reads
        # are atomic, and a stale False only delays the first armed hit
        # by one seam crossing in another thread
        self._armed_count = 0

    # -- arming ---------------------------------------------------------------------

    def fail_at(
        self,
        site: str,
        *,
        nth: int = 1,
        times: int = 1,
        exc: BaseException | None = None,
        delay: float | None = None,
        action: Callable[..., Any] | None = None,
    ) -> None:
        """Arm a fault: the ``nth`` hit on ``site`` (1-based, counted
        from now) fires the configured actions, as do the following
        ``times - 1`` hits."""
        if nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        if exc is None and delay is None and action is None:
            exc = SimulatedCrash(f"injected fault at {site!r}")
        with self._lock:
            self._faults.setdefault(site, []).append(
                _ArmedFault(
                    site=site, nth=nth, times=times,
                    exc=exc, delay=delay, action=action,
                )
            )
            self._armed_count += 1

    def crash_at(self, site: str, *, nth: int = 1) -> None:
        """Arm a :class:`SimulatedCrash` (the kill-9 stand-in)."""
        self.fail_at(site, nth=nth, exc=SimulatedCrash(
            f"simulated crash at {site!r}"
        ))

    def reset(self) -> None:
        """Disarm everything and clear the hit counters."""
        with self._lock:
            self._faults.clear()
            self._hits.clear()
            self._armed_count = 0

    # -- introspection --------------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._armed_count > 0

    def armed(self, site: str) -> bool:
        with self._lock:
            return any(
                f.fired < f.times for f in self._faults.get(site, ())
            )

    def hits(self, site: str) -> int:
        """How many times ``site`` has been crossed while any fault was
        armed (anywhere)."""
        with self._lock:
            return self._hits.get(site, 0)

    def report(self) -> FaultReport:
        with self._lock:
            report = FaultReport(hits=dict(self._hits))
            for site, faults in self._faults.items():
                report.armed += len(faults)
                fired = sum(f.fired for f in faults)
                if fired:
                    report.fired[site] = fired
            return report

    # -- the seam -------------------------------------------------------------------

    def hit(self, site: str, **context: Any) -> None:
        """Called by production code at a failure seam.

        Free when nothing is armed.  With faults armed on ``site``,
        fires each one whose window covers this hit: sleep, run the
        action callable, raise the exception — in that order.
        """
        if not self._armed_count:
            return
        to_fire: list[_ArmedFault] = []
        with self._lock:
            self._hits[site] = self._hits.get(site, 0) + 1
            for fault in self._faults.get(site, ()):
                fault.seen += 1
                if fault.should_fire():
                    fault.fired += 1
                    to_fire.append(fault)
        for fault in to_fire:
            if fault.delay is not None:
                time.sleep(fault.delay)
            if fault.action is not None:
                fault.action(**context)
            if fault.exc is not None:
                raise fault.exc


#: The process-wide injector every seam consults.
FAULTS = FaultInjector()


def fail_at(site: str, **kwargs: Any) -> None:
    """Arm a fault on the default injector (see
    :meth:`FaultInjector.fail_at`)."""
    FAULTS.fail_at(site, **kwargs)


def crash_at(site: str, *, nth: int = 1) -> None:
    """Arm a simulated crash on the default injector."""
    FAULTS.crash_at(site, nth=nth)


def hit(site: str, **context: Any) -> None:
    """Cross a seam on the default injector (no-op unless armed)."""
    FAULTS.hit(site, **context)


def reset() -> None:
    """Disarm the default injector."""
    FAULTS.reset()
