"""One capped-exponential-backoff policy for every retry loop.

Three subsystems retry transient failures — the registration process
pool (:func:`repro.broker.parallel.register_many`), the coordinator's
shard RPCs (:mod:`repro.dist.coordinator`), and a replica waiting for
its leader's journal to grow (:meth:`repro.dist.replica.Replica.
catch_up`).  Before 1.10 each hand-rolled its own sleep schedule; this
module is the single shared policy so the backoff *shape* (base delay,
doubling, cap) and its *jitter* are tuned — and tested — in one place.

Jitter is **deterministic**: the fraction shaved off a delay is derived
from SHA-256 of ``(salt, attempt)``, not from a random source.  Two
coordinators retrying different shards (different salts) desynchronize
exactly the way random jitter would desynchronize them — no thundering
herd on a recovering shard — while any single schedule is bit-for-bit
reproducible, which is what lets the chaos drills and the conformance
cells assert on retried runs instead of merely tolerating them.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Iterator

#: Default retry budget before a transient failure is surfaced.
DEFAULT_MAX_RETRIES = 2

#: First delay of the default schedule; doubles per attempt.
DEFAULT_BASE_SECONDS = 0.05

#: No single backoff sleep exceeds this.
DEFAULT_CAP_SECONDS = 1.0


@dataclass(frozen=True)
class BackoffPolicy:
    """A capped exponential backoff schedule with deterministic jitter.

    ``delay(attempt, salt)`` is the sleep before retry ``attempt``
    (1-based): ``base_seconds * 2**(attempt-1)`` capped at
    ``cap_seconds``, then shortened by up to ``jitter`` (a fraction in
    ``[0, 1]``) of itself — the exact shave is a pure function of
    ``(salt, attempt)``, so a schedule replays identically while
    distinct salts spread out.
    """

    max_retries: int = DEFAULT_MAX_RETRIES
    base_seconds: float = DEFAULT_BASE_SECONDS
    cap_seconds: float = DEFAULT_CAP_SECONDS
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_seconds < 0 or self.cap_seconds < 0:
            raise ValueError("backoff delays cannot be negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, salt: str = "") -> float:
        """The sleep before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.base_seconds * (2 ** (attempt - 1)), self.cap_seconds)
        if not self.jitter or not raw:
            return raw
        digest = hashlib.sha256(
            f"{salt}:{attempt}".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return raw * (1.0 - self.jitter * fraction)

    def delays(self, salt: str = "") -> Iterator[float]:
        """The unbounded sleep schedule (a *poll* loop's cadence — the
        caller decides when to stop; delays plateau at the jittered
        cap).  Retry loops should index :meth:`delay` with their
        attempt counter instead so ``max_retries`` stays in charge."""
        attempt = 1
        while True:
            yield self.delay(attempt, salt)
            attempt += 1


def retry_call(
    fn: Callable,
    *,
    policy: BackoffPolicy,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    salt: str = "",
    deadline: float | None = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
):
    """Call ``fn()`` under ``policy``, retrying ``retry_on`` failures.

    ``deadline`` is an absolute ``clock()`` value the retried call must
    never outlive: before every sleep the remaining budget is re-checked
    and the last failure re-raised when the backoff would exceed it.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on as exc:
            attempt += 1
            if attempt > policy.max_retries:
                raise
            pause = policy.delay(attempt, salt)
            if deadline is not None and clock() + pause >= deadline:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(pause)
