"""Checking that a contract permits a temporal query.

This is the paper's core algorithmic contribution (§3.1, §6.2): a
contract ``C(phi)`` *permits* a query ``psi`` iff the BAs of the two
formulas admit a **simultaneous lasso path** (Definition 7) — a pair of
lasso paths, one per automaton, whose step-wise labels are *compatible*:
the query label mentions only contract-vocabulary events and does not
conflict with the contract label.  Theorem 4 shows this captures exactly
the projection-class semantics of Definition 5, and Theorem 6 shows the
problem is PSPACE-complete in the formulas (LOGSPACE in the automata).

Two interchangeable deciders are provided:

* :func:`permits_ndfs` — the paper's Algorithm 2: an outer depth-first
  search over compatible product pairs with a nested cycle search at
  every candidate knot, optionally pruned by the precomputed *seeds* of
  §6.2.4.  This is the algorithm the paper benchmarks.
* :func:`permits_scc` — an equivalent emptiness check on the
  compatibility product using strongly connected components (a
  generalized-Büchi style formulation).  Used as a cross-check oracle in
  tests and available to users who prefer it.

:func:`find_witness` additionally extracts a concrete simultaneous lasso
path and can materialize it as an ultimately-periodic run, which examples
use to *explain* why a contract was returned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator

from ..automata import graph
from ..automata.buchi import BuchiAutomaton
from ..automata.encode import EncodedAutomaton, QueryBinding, bind_query
from ..automata.labels import Label
from ..errors import BudgetExceededError
from ..ltl.runs import Run
from .budget import ExecutionBudget
from .seeds import compute_seeds, compute_seeds_mask

State = Hashable
Pair = tuple  # (contract state, query state)


@dataclass
class PermissionStats:
    """Work counters for one permission check (consumed by benchmarks).

    ``pairs_visited + cycle_nodes_visited`` is the check's *search step*
    count — the quantity an :class:`~repro.core.budget.ExecutionBudget`
    charges against.  ``budget_exhausted`` is set when the check was
    interrupted by its budget (in which case ``result`` is meaningless
    and :class:`~repro.errors.BudgetExceededError` was raised).
    """

    pairs_visited: int = 0
    cycle_searches: int = 0
    cycle_nodes_visited: int = 0
    seeds_skipped: int = 0
    result: bool = False
    budget_exhausted: bool = False

    @property
    def search_steps(self) -> int:
        return self.pairs_visited + self.cycle_nodes_visited


@dataclass(frozen=True)
class WitnessStep:
    """One instant of a simultaneous lasso path."""

    contract_state: State
    query_state: State
    contract_label: Label
    query_label: Label

    @property
    def combined_label(self) -> Label:
        """The satisfiable conjunction of the two labels."""
        combined = self.contract_label.conjoin(self.query_label)
        assert combined is not None, "witness steps are compatible by construction"
        return combined


@dataclass(frozen=True)
class PermissionWitness:
    """A finite representation of a simultaneous lasso path: the prefix
    into the knot and the cycle back to it."""

    prefix: tuple[WitnessStep, ...]
    cycle: tuple[WitnessStep, ...]

    def to_run(self) -> Run:
        """A concrete ultimately-periodic run following the witness.

        Every step's snapshot makes the step's combined label true and
        every unmentioned event false; the result is accepted by both
        automata and uses only contract-vocabulary events beyond the
        query's requirements.
        """
        prefix = tuple(step.combined_label.pick_snapshot() for step in self.prefix)
        loop = tuple(step.combined_label.pick_snapshot() for step in self.cycle)
        return Run(prefix, loop)

    def __str__(self) -> str:
        def fmt(steps: tuple[WitnessStep, ...]) -> str:
            return " ; ".join(str(s.combined_label) for s in steps)

        return f"prefix[{fmt(self.prefix)}] cycle[{fmt(self.cycle)}]"


class _CompatibilityContext:
    """Memoized Definition 7 compatibility between contract and query
    labels, fixed to one contract vocabulary."""

    __slots__ = ("vocabulary", "_label_cache", "_vocab_cache")

    def __init__(self, vocabulary: frozenset[str]):
        self.vocabulary = vocabulary
        self._label_cache: dict[tuple[Label, Label], bool] = {}
        self._vocab_cache: dict[Label, bool] = {}

    def query_label_admissible(self, query_label: Label) -> bool:
        """Condition (i): the query label cites only contract events."""
        cached = self._vocab_cache.get(query_label)
        if cached is None:
            cached = query_label.events() <= self.vocabulary
            self._vocab_cache[query_label] = cached
        return cached

    def compatible(self, contract_label: Label, query_label: Label) -> bool:
        if not self.query_label_admissible(query_label):
            return False
        key = (contract_label, query_label)
        cached = self._label_cache.get(key)
        if cached is None:
            cached = not contract_label.conflicts(query_label)
            self._label_cache[key] = cached
        return cached


def _pair_successors(
    contract: BuchiAutomaton,
    query: BuchiAutomaton,
    ctx: _CompatibilityContext,
    pair: Pair,
) -> Iterator[tuple[Pair, Label, Label]]:
    """Compatible product successors with the labels that enable them."""
    contract_state, query_state = pair
    for query_label, query_dst in query.successors(query_state):
        if not ctx.query_label_admissible(query_label):
            continue
        for contract_label, contract_dst in contract.successors(contract_state):
            if ctx.compatible(contract_label, query_label):
                yield (contract_dst, query_dst), contract_label, query_label


def permits_ndfs(
    contract: BuchiAutomaton,
    query: BuchiAutomaton,
    vocabulary: frozenset[str] | None = None,
    *,
    seeds: frozenset | None = None,
    use_seeds: bool = True,
    stats: PermissionStats | None = None,
    budget: ExecutionBudget | None = None,
) -> bool:
    """Algorithm 2: nested depth-first search for a simultaneous lasso path.

    Args:
        contract: the contract BA.
        query: the query BA.
        vocabulary: the contract's event vocabulary (the variables of its
            LTL specification).  Defaults to the events on the contract
            BA's labels — callers that know the true vocabulary (the
            broker does) should pass it, since a contract may cite an
            event in its formula that its reduced BA no longer mentions.
        seeds: precomputed :func:`repro.core.seeds.compute_seeds` result;
            computed on the fly when ``use_seeds`` is set and none given.
        use_seeds: apply the §6.2.4 seed filter to candidate knots.
        stats: optional mutable counters, filled in during the search.
        budget: optional :class:`~repro.core.budget.ExecutionBudget`; the
            search charges it once per visited pair / cycle node and
            propagates its :class:`~repro.errors.BudgetExceededError`
            (setting ``stats.budget_exhausted``) instead of ever
            answering a truncated — and therefore possibly wrong —
            boolean.
    """
    if vocabulary is None:
        vocabulary = contract.events()
    if stats is None:
        stats = PermissionStats()
    ctx = _CompatibilityContext(vocabulary)
    if use_seeds and seeds is None:
        seeds = compute_seeds(contract)

    try:
        return _ndfs_search(
            contract, query, ctx,
            seeds=seeds, use_seeds=use_seeds, stats=stats, budget=budget,
        )
    except BudgetExceededError:
        stats.budget_exhausted = True
        raise


def _ndfs_search(
    contract: BuchiAutomaton,
    query: BuchiAutomaton,
    ctx: _CompatibilityContext,
    *,
    seeds: frozenset | None,
    use_seeds: bool,
    stats: PermissionStats,
    budget: ExecutionBudget | None,
) -> bool:
    start: Pair = (contract.initial, query.initial)
    visited: set[Pair] = set()
    stack: list[Pair] = [start]
    while stack:
        pair = stack.pop()
        if pair in visited:
            continue
        visited.add(pair)
        stats.pairs_visited += 1
        if budget is not None:
            budget.charge(stats.search_steps)
        contract_state, query_state = pair
        if query_state in query.final:
            if use_seeds and seeds is not None and contract_state not in seeds:
                stats.seeds_skipped += 1
            else:
                stats.cycle_searches += 1
                if _cycle_search(contract, query, ctx, pair, stats, budget):
                    stats.result = True
                    return True
        for succ, _, _ in _pair_successors(contract, query, ctx, pair):
            if succ not in visited:
                stack.append(succ)
    stats.result = False
    return False


def _cycle_search(
    contract: BuchiAutomaton,
    query: BuchiAutomaton,
    ctx: _CompatibilityContext,
    knot: Pair,
    stats: PermissionStats,
    budget: ExecutionBudget | None = None,
) -> bool:
    """The nested search of Algorithm 2: is there a non-empty cycle from
    ``knot`` back to itself that visits a pair with a contract-final
    state?

    Explores the product augmented with a boolean *foundFinal* flag (the
    paper's variable of the same name), so each augmented node is visited
    once — the iterative equivalent of the memoization scheme the paper
    describes at the end of §6.2.2.
    """
    start_flag = knot[0] in contract.final
    visited: set[tuple[Pair, bool]] = set()
    stack: list[tuple[Pair, bool]] = [(knot, start_flag)]
    while stack:
        node = stack.pop()
        if node in visited:
            continue
        visited.add(node)
        stats.cycle_nodes_visited += 1
        if budget is not None:
            budget.charge(stats.search_steps)
        pair, flag = node
        for succ, _, _ in _pair_successors(contract, query, ctx, pair):
            if succ == knot and flag:
                return True
            succ_flag = flag or (succ[0] in contract.final)
            if (succ, succ_flag) not in visited:
                stack.append((succ, succ_flag))
    return False


def permits_scc(
    contract: BuchiAutomaton,
    query: BuchiAutomaton,
    vocabulary: frozenset[str] | None = None,
    *,
    budget: ExecutionBudget | None = None,
    stats: PermissionStats | None = None,
) -> bool:
    """SCC-based decider, equivalent to :func:`permits_ndfs`.

    A simultaneous lasso path exists iff the compatibility product has a
    reachable cyclic SCC containing both a pair with a query-final state
    and a pair with a contract-final state (one cycle can then visit
    both, giving lasso paths in both automata simultaneously).

    Successor expansion is memoized across the graph passes
    (reachability, SCC decomposition, cyclicity): each pair is expanded
    — and ``budget``-charged — exactly once, so ``pairs_visited`` counts
    unique product pairs just like :func:`permits_ndfs`'s outer search
    and an identical deadline no longer exhausts up to three times
    earlier than under NDFS.
    """
    if vocabulary is None:
        vocabulary = contract.events()
    if stats is None:
        stats = PermissionStats()
    ctx = _CompatibilityContext(vocabulary)

    expansions: dict[Pair, tuple[Pair, ...]] = {}

    def successors(pair: Pair) -> tuple[Pair, ...]:
        cached = expansions.get(pair)
        if cached is None:
            stats.pairs_visited += 1
            if budget is not None:
                try:
                    budget.charge(stats.search_steps)
                except BudgetExceededError:
                    stats.budget_exhausted = True
                    raise
            cached = tuple(
                succ
                for succ, _, _ in _pair_successors(contract, query, ctx, pair)
            )
            expansions[pair] = cached
        return cached

    start: Pair = (contract.initial, query.initial)
    reachable = graph.reachable_from(start, successors)
    for component in graph.strongly_connected_components(reachable, successors):
        has_query_final = any(q in query.final for _, q in component)
        has_contract_final = any(c in contract.final for c, _ in component)
        if not (has_query_final and has_contract_final):
            continue
        if graph.is_cyclic_component(component, successors):
            stats.result = True
            return True
    stats.result = False
    return False


def permits(
    contract: BuchiAutomaton,
    query: BuchiAutomaton,
    vocabulary: frozenset[str] | None = None,
    *,
    algorithm: str = "ndfs",
    seeds: frozenset | None = None,
    use_seeds: bool = True,
    stats: PermissionStats | None = None,
    budget: ExecutionBudget | None = None,
) -> bool:
    """Decide permission; dispatches to the requested algorithm.

    ``algorithm`` is ``"ndfs"`` (the paper's Algorithm 2, default) or
    ``"scc"``.  With a ``budget``, either algorithm raises
    :class:`~repro.errors.BudgetExceededError` instead of running
    unboundedly (see :mod:`repro.core.budget`).
    """
    if algorithm == "ndfs":
        return permits_ndfs(
            contract, query, vocabulary,
            seeds=seeds, use_seeds=use_seeds, stats=stats, budget=budget,
        )
    if algorithm == "scc":
        return permits_scc(contract, query, vocabulary,
                           budget=budget, stats=stats)
    raise ValueError(f"unknown permission algorithm: {algorithm!r}")


# -- encoded deciders -------------------------------------------------------------
#
# Twins of permits_ndfs / permits_scc that walk the flat int encoding of
# repro.automata.encode instead of the object automata.  Product pairs
# are packed as ``contract_id * num_query_states + query_id``; cycle
# nodes additionally pack the foundFinal flag into the low bit.  The
# encoding preserves per-state transition order, so these visit pairs in
# exactly the object deciders' order and fill PermissionStats (and trip
# an ExecutionBudget) bit-identically.


def _encoded_expander(
    contract: EncodedAutomaton,
    query: EncodedAutomaton,
    binding: QueryBinding,
    on_expand=None,
):
    """A memoized ``pair -> list of successor pairs`` over the packed
    compatibility product.

    ``on_expand`` (if given) runs once per *unique* pair, before its
    successors are computed — the hook the SCC decider uses to count and
    budget-charge unique expansions.  Memoization is sound for the NDFS
    too: its stats count pair/node *visits* (at pop time), never
    expansions.
    """
    nq = query.num_states
    c_off, c_lab, c_dst = contract.offsets, contract.trans_labels, contract.trans_dsts
    q_off, q_lab, q_dst = query.offsets, query.trans_labels, query.trans_dsts
    compat = binding.compat
    cache: dict[int, list[int]] = {}

    def expand(pair: int) -> list[int]:
        cached = cache.get(pair)
        if cached is None:
            if on_expand is not None:
                on_expand()
            c, q = divmod(pair, nq)
            cached = []
            for qi in range(q_off[q], q_off[q + 1]):
                row = compat[q_lab[qi]]
                if not row:
                    continue
                dq = q_dst[qi]
                for ci in range(c_off[c], c_off[c + 1]):
                    if (row >> c_lab[ci]) & 1:
                        cached.append(c_dst[ci] * nq + dq)
            cache[pair] = cached
        return cached

    return expand


def permits_ndfs_encoded(
    contract: EncodedAutomaton,
    query: EncodedAutomaton,
    binding: QueryBinding | None = None,
    *,
    seeds_mask: int | None = None,
    use_seeds: bool = True,
    stats: PermissionStats | None = None,
    budget: ExecutionBudget | None = None,
) -> bool:
    """Algorithm 2 over the flat encoding — bit-identical in verdict,
    stats, and budget behavior to :func:`permits_ndfs`.

    Args:
        contract: the encoded contract BA (over its full vocabulary).
        query: the encoded query BA (over its own events).
        binding: precomputed :func:`repro.automata.encode.bind_query`
            table; computed on the fly when omitted.
        seeds_mask: bitset of seed state ids
            (:func:`repro.core.seeds.compute_seeds_mask`); computed on
            the fly when ``use_seeds`` is set and none given.
    """
    if stats is None:
        stats = PermissionStats()
    if binding is None:
        binding = bind_query(contract, query)
    if use_seeds and seeds_mask is None:
        seeds_mask = compute_seeds_mask(contract)
    try:
        return _ndfs_search_encoded(
            contract, query, binding,
            seeds_mask=seeds_mask, use_seeds=use_seeds,
            stats=stats, budget=budget,
        )
    except BudgetExceededError:
        stats.budget_exhausted = True
        raise


def _ndfs_search_encoded(
    contract: EncodedAutomaton,
    query: EncodedAutomaton,
    binding: QueryBinding,
    *,
    seeds_mask: int | None,
    use_seeds: bool,
    stats: PermissionStats,
    budget: ExecutionBudget | None,
) -> bool:
    nq = query.num_states
    query_final = query.final_mask
    expand = _encoded_expander(contract, query, binding)
    start = contract.initial * nq + query.initial
    visited: set[int] = set()
    stack: list[int] = [start]
    while stack:
        pair = stack.pop()
        if pair in visited:
            continue
        visited.add(pair)
        stats.pairs_visited += 1
        if budget is not None:
            budget.charge(stats.search_steps)
        if (query_final >> (pair % nq)) & 1:
            if (
                use_seeds
                and seeds_mask is not None
                and not ((seeds_mask >> (pair // nq)) & 1)
            ):
                stats.seeds_skipped += 1
            else:
                stats.cycle_searches += 1
                if _cycle_search_encoded(
                    contract, nq, expand, pair, stats, budget
                ):
                    stats.result = True
                    return True
        for succ in expand(pair):
            if succ not in visited:
                stack.append(succ)
    stats.result = False
    return False


def _cycle_search_encoded(
    contract: EncodedAutomaton,
    nq: int,
    expand,
    knot: int,
    stats: PermissionStats,
    budget: ExecutionBudget | None = None,
) -> bool:
    """The nested search of :func:`_cycle_search` on packed ints: each
    node is ``(pair << 1) | foundFinal``."""
    contract_final = contract.final_mask
    start_flag = (contract_final >> (knot // nq)) & 1
    visited: set[int] = set()
    stack: list[int] = [(knot << 1) | start_flag]
    while stack:
        node = stack.pop()
        if node in visited:
            continue
        visited.add(node)
        stats.cycle_nodes_visited += 1
        if budget is not None:
            budget.charge(stats.search_steps)
        flag = node & 1
        for succ in expand(node >> 1):
            if flag and succ == knot:
                return True
            succ_node = (succ << 1) | (
                flag | ((contract_final >> (succ // nq)) & 1)
            )
            if succ_node not in visited:
                stack.append(succ_node)
    return False


def permits_scc_encoded(
    contract: EncodedAutomaton,
    query: EncodedAutomaton,
    binding: QueryBinding | None = None,
    *,
    budget: ExecutionBudget | None = None,
    stats: PermissionStats | None = None,
) -> bool:
    """SCC-based decider over the flat encoding — equivalent to
    :func:`permits_scc`, with the same memoize-and-charge-once
    accounting: each unique product pair is expanded and
    ``budget``-charged exactly once across the three graph passes."""
    if stats is None:
        stats = PermissionStats()
    if binding is None:
        binding = bind_query(contract, query)
    nq = query.num_states
    query_final = query.final_mask
    contract_final = contract.final_mask

    def on_expand() -> None:
        stats.pairs_visited += 1
        if budget is not None:
            try:
                budget.charge(stats.search_steps)
            except BudgetExceededError:
                stats.budget_exhausted = True
                raise

    expand = _encoded_expander(contract, query, binding, on_expand)
    start = contract.initial * nq + query.initial
    reachable = graph.reachable_from(start, expand)
    for component in graph.strongly_connected_components(reachable, expand):
        has_query_final = any((query_final >> (p % nq)) & 1 for p in component)
        has_contract_final = any(
            (contract_final >> (p // nq)) & 1 for p in component
        )
        if not (has_query_final and has_contract_final):
            continue
        if graph.is_cyclic_component(component, expand):
            stats.result = True
            return True
    stats.result = False
    return False


def permits_encoded(
    contract: EncodedAutomaton,
    query: EncodedAutomaton,
    binding: QueryBinding | None = None,
    *,
    algorithm: str = "ndfs",
    seeds_mask: int | None = None,
    use_seeds: bool = True,
    stats: PermissionStats | None = None,
    budget: ExecutionBudget | None = None,
) -> bool:
    """Encoded twin of :func:`permits`: dispatch by algorithm name."""
    if algorithm == "ndfs":
        return permits_ndfs_encoded(
            contract, query, binding,
            seeds_mask=seeds_mask, use_seeds=use_seeds,
            stats=stats, budget=budget,
        )
    if algorithm == "scc":
        return permits_scc_encoded(contract, query, binding,
                                   budget=budget, stats=stats)
    raise ValueError(f"unknown permission algorithm: {algorithm!r}")


def find_witness(
    contract: BuchiAutomaton,
    query: BuchiAutomaton,
    vocabulary: frozenset[str] | None = None,
) -> PermissionWitness | None:
    """A concrete simultaneous lasso path, or ``None`` if not permitted.

    The witness is assembled from the compatibility product: a shortest
    prefix to a knot pair inside an SCC that contains both kinds of final
    pairs, then a cycle knot → contract-final pair → knot inside that
    SCC.
    """
    if vocabulary is None:
        vocabulary = contract.events()
    ctx = _CompatibilityContext(vocabulary)

    def successors(pair: Pair) -> Iterator[Pair]:
        for succ, _, _ in _pair_successors(contract, query, ctx, pair):
            yield succ

    start: Pair = (contract.initial, query.initial)
    reachable = graph.reachable_from(start, successors)
    target_scc: set[Pair] | None = None
    for component in graph.strongly_connected_components(reachable, successors):
        members = set(component)
        if not any(q in query.final for _, q in members):
            continue
        if not any(c in contract.final for c, _ in members):
            continue
        if graph.is_cyclic_component(component, successors):
            target_scc = members
            break
    if target_scc is None:
        return None

    knots = {p for p in target_scc if p[1] in query.final}
    prefix_steps, knot = _bfs_steps(contract, query, ctx, start, knots, None)
    finals = {p for p in target_scc if p[0] in contract.final}
    # Cycle: knot -> some contract-final pair -> knot, all inside the SCC.
    to_final, mid = _bfs_steps(
        contract, query, ctx, knot, finals, target_scc, require_step=True
    )
    back, _ = _bfs_steps(contract, query, ctx, mid, {knot}, target_scc)
    cycle = tuple(to_final) + tuple(back)
    return PermissionWitness(prefix=tuple(prefix_steps), cycle=cycle)


def _bfs_steps(
    contract: BuchiAutomaton,
    query: BuchiAutomaton,
    ctx: _CompatibilityContext,
    source: Pair,
    targets: set[Pair],
    within: set[Pair] | None,
    require_step: bool = False,
) -> tuple[list[WitnessStep], Pair]:
    """Shortest compatible-step path from ``source`` into ``targets``
    (optionally restricted to the pair set ``within``); returns the steps
    and the target reached.  With ``require_step`` the empty path is not
    allowed even if the source is a target."""
    if source in targets and not require_step:
        return [], source
    parents: dict[Pair, tuple[Pair, WitnessStep]] = {}
    seen = {source}
    frontier = [source]
    while frontier:
        next_frontier: list[Pair] = []
        for pair in frontier:
            for succ, contract_label, query_label in _pair_successors(
                contract, query, ctx, pair
            ):
                if within is not None and succ not in within:
                    continue
                step = WitnessStep(pair[0], pair[1], contract_label, query_label)
                if succ in targets and (succ not in seen or succ == source):
                    steps = [step]
                    cursor = pair
                    while cursor != source:
                        prev, prev_step = parents[cursor]
                        steps.append(prev_step)
                        cursor = prev
                    steps.reverse()
                    return steps, succ
                if succ not in seen:
                    seen.add(succ)
                    parents[succ] = (pair, step)
                    next_frontier.append(succ)
        frontier = next_frontier
    raise RuntimeError("BFS target unreachable — inconsistent SCC data")
