"""The paper's primary contribution: the permission semantics and its
decision algorithms.

Entry points::

    from repro.core import permits, find_witness

    permits(contract_ba, query_ba, vocabulary)   # Algorithm 2
    find_witness(contract_ba, query_ba, vocabulary)
"""

from .budget import Deadline, ExecutionBudget, StepBudget
from .faults import FaultInjector, SimulatedCrash
from .permission import (
    PermissionStats,
    PermissionWitness,
    WitnessStep,
    find_witness,
    permits,
    permits_encoded,
    permits_ndfs,
    permits_ndfs_encoded,
    permits_scc,
    permits_scc_encoded,
)
from .rwlock import RWLock
from .seeds import compute_seeds, compute_seeds_mask

__all__ = [
    "Deadline",
    "ExecutionBudget",
    "StepBudget",
    "FaultInjector",
    "SimulatedCrash",
    "RWLock",
    "PermissionStats",
    "PermissionWitness",
    "WitnessStep",
    "find_witness",
    "permits",
    "permits_encoded",
    "permits_ndfs",
    "permits_ndfs_encoded",
    "permits_scc",
    "permits_scc_encoded",
    "compute_seeds",
    "compute_seeds_mask",
]
