"""Bounded execution for the PSPACE-complete permission check.

Theorem 6 of the paper shows that deciding whether a contract permits a
query is PSPACE-complete in the formulas — a single adversarial query
can therefore pin a worker inside Algorithm 2 for an unbounded amount of
time.  Related systems bound their exploration explicitly (Huang &
Cleaveland's stream checking, Fortin et al.'s LTL query learning); this
module gives the broker the same discipline:

* :class:`Deadline` — an absolute wall-clock point (monotonic time)
  shared by every check a query performs;
* :class:`StepBudget` — a cap on the number of *search steps* (product
  pairs plus nested-cycle nodes, i.e. the existing
  :class:`~repro.core.permission.PermissionStats` counters) one
  permission check may spend;
* :class:`ExecutionBudget` — the combination threaded through
  :func:`~repro.core.permission.permits_ndfs` /
  :func:`~repro.core.permission.permits_scc`; the search calls
  :meth:`ExecutionBudget.charge` with its step counter and the budget
  raises :class:`~repro.errors.BudgetExceededError` once a limit is hit.

Deadline checks cost a clock read, so they are only performed every
``check_interval`` steps; the step cap is an integer comparison and is
enforced exactly.  A search interrupted by the budget never reports a
boolean — it raises, and the broker maps that into the ``TIMED_OUT``
verdict of its graceful-degradation policy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..errors import BudgetExceededError

#: How many search steps may pass between two wall-clock reads.  At the
#: ~0.1–0.3 ms/step pace of the NDFS on label-heavy automata this bounds
#: the deadline overshoot to a few milliseconds.
DEFAULT_CHECK_INTERVAL = 16


@dataclass(frozen=True)
class Deadline:
    """An absolute point in monotonic time.

    Immutable and thread-safe: one query creates a single deadline and
    every per-candidate check (possibly on different worker threads)
    consults it.  ``clock`` is injectable for deterministic tests.
    """

    at: float
    clock: Callable[[], float] = time.monotonic

    @classmethod
    def after(cls, seconds: float,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """The deadline ``seconds`` from now."""
        if seconds < 0:
            raise ValueError(f"deadline must be >= 0 seconds, got {seconds}")
        return cls(at=clock() + seconds, clock=clock)

    @classmethod
    def earliest(cls, *deadlines: "Deadline | None") -> "Deadline | None":
        """The tightest of several optional deadlines (``None`` if all
        are ``None``)."""
        present = [d for d in deadlines if d is not None]
        if not present:
            return None
        return min(present, key=lambda d: d.at)

    def expired(self) -> bool:
        return self.clock() >= self.at

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.at - self.clock()


@dataclass(frozen=True)
class StepBudget:
    """A cap on the search steps one permission check may spend.

    Deterministic — unlike a wall-clock deadline, the same query against
    the same contract exhausts a step budget at exactly the same point on
    every run, which is what the degradation tests rely on.
    """

    max_steps: int

    def __post_init__(self) -> None:
        if self.max_steps < 1:
            raise ValueError(
                f"step budget must be >= 1, got {self.max_steps}"
            )

    def exceeded(self, steps: int) -> bool:
        return steps > self.max_steps


@dataclass
class ExecutionBudget:
    """The per-check budget threaded into the permission algorithms.

    One instance per candidate check: the ``deadline`` may be shared
    across checks (it is immutable), but the charge bookkeeping is local,
    so budgets must not be reused across concurrent searches.

    The search charges its running step counter (the
    :class:`~repro.core.permission.PermissionStats` pair + cycle-node
    counts); :meth:`charge` raises :class:`BudgetExceededError` when the
    step cap is exceeded (exact) or the deadline has passed (checked
    every ``check_interval`` steps).
    """

    deadline: Deadline | None = None
    steps: StepBudget | None = None
    check_interval: int = DEFAULT_CHECK_INTERVAL
    #: set to ``"deadline"`` or ``"steps"`` when the budget trips.
    exhausted_reason: str | None = field(default=None, init=False)
    _next_deadline_check: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.check_interval < 1:
            raise ValueError(
                f"check interval must be >= 1, got {self.check_interval}"
            )

    @property
    def bounded(self) -> bool:
        """Whether this budget constrains anything at all."""
        return self.deadline is not None or self.steps is not None

    def charge(self, steps: int) -> None:
        """Account ``steps`` total search steps; raise when over budget."""
        if self.steps is not None and self.steps.exceeded(steps):
            self.exhausted_reason = "steps"
            raise BudgetExceededError(
                f"step budget of {self.steps.max_steps} exceeded "
                f"after {steps} search steps",
                reason="steps",
            )
        if self.deadline is not None and steps >= self._next_deadline_check:
            self._next_deadline_check = steps + self.check_interval
            if self.deadline.expired():
                self.exhausted_reason = "deadline"
                raise BudgetExceededError(
                    f"deadline exceeded after {steps} search steps",
                    reason="deadline",
                )

    def exhausted(self) -> bool:
        """Non-raising pre-check: is there any budget left to start work?

        Used for cancellation — a queued candidate whose query deadline
        has already passed is skipped without starting its search.
        """
        if self.exhausted_reason is not None:
            return True
        if self.deadline is not None and self.deadline.expired():
            self.exhausted_reason = "deadline"
            return True
        return False
