"""A write-preferring reader-writer lock.

:class:`~repro.broker.database.ContractDatabase` is read-mostly: queries
(and the thread pool ``query_many`` fans permission checks over) only
read the contract map, the prefilter trie and the projection stores,
while registration and deregistration mutate all three.  Guarding every
operation with one mutex would serialize the query side the paper works
hard to parallelize (§7.4); leaving it unguarded lets a query observe a
half-inserted trie node.  The classic fix is a shared/exclusive lock:

* any number of concurrent **readers** (queries);
* one **writer** (mutation) at a time, with no readers active;
* **writer preference** — once a writer is waiting, new readers queue
  behind it, so a steady query stream cannot starve registrations.

The lock is *not* reentrant in either direction: a thread holding the
write lock must not acquire the read lock (or vice versa) — the broker
keeps its critical sections leaf-level to honor that.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class RWLock:
    """Shared/exclusive lock with writer preference."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- shared (read) side -----------------------------------------------------------

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers < 0:
                self._readers = 0
                raise RuntimeError("release_read without acquire_read")
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    # -- exclusive (write) side -------------------------------------------------------

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without acquire_write")
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    # -- introspection ----------------------------------------------------------------

    @property
    def readers(self) -> int:
        with self._cond:
            return self._readers

    @property
    def write_locked(self) -> bool:
        with self._cond:
            return self._writer_active
