"""The per-contract projection store (§5.2–§5.3).

At registration time the store computes, for every subset ``L`` of the
contract's cited literals up to a configurable size cap, the coarsest
bisimulation *partition* of the projected automaton ``π_L(A)``.  As the
paper notes, storing the partition (a list of bisimilar-state classes)
is enough — the quotient graph is materialized lazily at query time from
the original BA, so storage stays a small fraction of the database.

Two ingredients keep the all-subsets computation tractable (§5.3):

* **refinement reuse** (Theorem 3): for ``L' ⊇ L`` the partition for
  ``L'`` refines the one for ``L``, so the subset lattice is traversed
  small-to-large and each refinement is *seeded* with a parent's
  partition instead of restarting from the {final, non-final} split;
* **deduplication**: most subsets induce the *same* partition (the
  paper observed ~5% distinct); partitions are stored once, keyed by a
  canonical signature, and subsets map to signature ids.

At query time :meth:`ProjectionStore.select` returns the smallest stored
automaton equivalent to the contract for the given query literals —
falling back to the full automaton when the required literal set exceeds
every stored subset (the case the complementary prefilter optimization
handles best, §5.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Iterator

from ..automata.bisim import (
    Partition,
    bisimulation_partition,
    blocks_of,
    partition_signature,
    quotient,
)
from ..automata.buchi import BuchiAutomaton
from ..automata.encode import EncodedAutomaton, encode_automaton
from ..automata.labels import Literal, parse_literal
from ..core.seeds import compute_seeds
from ..errors import ProjectionError
from .project import project, required_literals


@dataclass
class ProjectionStats:
    """Precomputation statistics (reported by the index benchmarks)."""

    subsets_considered: int = 0
    partitions_computed: int = 0
    distinct_partitions: int = 0
    build_seconds: float = 0.0
    stored_blocks: int = 0


class ProjectionStore:
    """Precomputed simplified projections of one contract BA.

    Args:
        ba: the (already reduced) contract BA.
        max_subset_size: cap on the size of projected literal subsets;
            ``None`` precomputes every subset (exponential in the cited
            literals — only sensible for small contracts).  Queries whose
            required literal set is larger than the cap simply fall back
            to the full automaton (§5.2).
        vocabulary: the contract's full event vocabulary, needed to
            encode materialized quotients for the flat int deciders
            (:meth:`select_artifacts`).  ``None`` (e.g. a store built by
            a process-pool worker) disables quotient encoding until the
            broker assigns it at registration.
    """

    def __init__(
        self,
        ba: BuchiAutomaton,
        max_subset_size: int | None = 2,
        extra_subsets: Iterable[frozenset] = (),
        vocabulary: frozenset | None = None,
    ):
        self.ba = ba
        self.literals = ba.literals()
        self.max_subset_size = max_subset_size
        self.vocabulary = vocabulary
        self._extra_subsets = [
            frozenset(s) & self.literals for s in extra_subsets
        ]
        self.stats = ProjectionStats()
        #: subset -> id of its partition in _partitions
        self._subset_to_partition: dict[frozenset[Literal], int] = {}
        #: deduplicated partitions, as state->block mappings
        self._partitions: list[Partition] = []
        self._signature_to_id: dict[frozenset, int] = {}
        #: lazily materialized quotient automata, keyed by (partition id,
        #: subset) — the labels depend on the subset, the shape on the
        #: partition.
        self._quotients: dict[tuple[int, frozenset[Literal]], BuchiAutomaton] = {}
        #: seeds (§6.2.4) of each materialized quotient, keyed like
        #: _quotients, so the permission algorithm never recomputes them.
        self._quotient_seeds: dict[tuple[int, frozenset[Literal]], frozenset] = {}
        #: flat int encodings + seed masks of materialized quotients,
        #: keyed like _quotients (only populated when a vocabulary is
        #: known — see select_artifacts).
        self._quotient_encodings: dict[
            tuple[int, frozenset[Literal]], tuple[EncodedAutomaton, int]
        ] = {}
        self._build()

    # -- registration-time computation -----------------------------------------

    def _build(self) -> None:
        start = time.perf_counter()
        cap = self.max_subset_size
        sizes: Iterable[int]
        if cap is None:
            sizes = range(0, len(self.literals) + 1)
        else:
            sizes = range(0, min(cap, len(self.literals)) + 1)
        ordered = sorted(self.literals)
        for size in sizes:
            for subset_tuple in combinations(ordered, size):
                subset = frozenset(subset_tuple)
                self.stats.subsets_considered += 1
                self._compute_subset(subset)
        # Workload-guided extras (§5.2): projections for the literal sets
        # an expected query workload will actually request, regardless of
        # their size.  Sorted smallest-first so larger extras can seed
        # from smaller ones.
        for subset in sorted(set(self._extra_subsets), key=len):
            if subset in self._subset_to_partition:
                continue
            self.stats.subsets_considered += 1
            self._compute_subset(subset)
        self.stats.build_seconds = time.perf_counter() - start
        self.stats.distinct_partitions = len(self._partitions)
        self._block_counts = [
            len(set(p.values())) for p in self._partitions
        ]
        self.stats.stored_blocks = sum(self._block_counts)

    def _compute_subset(self, subset: frozenset[Literal]) -> None:
        seed: Partition | None = None
        if subset:
            # Theorem 3: any stored subset of this one yields a valid
            # coarsening to seed from; prefer the finest minus-one parent,
            # falling back to a scan (needed for workload-guided extras
            # whose immediate parents were never computed).
            best_blocks = -1
            for literal in subset:
                parent_id = self._subset_to_partition.get(subset - {literal})
                if parent_id is None:
                    continue
                parent = self._partitions[parent_id]
                blocks = len(set(parent.values()))
                if blocks > best_blocks:
                    best_blocks = blocks
                    seed = parent
            if seed is None:
                for stored, parent_id in self._subset_to_partition.items():
                    if not stored < subset:
                        continue
                    parent = self._partitions[parent_id]
                    blocks = len(set(parent.values()))
                    if blocks > best_blocks:
                        best_blocks = blocks
                        seed = parent
        projected = project(self.ba, subset)
        partition = bisimulation_partition(projected, seed=seed)
        self.stats.partitions_computed += 1
        signature = partition_signature(partition)
        partition_id = self._signature_to_id.get(signature)
        if partition_id is None:
            partition_id = len(self._partitions)
            self._partitions.append(partition)
            self._signature_to_id[signature] = partition_id
        self._subset_to_partition[subset] = partition_id

    def precompute(self, subsets: Iterable[frozenset]) -> int:
        """Add projections for explicit literal subsets after the fact.

        This is the §5.2 workload-guided route: given the literal sets an
        expected query workload requests (see
        :func:`workload_projection_subsets`), precompute exactly those in
        addition to the capped lattice.  Returns how many new subsets
        were computed.
        """
        start = time.perf_counter()
        added = 0
        for subset in sorted(
            {frozenset(s) & self.literals for s in subsets}, key=len
        ):
            if subset in self._subset_to_partition:
                continue
            self.stats.subsets_considered += 1
            self._compute_subset(subset)
            added += 1
        self.stats.build_seconds += time.perf_counter() - start
        self.stats.distinct_partitions = len(self._partitions)
        self._block_counts = [
            len(set(p.values())) for p in self._partitions
        ]
        self.stats.stored_blocks = sum(self._block_counts)
        return added

    # -- serialization -------------------------------------------------------------

    def to_dict(self, state_numbering: dict | None = None) -> dict:
        """A JSON-ready snapshot of the precomputed artifacts: the
        deduplicated partitions and the subset -> partition map (§5.2's
        'list of bisimilar states' is exactly this data).

        ``state_numbering`` maps the BA's states to the dense integers of
        its serialized form (:meth:`BuchiAutomaton.canonical_numbering`),
        so a snapshot restored against the reloaded automaton lines up.
        Lazily materialized quotients are *not* persisted — they are
        query-time caches, rebuilt on demand.
        """
        remap = (
            (lambda s: s) if state_numbering is None
            else state_numbering.__getitem__
        )
        partitions = [
            sorted([remap(state), block] for state, block in p.items())
            for p in self._partitions
        ]
        subsets = [
            {
                "literals": [str(lit) for lit in sorted(subset)],
                "partition": partition_id,
            }
            for subset, partition_id in sorted(
                self._subset_to_partition.items(),
                key=lambda item: (len(item[0]), sorted(map(str, item[0]))),
            )
        ]
        return {
            "max_subset_size": self.max_subset_size,
            "partitions": partitions,
            "subsets": subsets,
            "stats": {
                "subsets_considered": self.stats.subsets_considered,
                "partitions_computed": self.stats.partitions_computed,
                "build_seconds": self.stats.build_seconds,
            },
        }

    @classmethod
    def from_dict(cls, ba: BuchiAutomaton, data: dict) -> "ProjectionStore":
        """Rebuild a store from :meth:`to_dict` output against ``ba`` (the
        reloaded automaton, whose states must match the numbering the
        snapshot was written with).  Raises :class:`ProjectionError` on
        any structural mismatch — the persistence layer then falls back
        to recomputing the store from scratch.
        """
        store = cls.__new__(cls)
        store.ba = ba
        store.literals = ba.literals()
        store.vocabulary = None
        store._extra_subsets = []
        store._quotients = {}
        store._quotient_seeds = {}
        store._quotient_encodings = {}
        try:
            cap = data["max_subset_size"]
            store.max_subset_size = None if cap is None else int(cap)
            store._partitions = [
                {int(state): int(block) for state, block in pairs}
                for pairs in data["partitions"]
            ]
            subset_docs = [
                (
                    frozenset(parse_literal(s) for s in doc["literals"]),
                    int(doc["partition"]),
                )
                for doc in data["subsets"]
            ]
            stats = data.get("stats", {})
            store.stats = ProjectionStats(
                subsets_considered=int(stats.get("subsets_considered", 0)),
                partitions_computed=int(stats.get("partitions_computed", 0)),
                build_seconds=float(stats.get("build_seconds", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProjectionError(
                f"malformed projection document: {exc}"
            ) from exc
        for partition in store._partitions:
            if set(partition) != set(ba.states):
                raise ProjectionError(
                    "stored partition does not cover the automaton's states"
                )
        store._subset_to_partition = {}
        for subset, partition_id in subset_docs:
            if not subset <= store.literals:
                raise ProjectionError(
                    f"stored subset {sorted(map(str, subset))} cites "
                    "literals the automaton does not"
                )
            if not 0 <= partition_id < len(store._partitions):
                raise ProjectionError(
                    f"partition id {partition_id} out of range"
                )
            store._subset_to_partition[subset] = partition_id
        store._signature_to_id = {
            partition_signature(p): i
            for i, p in enumerate(store._partitions)
        }
        store._block_counts = [
            len(set(p.values())) for p in store._partitions
        ]
        store.stats.distinct_partitions = len(store._partitions)
        store.stats.stored_blocks = sum(store._block_counts)
        return store

    # -- query-time use ------------------------------------------------------------

    def select(self, query_literals: Iterable[Literal]) -> BuchiAutomaton:
        """The smallest stored automaton equivalent to the contract for a
        query citing ``query_literals`` (Theorem 7 / Theorem 9); the full
        automaton if nothing smaller applies."""
        ba, _ = self.select_with_seeds(query_literals)
        return ba

    def select_with_seeds(
        self, query_literals: Iterable[Literal]
    ) -> tuple[BuchiAutomaton, frozenset | None]:
        """Like :meth:`select`, also returning the cached §6.2.4 seed set
        of the chosen automaton (``None`` when the full BA is returned,
        whose seeds the caller — the broker — precomputed itself)."""
        best = self._select_key(query_literals)
        if best is None:
            return self.ba, None
        return self._materialize(*best)

    def select_artifacts(
        self, query_literals: Iterable[Literal]
    ) -> tuple[
        BuchiAutomaton, frozenset | None, EncodedAutomaton | None, int | None
    ]:
        """:meth:`select_with_seeds` plus the chosen quotient's flat int
        encoding and seed mask for the encoded deciders.

        Returns ``(ba, seeds, encoded, seeds_mask)``.  The trailing pair
        is ``None`` when the full BA is selected (the broker holds the
        contract-level encoding itself) or when no ``vocabulary`` is set
        on the store (the caller then falls back to the object path).
        Quotient encodings are cached alongside the quotients they
        encode, so the cost is paid once per materialized projection.
        """
        best = self._select_key(query_literals)
        if best is None:
            return self.ba, None, None, None
        ba, seeds = self._materialize(*best)
        if self.vocabulary is None:
            return ba, seeds, None, None
        cached = self._quotient_encodings.get(best)
        if cached is None:
            encoded = encode_automaton(ba, self.vocabulary)
            cached = (encoded, encoded.state_mask(seeds))
            self._quotient_encodings[best] = cached
        return ba, seeds, cached[0], cached[1]

    def _select_key(
        self, query_literals: Iterable[Literal]
    ) -> tuple[int, frozenset[Literal]] | None:
        """The ``(partition id, subset)`` of the smallest applicable
        stored projection, or ``None`` for the full-automaton fallback."""
        needed = required_literals(query_literals, self.literals)
        best: tuple[int, frozenset[Literal]] | None = None
        best_blocks = self.ba.num_states + 1
        for subset, partition_id in self._subset_to_partition.items():
            if not needed <= subset:
                continue
            blocks = self._block_counts[partition_id]
            if blocks < best_blocks:
                best_blocks = blocks
                best = (partition_id, subset)
        if best is None or best_blocks >= self.ba.num_states:
            return None
        return best

    def _materialize(
        self, partition_id: int, subset: frozenset[Literal]
    ) -> tuple[BuchiAutomaton, frozenset]:
        key = (partition_id, subset)
        cached = self._quotients.get(key)
        if cached is None:
            projected = project(self.ba, subset)
            cached = quotient(projected, self._partitions[partition_id])
            self._quotients[key] = cached
            self._quotient_seeds[key] = compute_seeds(cached)
        return cached, self._quotient_seeds[key]

    # -- introspection ----------------------------------------------------------------

    @property
    def num_subsets(self) -> int:
        return len(self._subset_to_partition)

    @property
    def num_distinct_partitions(self) -> int:
        return len(self._partitions)

    @property
    def min_block_count(self) -> int:
        """The smallest stored quotient's block count — the best case a
        query can select here, the cheap cardinality stat the cost-based
        planner aggregates (the full automaton's size when nothing is
        stored)."""
        if not self._block_counts:
            return self.ba.num_states
        return min(self._block_counts)

    def partition_for(self, subset: frozenset[Literal]) -> list[frozenset]:
        """The stored bisimilar-state classes for one subset (for tests
        and introspection)."""
        partition_id = self._subset_to_partition.get(frozenset(subset))
        if partition_id is None:
            raise ProjectionError(f"no stored projection for {set(subset)}")
        return blocks_of(self._partitions[partition_id])

    def has_subset(self, subset: frozenset) -> bool:
        """True iff a projection for exactly this literal set is stored."""
        return frozenset(subset) in self._subset_to_partition

    def storage_estimate(self) -> int:
        """Entries needed to persist the store: per distinct partition its
        state->class list, plus the subset->partition map — the paper's
        'list of bisimilar states' footprint (§5.2)."""
        partition_entries = sum(len(p) for p in self._partitions)
        return partition_entries + len(self._subset_to_partition)
