"""The bisimulation optimization (§5): projections of contract BAs and
the per-contract store of precomputed simplified automata.

Typical use::

    from repro.projection import ProjectionStore

    store = ProjectionStore(contract_ba, max_subset_size=2)
    simplified = store.select(query_ba.literals())
    permits(simplified, query_ba, vocabulary)   # same verdict, faster
"""

from .project import (
    project,
    required_literals,
    workload_projection_subsets,
)
from .store import ProjectionStats, ProjectionStore

__all__ = [
    "project",
    "required_literals",
    "workload_projection_subsets",
    "ProjectionStats",
    "ProjectionStore",
]
