"""Projections of contract BAs onto literal sets (§5.1, Definition 8).

Given a contract BA ``A`` and a set of literals ``L``, the projection
``π_L(A)`` keeps only the literals of ``L`` on every transition label.
Theorem 7 shows the projection is *permission-equivalent* to ``A`` for
every query whose literals (restricted to contract events) have all
their negations inside ``L`` — the only information compatibility ever
consumes from a contract label is whether it contains the negation of a
query literal.

Projections by themselves do not shrink the automaton, but they make
previously distinct labels equal, which is what lets the bisimulation
quotient collapse states (§5.1, Example 12).
"""

from __future__ import annotations

from typing import Iterable

from ..automata.buchi import BuchiAutomaton, Transition
from ..automata.labels import Label, Literal


def project(ba: BuchiAutomaton, keep: Iterable[Literal]) -> BuchiAutomaton:
    """The projection ``π_keep(ba)``: same states, labels restricted to
    the given literals, duplicate transitions merged.

    Distinct labels are restricted once and the results shared across
    transitions — the projection store calls this for hundreds of
    subsets per contract, so the per-transition constant matters.
    """
    keep_set = frozenset(keep)
    restricted: dict[Label, Label] = {}
    transitions = set()
    for t in ba.transitions():
        label = restricted.get(t.label)
        if label is None:
            label = t.label.restrict(keep_set)
            restricted[t.label] = label
        transitions.add((t.src, label, t.dst))
    return BuchiAutomaton(
        ba.states,
        ba.initial,
        [Transition(src, label, dst) for src, label, dst in transitions],
        ba.final,
    )


def workload_projection_subsets(
    contract_literals: frozenset[Literal],
    query_literal_sets: Iterable[Iterable[Literal]],
) -> set[frozenset[Literal]]:
    """The projection subsets an expected query workload will request
    from a contract citing ``contract_literals`` (§5.2's workload-guided
    precomputation): one :func:`required_literals` set per query."""
    return {
        required_literals(literals, contract_literals)
        for literals in query_literal_sets
    }


def required_literals(
    query_literals: Iterable[Literal],
    contract_literals: frozenset[Literal],
) -> frozenset[Literal]:
    """The literal set a precomputed projection must contain to serve a
    query (Theorem 7): the negations of the query BA's literals,
    restricted to literals the contract actually cites.

    Negations of query literals the contract never cites can be dropped:
    a label cannot conflict on a literal it does not contain.
    """
    return frozenset(
        lit.negate() for lit in query_literals
    ) & contract_literals
