"""Journal-shipping read replicas.

A :class:`Replica` keeps a read-only copy of a leader shard's database
warm by tailing the leader's ``journal.jsonl`` — the same write-ahead
journal that already makes the leader crash-safe doubles as the
replication stream, the way the related stream-checking work replays a
finite observation prefix (Huang & Cleaveland; PAPERS.md).  The
replica's cursor is ``(epoch, byte offset, next sequence)``:

* **catch-up** — :meth:`poll` reads verified records past the offset
  with :meth:`Journal.read_from <repro.broker.journal.Journal.read_from>`
  (never mutating the leader's file) and applies them through the same
  ``register``/``deregister`` replay the leader's own recovery uses —
  so by construction the replica can only ever hold a *prefix* of the
  leader's acknowledged state;
* **torn tails** — a record the leader is mid-flush on simply is not
  consumed; the cursor stays put and the next poll retries;
* **epoch changes** — when the leader compacts (snapshot + journal
  reset, epoch bump), the byte cursor is meaningless; the replica
  re-syncs from the leader's snapshot directory and resumes tailing
  the fresh journal.

Queries against the replica are plain local queries — stale by at most
the replication lag, never wrong about any prefix they claim.

Two roles build on that loop (1.10):

* **read routing** — a coordinator hands a shard's read traffic to its
  replica under a :class:`ReadPreference` staleness bound (see
  :meth:`repro.dist.coordinator.Coordinator.attach_replica`);
* **promotion** — when the leader dies, :meth:`Replica.promote` turns
  the caught-up replica into a writable, journaled leader of its own:
  it verifies the replica holds the *entire* shipped journal tail,
  bumps the journal epoch past the dead leader's, and snapshots into a
  fresh directory a :class:`~repro.dist.server.ShardServer` can serve —
  so a coordinator can fail the shard's address over without
  renumbering a single global contract id.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..broker.database import BrokerConfig, ContractDatabase
from ..broker.journal import JOURNAL_FILE, Journal
from ..core.retry import BackoffPolicy
from ..errors import DistError, ReproError
from ..obs.metrics import MetricsRegistry

#: The poll cadence :meth:`Replica.catch_up` waits on between polls —
#: starts tight (journal writes usually land within milliseconds) and
#: backs off to a capped plateau instead of busy-spinning.
CATCH_UP_BACKOFF = BackoffPolicy(
    max_retries=0,  # unused: catch_up polls until its own deadline
    base_seconds=0.01,
    cap_seconds=0.25,
)


@dataclass
class ReplicaCursor:
    """Where in the leader's journal the replica stands."""

    epoch: int = -1  #: -1 = never synced
    offset: int = 0
    next_seq: int = 1


@dataclass(frozen=True)
class ReadPreference:
    """How stale a routed replica read may be.

    A coordinator serving a shard's read from its replica first polls
    the replica; when more than ``max_staleness_records`` verified
    leader records remain unapplied (or the replica is stalled), the
    read falls back to the leader instead.  The default of 0 only ever
    serves fully-caught-up answers."""

    max_staleness_records: int = 0

    def __post_init__(self) -> None:
        if self.max_staleness_records < 0:
            raise DistError(
                "max_staleness_records must be >= 0, got "
                f"{self.max_staleness_records}"
            )


@dataclass(frozen=True)
class PromotionReport:
    """What :meth:`Replica.promote` produced."""

    directory: str  #: the promoted leader's data directory
    epoch: int  #: the journal epoch the new leader writes at
    contracts: int  #: contracts carried over from the dead leader
    applied: int  #: records the final pre-promotion poll applied


@dataclass
class PollReport:
    """What one :meth:`Replica.poll` observed and applied."""

    applied: int = 0
    resynced: bool = False
    torn: bool = False
    #: verified leader records not yet applied (the replication lag
    #: in records; 0 when fully caught up)
    lag_records: int = 0
    #: bytes of journal past the cursor (includes any torn tail)
    lag_bytes: int = 0
    epoch: int = -1
    warnings: list = field(default_factory=list)


class Replica:
    """A read-only database tailing ``leader_dir``'s journal."""

    def __init__(self, leader_dir: str | Path, *,
                 config: BrokerConfig | None = None,
                 metrics: MetricsRegistry | None = None):
        self.leader_dir = Path(leader_dir)
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cursor = ReplicaCursor()
        self._db = ContractDatabase(config)
        self._ids: dict[str, int] = {}
        self._stalled_seq: int | None = None
        self.promoted = False

    @property
    def db(self) -> ContractDatabase:
        """The replica's local database (query it directly)."""
        return self._db

    @property
    def stalled(self) -> bool:
        """True when an unapplicable journal record poisoned the tail:
        the replica holds a consistent *prefix* but cannot advance
        until the leader compacts (or is replaced)."""
        return self._stalled_seq is not None

    @property
    def journal_path(self) -> Path:
        return self.leader_dir / JOURNAL_FILE

    # -- the replication loop ---------------------------------------------------------

    def poll(self) -> PollReport:
        """One replication step: detect epoch changes, read the tail,
        apply what verified.  Cheap when there is nothing new."""
        if self.promoted:
            raise DistError(
                "a promoted replica is a leader now; it no longer tails "
                f"{self.leader_dir}"
            )
        report = PollReport(epoch=self.cursor.epoch)
        started = time.perf_counter()

        header_epoch = Journal.read_header_epoch(self.journal_path)
        if header_epoch is None:
            # no journal (leader not started) or its header is torn;
            # nothing trustworthy to ship yet
            self._observe_lag(report)
            return report

        if header_epoch != self.cursor.epoch:
            self._resync(report)
        else:
            tail = Journal.read_from(
                self.journal_path, self.cursor.offset,
                expected_seq=self.cursor.next_seq,
            )
            if tail.end_offset < self.cursor.offset:
                # the file shrank under the same epoch (leader healed
                # its own torn tail); fall back to a full resync
                self._resync(report)
            else:
                self._apply(tail.records, report)
                self.cursor.offset = tail.end_offset
                report.torn = tail.torn
        report.epoch = self.cursor.epoch
        self._observe_lag(report)
        self.metrics.inc("dist.replica.polls")
        self.metrics.observe(
            "dist.replica.poll_seconds", time.perf_counter() - started
        )
        if report.applied:
            self.metrics.inc("dist.replica.applied", report.applied)
        return report

    def catch_up(self, *, timeout: float = 30.0,
                 backoff: BackoffPolicy | None = None) -> PollReport:
        """Poll until fully caught up (lag 0, no torn tail) or
        ``timeout`` elapses.

        The wait between polls follows ``backoff`` (default
        :data:`CATCH_UP_BACKOFF`): capped exponential with the shared
        deterministic jitter, salted by the leader directory so two
        replicas of different leaders desynchronize."""
        policy = backoff if backoff is not None else CATCH_UP_BACKOFF
        salt = f"replica:{self.leader_dir}"
        deadline = time.monotonic() + timeout
        attempt = 0
        while True:
            report = self.poll()
            header = Journal.read_header_epoch(self.journal_path)
            caught_up = (
                not report.torn
                and report.lag_bytes == 0
                and (header is None or header == self.cursor.epoch)
            )
            if caught_up:
                return report
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DistError(
                    f"replica did not catch up within {timeout}s "
                    f"(lag {report.lag_bytes} bytes, torn={report.torn})"
                )
            attempt += 1
            time.sleep(min(policy.delay(attempt, salt), remaining))

    def promote(self, directory: str | Path) -> PromotionReport:
        """Turn this caught-up replica into a writable leader rooted at
        ``directory``.

        Promotion refuses unless the replica holds the **entire**
        verified journal tail the dead leader shipped (a torn trailing
        record was never acknowledged to any client, so discarding it
        is safe), and refuses a stalled replica outright — promoting a
        poisoned prefix would silently drop acknowledged writes.  On
        success the replica's database gets a fresh journal at an epoch
        **past** the old leader's and is snapshotted into ``directory``
        — so any sibling replica re-pointed at the new leader sees the
        epoch change and resyncs from the new snapshot.  The promoted
        database keeps every contract's local id, which keeps every
        *global* id stable across the coordinator's failover
        (invariant 15).
        """
        from ..broker.persist import save_database

        if self.promoted:
            raise DistError("replica is already promoted")
        directory = Path(directory)
        if directory.resolve() == self.leader_dir.resolve():
            raise DistError(
                "promote into a fresh directory, not the dead leader's "
                f"({self.leader_dir}): its journal must stay intact as "
                "the replication source of record"
            )
        report = self.poll()
        if self.stalled:
            raise DistError(
                "a stalled replica holds only a prefix of the leader's "
                "acknowledged state and cannot be promoted (record "
                f"seq={self._stalled_seq} failed to apply)"
            )
        if report.lag_records:
            raise DistError(
                f"replica lags {report.lag_records} verified record(s) "
                "behind the shipped journal tail; catch_up() before "
                "promoting"
            )
        new_epoch = max(self.cursor.epoch, 0) + 1
        directory.mkdir(parents=True, exist_ok=True)
        # save_database writes the snapshot, bumps the journal to
        # epoch+1 and compacts — so open the journal one epoch early
        # and let the save land exactly on new_epoch
        journal = Journal.open(
            directory / JOURNAL_FILE, epoch=new_epoch - 1,
            config=self._db.config,
        )
        self._db.attach_journal(journal)
        self._db.dirty = True
        save_database(self._db, directory)
        self.promoted = True
        self.metrics.inc("dist.replica.promotions")
        return PromotionReport(
            directory=str(directory),
            epoch=journal.epoch,
            contracts=len(self._db),
            applied=report.applied,
        )

    def _resync(self, report: PollReport) -> None:
        """Rebuild from the leader's snapshot, then position the cursor
        at the start of the current journal epoch's tail."""
        from ..broker.persist import _CONTRACTS_FILE, load_database

        manifest_path = self.leader_dir / _CONTRACTS_FILE
        manifest_epoch = 0
        if manifest_path.exists():
            try:
                manifest = json.loads(
                    manifest_path.read_text(encoding="utf-8")
                )
                manifest_epoch = int(manifest.get("journal_epoch", 0))
            except (json.JSONDecodeError, TypeError, ValueError):
                manifest_epoch = 0
            db = load_database(self.leader_dir, self.config)
        else:
            db = ContractDatabase(self.config)

        tail = Journal.read_from(self.journal_path, 0)
        if tail.epoch is None:
            # header torn or file vanished mid-resync; keep the old
            # cursor invalid so the next poll retries the resync
            report.warnings.append("resync: journal header unreadable")
            return
        self._db = db
        self._ids = {c.name: c.contract_id for c in db.contracts()}
        self._stalled_seq = None
        self.cursor = ReplicaCursor(
            epoch=tail.epoch, offset=tail.end_offset,
            next_seq=(tail.records[-1].seq + 1) if tail.records else 1,
        )
        if tail.epoch == manifest_epoch:
            self._apply(tail.records, report)
        elif tail.records:
            # the snapshot already holds (epoch behind) or cannot
            # anchor (epoch ahead) these records — same policy as the
            # leader's own open_database: do not replay them
            report.warnings.append(
                f"resync: discarded {len(tail.records)} record(s) from "
                f"journal epoch {tail.epoch} vs snapshot {manifest_epoch}"
            )
        report.resynced = True
        report.torn = tail.torn
        self.metrics.inc("dist.replica.resyncs")

    def _apply(self, records, report: PollReport) -> None:
        for record in records:
            if (self._stalled_seq is not None
                    and record.seq >= self._stalled_seq):
                break
            try:
                if record.op == "register":
                    contract = self._db.register(
                        record.data["name"],
                        list(record.data["clauses"]),
                        record.data.get("attributes") or {},
                    )
                    self._ids[record.data["name"]] = contract.contract_id
                elif record.op == "deregister":
                    # the leader logs its *local* id; replica ids differ,
                    # so deregistration replays by name
                    name = record.data.get("name")
                    if name is None:
                        name = self._name_for_leader_id(
                            int(record.data["contract_id"])
                        )
                    if name is not None and name in self._ids:
                        self._db.deregister(self._ids.pop(name))
                # adopt_index / config records carry no replayable state
            except (ReproError, KeyError, TypeError, ValueError) as exc:
                # an unapplicable record poisons everything after it
                # (prefix consistency); stall until the next epoch
                self._stalled_seq = record.seq
                report.warnings.append(
                    f"replica: record seq={record.seq} op={record.op!r} "
                    f"failed to apply ({type(exc).__name__}: {exc}); "
                    "stalling until the leader compacts"
                )
                self.metrics.inc("dist.replica.stalled_records")
                break
            report.applied += 1
            self.cursor.next_seq = record.seq + 1

    def _name_for_leader_id(self, leader_id: int) -> str | None:
        """Best-effort leader-id → name resolution: replaying the same
        journal prefix assigns ids in the same order on both sides, so
        the replica's own id-order usually matches; fall back to None
        (skip) when it cannot be resolved."""
        for contract in self._db.contracts():
            if contract.contract_id == leader_id:
                return contract.name
        return None

    def _observe_lag(self, report: PollReport) -> None:
        try:
            size = self.journal_path.stat().st_size
        except OSError:
            size = 0
        report.lag_bytes = max(0, size - self.cursor.offset)
        # count verified-but-unapplied records without applying them
        if report.lag_bytes:
            tail = Journal.read_from(
                self.journal_path, self.cursor.offset,
                expected_seq=self.cursor.next_seq,
            )
            report.lag_records = len(tail.records)
        else:
            report.lag_records = 0
        self.metrics.set_gauge("dist.replica.lag_records",
                               report.lag_records)
        self.metrics.set_gauge("dist.replica.lag_bytes", report.lag_bytes)

    # -- the read surface -------------------------------------------------------------

    def query(self, query, options=None):
        """A read-only query against the replica's current state."""
        self.metrics.inc("dist.replica.queries")
        return self._db.query(query, options)

    def query_many(self, queries, options=None):
        self.metrics.inc("dist.replica.queries", len(list(queries)))
        return self._db.query_many(queries, options)

    def __len__(self) -> int:
        return len(self._db)
