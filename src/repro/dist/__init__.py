"""The distributed broker: sharding, fan-out querying, replication.

Layering: ``dist`` sits strictly *above* :mod:`repro.broker` — it
decides **where** contracts live and moves documents over the wire,
while every answer is still produced by an ordinary
:class:`~repro.broker.database.ContractDatabase` on some shard.
Distribution changes placement, never answers (docs/DEVELOPMENT.md
invariant 15); the ``sharded`` and ``replicated`` conformance cells
re-prove that equivalence against the single-node oracle on every run,
and the ``flaky-network`` / ``failover`` cells re-prove it *through*
injected transport faults and a leader replacement (invariant 16: a
retried or failed-over query returns the same answer a never-failed
cluster would, or a sound degradation).

Entry points:

* :class:`~repro.dist.partition.ShardRouter` — stable,
  seed-independent placement (SHA-256 + jump consistent hash);
* :class:`~repro.dist.server.ShardServer` — one shard: a (journaled)
  database behind a length-prefixed JSON socket protocol;
* :class:`~repro.dist.coordinator.Coordinator` /
  :class:`~repro.dist.coordinator.DistributedDatabase` — the asyncio
  fan-out front-end and its synchronous ``ContractDatabase``-shaped
  wrapper, with per-shard :class:`~repro.dist.coordinator.ShardHealth`
  circuit breakers and deadline-aware RPC retry;
* :class:`~repro.dist.replica.Replica` — a read-only copy kept warm by
  tailing the leader's write-ahead journal (journal shipping); serves
  routed reads under a :class:`~repro.dist.replica.ReadPreference`
  staleness bound and takes over for a dead leader via
  :meth:`~repro.dist.replica.Replica.promote`;
* :class:`~repro.dist.cluster.LocalCluster` — N shards (+ replica) on
  one machine, for tests, benchmarks and the CLI.
"""

from .cluster import LocalCluster
from .coordinator import (
    Coordinator,
    DistributedDatabase,
    RoutedContract,
    ShardHealth,
    TransientShardError,
)
from .partition import ShardRouter, jump_hash, stable_key
from .replica import (
    PollReport,
    PromotionReport,
    ReadPreference,
    Replica,
    ReplicaCursor,
)
from .server import ShardClient, ShardServer, serve_shard

__all__ = [
    "Coordinator",
    "DistributedDatabase",
    "LocalCluster",
    "PollReport",
    "PromotionReport",
    "ReadPreference",
    "Replica",
    "ReplicaCursor",
    "RoutedContract",
    "ShardClient",
    "ShardHealth",
    "ShardServer",
    "ShardRouter",
    "TransientShardError",
    "jump_hash",
    "serve_shard",
    "stable_key",
]
