"""Convenience harness: a whole cluster on one machine.

:class:`LocalCluster` starts N shard servers — in-process daemon
threads by default (deterministic and fast: what the tests and the
conformance cells use), or separate processes (``mode="process"``, the
deployment shape ``contract-broker serve`` scripts) — plus an optional
journal-shipping replica of shard 0, and hands out the matching
:class:`~repro.dist.coordinator.DistributedDatabase` front-end.
"""

from __future__ import annotations

import multiprocessing
import tempfile
from pathlib import Path

from ..broker.database import BrokerConfig
from ..core.retry import BackoffPolicy
from ..errors import DistError
from ..obs.metrics import MetricsRegistry
from .coordinator import (
    DEFAULT_BREAKER_RESET_SECONDS,
    DEFAULT_BREAKER_THRESHOLD,
    DEFAULT_RPC_TIMEOUT,
    DistributedDatabase,
)
from .replica import Replica
from .server import ShardServer, serve_shard


class LocalCluster:
    """N shards (+ optional replica of shard 0) on loopback sockets.

    ``directory`` roots one journaled subdirectory per shard
    (``shard-0/`` … ``shard-N/``); ``None`` keeps every shard
    memory-only (no journals — and therefore no replica).
    """

    def __init__(self, num_shards: int, *,
                 directory: str | Path | None = None,
                 config: BrokerConfig | None = None,
                 mode: str = "thread"):
        if num_shards < 1:
            raise DistError(f"need at least one shard, got {num_shards}")
        if mode not in ("thread", "process"):
            raise DistError(f"unknown cluster mode {mode!r}")
        self.num_shards = num_shards
        self.config = config
        self.mode = mode
        self._tmp = None
        if directory is None and mode == "process":
            # process shards need a filesystem rendezvous for journals
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            directory = self._tmp.name
        self.directory = Path(directory) if directory is not None else None
        self.servers: list[ShardServer] = []
        self._processes: list = []
        self._pipes: list = []
        self.addresses: list[tuple[str, int]] = []
        self._start()

    def shard_dir(self, shard: int) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"shard-{shard}"

    @property
    def leader_dir(self) -> Path:
        """Shard 0's journaled directory (what a replica tails)."""
        path = self.shard_dir(0)
        if path is None:
            raise DistError(
                "a memory-only cluster has no journal to replicate; "
                "construct LocalCluster with a directory"
            )
        return path

    def _start(self) -> None:
        if self.mode == "thread":
            for shard in range(self.num_shards):
                server = ShardServer(
                    shard, directory=self.shard_dir(shard),
                    config=self.config,
                ).start()
                self.servers.append(server)
                self.addresses.append(("127.0.0.1", server.port))
            return
        from ..broker.journal import _config_to_dict

        ctx = multiprocessing.get_context("spawn")
        config_doc = (
            _config_to_dict(self.config) if self.config is not None else None
        )
        for shard in range(self.num_shards):
            parent, child = ctx.Pipe()
            process = ctx.Process(
                target=serve_shard,
                args=(shard, str(self.shard_dir(shard)), config_doc,
                      "127.0.0.1", 0, child),
                daemon=True,
            )
            process.start()
            child.close()
            tag, port = parent.recv()  # blocks until the socket is bound
            if tag != "ready":  # pragma: no cover - defensive
                raise DistError(f"shard {shard} failed to start: {tag}")
            self._processes.append(process)
            self._pipes.append(parent)
            self.addresses.append(("127.0.0.1", port))

    def database(self, *, metrics: MetricsRegistry | None = None,
                 rpc_timeout: float = DEFAULT_RPC_TIMEOUT,
                 retry: BackoffPolicy | None = None,
                 breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 breaker_reset_seconds: float = DEFAULT_BREAKER_RESET_SECONDS,
                 ) -> DistributedDatabase:
        """A fresh coordinator front-end over this cluster."""
        return DistributedDatabase(
            self.addresses, metrics=metrics, rpc_timeout=rpc_timeout,
            retry=retry, breaker_threshold=breaker_threshold,
            breaker_reset_seconds=breaker_reset_seconds,
        )

    def replica(self, shard: int = 0, *,
                metrics: MetricsRegistry | None = None) -> Replica:
        """A journal-shipping replica of ``shard`` (default: shard 0)."""
        leader = self.shard_dir(shard)
        if leader is None:
            raise DistError(
                "a memory-only cluster has no journal to replicate; "
                "construct LocalCluster with a directory"
            )
        return Replica(leader, config=self.config, metrics=metrics)

    def stop_shard(self, shard: int) -> None:
        """Kill one thread-mode shard server (the chaos drills' leader
        murder weapon); its address stays in the coordinator's view so
        calls to it now fail like a dead host, not a closed topology."""
        if self.mode != "thread":
            raise DistError("stop_shard is only supported in thread mode")
        self.servers[shard].stop()

    def restart_shard(self, shard: int, *, db=None) -> tuple[str, int]:
        """Bring a thread-mode shard back up (optionally serving a
        promoted replica's ``db``) on a fresh port; returns the new
        address for :meth:`DistributedDatabase.fail_over`."""
        if self.mode != "thread":
            raise DistError("restart_shard is only supported in thread mode")
        if db is not None:
            server = ShardServer(shard, db=db).start()
        else:
            server = ShardServer(
                shard, directory=self.shard_dir(shard), config=self.config,
            ).start()
        self.servers[shard] = server
        address = ("127.0.0.1", server.port)
        self.addresses[shard] = address
        return address

    def stop(self) -> None:
        for server in self.servers:
            server.stop()
        self.servers = []
        for pipe, process in zip(self._pipes, self._processes):
            try:
                pipe.send("stop")
            except (BrokenPipeError, OSError):
                pass
        for pipe, process in zip(self._pipes, self._processes):
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5)
            pipe.close()
        self._pipes = []
        self._processes = []
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
