"""One shard of the distributed broker: a database behind a socket.

A :class:`ShardServer` owns a :class:`~repro.broker.database.ContractDatabase`
(journaled via :func:`~repro.broker.journal.open_database` when rooted
in a directory — which is what makes journal-shipping replication
possible) and serves the :mod:`repro.dist.protocol` request/response
ops over a loopback TCP socket.  It runs either in-process (a daemon
accept thread — what the tests, the conformance cells and
:class:`~repro.dist.cluster.LocalCluster` use) or as a dedicated
process via :func:`serve_shard` (what ``contract-broker serve``
launches).

The server never decides placement: it answers for exactly the
contracts the coordinator registered on it.  Identity on the wire is
the contract *name*; local ids stay local (invariant 15).
"""

from __future__ import annotations

import socket
import socketserver
import threading
from pathlib import Path

from ..broker.database import BrokerConfig, ContractDatabase
from ..broker.journal import JOURNAL_FILE, open_database
from ..core import faults
from ..errors import DistError, ProtocolError, ReproError
from . import protocol

#: Ops a shard answers.  ``save`` snapshots + compacts (the leader-side
#: epoch bump replicas must survive); ``shutdown`` stops the server.
SHARD_OPS = frozenset({
    "ping", "register", "deregister", "query", "query_many",
    "ingest", "status", "save", "shutdown",
})


class ShardServer:
    """A broker shard serving the wire protocol.

    ``directory`` roots a journaled database (crash-safe, replicatable);
    without one the shard is memory-only.  ``db`` serves an existing
    database instead of opening one — the failover path: a promoted
    replica's database goes straight behind a fresh socket without a
    reload (``directory`` then defaults to the attached journal's, so
    ``save``/``status`` keep working).  ``start()`` binds a loopback
    socket and serves from daemon threads; :meth:`handle_request` is
    also directly callable, so in-process callers (tests, the
    conformance runner) can skip the socket without skipping the
    serialization round-trip.
    """

    def __init__(self, shard_id: int, *,
                 directory: str | Path | None = None,
                 config: BrokerConfig | None = None,
                 db: ContractDatabase | None = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.shard_id = shard_id
        self.directory = Path(directory) if directory is not None else None
        if db is not None:
            if config is not None:
                raise DistError(
                    "pass either a pre-built db or a config to build "
                    "one with, not both"
                )
            self.db = db
            if self.directory is None and db.journal is not None:
                self.directory = Path(db.journal.path).parent
        elif self.directory is not None:
            self.db = open_database(self.directory, config)
        else:
            self.db = ContractDatabase(config)
        self._ids = {c.name: c.contract_id for c in self.db.contracts()}
        self._host = host
        self._port = port
        self._server: socketserver.ThreadingTCPServer | None = None
        self._thread: threading.Thread | None = None

    # -- the request surface ----------------------------------------------------------

    def handle_request(self, doc: dict) -> dict:
        """Dispatch one request document to a response document."""
        op = doc.get("op")
        if op not in SHARD_OPS:
            return protocol.error_doc(ProtocolError(f"unknown op {op!r}"))
        try:
            payload = getattr(self, f"_op_{op}")(doc)
        except ReproError as exc:
            self.db.metrics.inc("dist.shard.errors")
            return protocol.error_doc(exc)
        except (KeyError, TypeError, ValueError) as exc:
            self.db.metrics.inc("dist.shard.errors")
            return protocol.error_doc(
                ProtocolError(f"malformed {op!r} request: {exc}")
            )
        self.db.metrics.inc(f"dist.shard.ops.{op}")
        return {"ok": True, **payload}

    def _op_ping(self, doc: dict) -> dict:
        return {"pong": True, "shard_id": self.shard_id}

    def _op_register(self, doc: dict) -> dict:
        name = doc["name"]
        if not isinstance(name, str) or not name:
            raise ProtocolError(f"register needs a contract name, got {name!r}")
        if name in self._ids:
            raise DistError(
                f"shard {self.shard_id} already holds contract {name!r}"
            )
        contract = self.db.register(
            name, list(doc["clauses"]), doc.get("attributes") or {}
        )
        self._ids[name] = contract.contract_id
        return {"name": name, "contract_id": contract.contract_id}

    def _op_deregister(self, doc: dict) -> dict:
        name = doc["name"]
        contract_id = self._ids.get(name)
        if contract_id is None:
            raise DistError(
                f"shard {self.shard_id} holds no contract {name!r}"
            )
        self.db.deregister(contract_id)
        del self._ids[name]
        return {"name": name}

    def _op_query(self, doc: dict) -> dict:
        options = protocol.options_from_doc(doc)
        outcome = self.db.query(doc["query"], options)
        return {"outcome": protocol.outcome_to_doc(
            outcome, self._id_to_name()
        )}

    def _op_query_many(self, doc: dict) -> dict:
        options = protocol.options_from_doc(doc)
        queries = list(doc["queries"])
        outcomes = self.db.query_many(queries, options)
        payload = protocol.outcomes_doc(outcomes, self._id_to_name())
        return {"outcomes": payload["outcomes"]}

    def _op_ingest(self, doc: dict) -> dict:
        report = self.db.ingest(list(doc["events"]))
        return {"report": {
            "events": report.events,
            "deliveries": report.deliveries,
            "unknown_events": report.unknown_events,
            "alerts": [
                {
                    "kind": a.kind,
                    "contract": a.contract,
                    "watch": a.watch,
                    "event_index": a.event_index,
                    "events": sorted(a.events),
                }
                for a in report.alerts
            ],
        }}

    def _op_status(self, doc: dict) -> dict:
        journal = self.db.journal
        journal_doc = None
        if journal is not None:
            path = Path(journal.path)
            journal_doc = {
                "epoch": journal.epoch,
                "records": len(journal),
                "size_bytes": (
                    path.stat().st_size if path.exists() else 0
                ),
            }
        return {
            "shard_id": self.shard_id,
            "contracts": len(self.db),
            "names": sorted(self._ids),
            "directory": str(self.directory) if self.directory else None,
            "journal": journal_doc,
            "metrics": self.db.metrics.snapshot()["counters"],
        }

    def _op_save(self, doc: dict) -> dict:
        from ..broker.persist import save_database

        if self.directory is None:
            raise DistError(
                f"shard {self.shard_id} is memory-only; nothing to save"
            )
        save_database(self.db, self.directory)
        journal = self.db.journal
        return {"epoch": journal.epoch if journal is not None else None}

    def _op_shutdown(self, doc: dict) -> dict:
        if self._server is not None:
            # shut down from another thread: serve_forever must not wait
            # on the very request it is answering
            threading.Thread(target=self.stop, daemon=True).start()
        return {"stopping": True}

    def _id_to_name(self) -> dict[int, str]:
        return {cid: name for name, cid in self._ids.items()}

    # -- the socket surface -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise DistError(f"shard {self.shard_id} is not serving")
        return self._server.server_address  # type: ignore[return-value]

    @property
    def port(self) -> int:
        return self.address[1]

    def start(self) -> "ShardServer":
        """Bind the socket and serve from a daemon thread."""
        if self._server is not None:
            return self
        shard = self

        class Handler(socketserver.BaseRequestHandler):
            def handle(self):
                try:
                    while True:
                        request = protocol.recv_frame(self.request)
                        if request is None:
                            return
                        protocol.send_frame(
                            self.request, shard.handle_request(request)
                        )
                except ProtocolError as exc:
                    try:
                        protocol.send_frame(
                            self.request, protocol.error_doc(exc)
                        )
                    except OSError:
                        pass
                except OSError:
                    pass  # client went away mid-exchange

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = Server((self._host, self._port), Handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"shard-{self.shard_id}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self.db.journal is not None:
            self.db.journal.close()


class ShardClient:
    """A small blocking client for one shard (the CLI's ``shard-status``
    and the test suite use it; the coordinator speaks asyncio instead)."""

    def __init__(self, host: str, port: int, *, timeout: float = 10.0):
        self.host = host
        self.port = port
        try:
            faults.hit("dist.connect", host=host, port=port, client="sync")
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        except OSError as exc:
            raise DistError(
                f"cannot reach shard at {host}:{port}: {exc}"
            ) from exc

    def request(self, doc: dict) -> dict:
        try:
            faults.hit("dist.send", op=doc.get("op"), client="sync")
            protocol.send_frame(self._sock, doc)
            faults.hit("dist.recv", op=doc.get("op"), client="sync")
            response = protocol.recv_frame(self._sock)
        except OSError as exc:
            raise DistError(
                f"shard at {self.host}:{self.port} failed mid-request: {exc}"
            ) from exc
        if response is None:
            raise DistError(
                f"shard at {self.host}:{self.port} closed the connection"
            )
        if not response.get("ok"):
            raise DistError(
                f"shard at {self.host}:{self.port} rejected "
                f"{doc.get('op')!r}: {response.get('error')}"
            )
        return response

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "ShardClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_shard(shard_id: int, directory: str | None, config_doc: dict | None,
                host: str, port: int, conn=None) -> None:
    """Process entry point: run one shard until told to stop.

    ``conn`` (a multiprocessing pipe end) receives the bound port once
    the socket is up, then blocks until the parent sends anything —
    the stop signal.  With no pipe (foreground CLI use) the server runs
    until the process is interrupted.
    """
    from ..broker.journal import _config_from_dict

    config = _config_from_dict(config_doc) if config_doc else None
    server = ShardServer(
        shard_id, directory=directory, config=config, host=host, port=port
    )
    server.start()
    try:
        if conn is not None:
            conn.send(("ready", server.port))
            conn.recv()  # blocks until the parent signals stop (or EOFError)
        else:  # pragma: no cover - foreground mode is exercised via CLI
            threading.Event().wait()
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        server.stop()
