"""The coordinator↔shard wire protocol: length-prefixed JSON frames.

Every message is one JSON object encoded UTF-8 and prefixed with a
4-byte big-endian length — trivially parseable from any language, and
self-delimiting over a stream socket.  Requests are
``{"op": ..., **payload}``; responses are ``{"ok": true, **payload}``
or ``{"ok": false, "error": ..., "kind": <exception class name>}``.

Identity crosses the wire as **contract names**, never ids: each shard
assigns local ids in its own registration order, so the same contract
has a different id on every topology.  The coordinator keeps the
global id → (shard, name) catalog and translates at the edge
(docs/DEVELOPMENT.md invariant 15 — distribution changes placement,
never answers).

Query options ride as the same JSON document shape as
:class:`~repro.broker.spec.QuerySpec` options (plus the serialized
relational filter), so the wire format stays aligned with the
declarative query API instead of inventing a second encoding.

The framing layer itself carries **no** fault seams: the chaos seams
(``dist.connect`` / ``dist.send`` / ``dist.recv`` in
:mod:`repro.core.faults`) live at the *client* edges — the
coordinator's RPC path and :class:`~repro.dist.server.ShardClient` —
so injected faults count client attempts deterministically and never
fire on the server's half of the same exchange.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import struct
from typing import Any, Mapping

from ..broker.options import QueryOptions
from ..broker.query import QueryOutcome, QueryStats, Verdict
from ..broker.relational import MATCH_ALL, AttributeFilter
from ..broker.spec import SPEC_OPTION_KEYS, QuerySpec
from ..errors import ProtocolError
from ..ltl.parser import parse

#: 4-byte big-endian unsigned frame length.
_LENGTH = struct.Struct(">I")

#: Refuse frames past this size (64 MiB) — a corrupt length prefix must
#: not look like an instruction to allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


# -- framing --------------------------------------------------------------------------


def encode_frame(doc: Mapping[str, Any]) -> bytes:
    """One message as bytes: length prefix + JSON payload."""
    try:
        payload = json.dumps(doc, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unserializable frame: {exc}") from exc
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """Parse a frame payload back into a message dict."""
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed frame payload: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"frame payload must be an object, got {type(doc).__name__}"
        )
    return doc


def _parse_length(prefix: bytes) -> int:
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return length


def send_frame(sock: socket.socket, doc: Mapping[str, Any]) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(doc))


def _recv_exact(sock: socket.socket, size: int) -> bytes | None:
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks:
                raise ProtocolError(
                    f"connection closed mid-frame ({size - remaining} of "
                    f"{size} bytes)"
                )
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame from a blocking socket (``None`` on clean EOF)."""
    prefix = _recv_exact(sock, _LENGTH.size)
    if prefix is None:
        return None
    payload = _recv_exact(sock, _parse_length(prefix))
    if payload is None:
        raise ProtocolError("connection closed between length and payload")
    return decode_payload(payload)


async def read_frame(reader) -> dict | None:
    """Read one frame from an ``asyncio.StreamReader`` (``None`` on
    clean EOF)."""
    import asyncio

    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-length-prefix") from exc
    try:
        payload = await reader.readexactly(_parse_length(prefix))
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_payload(payload)


async def write_frame(writer, doc: Mapping[str, Any]) -> None:
    """Write one frame to an ``asyncio.StreamWriter`` and drain."""
    writer.write(encode_frame(doc))
    await writer.drain()


# -- option / outcome documents -------------------------------------------------------


def options_to_doc(options: QueryOptions) -> dict:
    """Serialize :class:`QueryOptions` for the wire.

    Non-default spec-compatible fields plus the relational filter.
    ``explain`` cannot cross the wire (witness objects are not JSON) and
    ``planner``/``contract_ids`` are coordinator-side concerns — the
    caller is expected to have stripped them (see
    :func:`check_distributable`).
    """
    check_distributable(options)
    spec = QuerySpec(query="true", filter=options.attribute_filter,
                     options=options.evolve(attribute_filter=MATCH_ALL))
    doc = spec.to_dict()
    doc.pop("query", None)
    return doc


def options_from_doc(doc: Mapping[str, Any]) -> QueryOptions:
    """Rebuild :class:`QueryOptions` from :func:`options_to_doc`."""
    options = QuerySpec._options_from_doc(doc.get("options") or {})
    filter_items = doc.get("filter") or []
    return options.evolve(
        attribute_filter=AttributeFilter.from_list(filter_items)
    )


def check_distributable(options: QueryOptions) -> None:
    """Reject options the protocol cannot carry faithfully."""
    if options.explain:
        raise ProtocolError(
            "explain witnesses cannot cross the shard protocol; run the "
            "query against a single-node database to extract witnesses"
        )
    if options.contract_ids is not None:
        raise ProtocolError(
            "contract_ids are shard-local; the coordinator resolves "
            "global ids before fan-out"
        )
    if options.planner is not None:
        raise ProtocolError(
            "a planner instance cannot cross the wire; set "
            "use_planner=True and let each shard construct its own"
        )


def stats_to_doc(stats: QueryStats) -> dict:
    """A :class:`QueryStats` as a plain JSON-able dict."""
    return dataclasses.asdict(stats)


def stats_from_doc(doc: Mapping[str, Any]) -> QueryStats:
    names = {f.name for f in dataclasses.fields(QueryStats)}
    return QueryStats(**{k: v for k, v in doc.items() if k in names})


def outcome_to_doc(outcome: QueryOutcome,
                   id_to_name: Mapping[int, str] | None = None) -> dict:
    """Serialize a shard's :class:`QueryOutcome` — names only, plus the
    per-name verdict map and the stats counters.

    ``verdicts`` covers every candidate, including NOT_PERMITTED ones
    that appear in neither answer tuple, so the server passes its full
    local ``id_to_name`` catalog; without one, only the names the
    outcome itself carries can be resolved.
    """
    id_to_name = dict(id_to_name or {})
    id_to_name.update(zip(outcome.contract_ids, outcome.contract_names))
    id_to_name.update(zip(outcome.maybe_ids, outcome.maybe_names))
    verdicts = {}
    for contract_id, verdict in outcome.verdicts.items():
        name = id_to_name.get(contract_id)
        if name is not None:
            verdicts[name] = verdict.value
    return {
        "formula": str(outcome.formula),
        "permitted": list(outcome.contract_names),
        "maybe": list(outcome.maybe_names),
        "verdicts": verdicts,
        "stats": stats_to_doc(outcome.stats),
    }


def outcomes_doc(outcomes, id_to_name: Mapping[int, str]) -> dict:
    """The full ``query_many`` success payload for a batch of outcomes
    — one shape shared by the shard server and the coordinator's
    replica-read path, so a replica-served answer is byte-identical to
    a leader-served one."""
    return {"ok": True, "outcomes": [
        outcome_to_doc(outcome, id_to_name) for outcome in outcomes
    ]}


def outcome_from_doc(doc: Mapping[str, Any]) -> QueryOutcome:
    """Rebuild a (name-keyed, id-less) :class:`QueryOutcome` from
    :func:`outcome_to_doc` — ids are filled in by the coordinator's
    catalog, so here they stay empty."""
    try:
        formula = parse(doc["formula"])
        permitted = tuple(doc.get("permitted") or ())
        maybe = tuple(doc.get("maybe") or ())
        verdicts = {
            name: Verdict(value)
            for name, value in (doc.get("verdicts") or {}).items()
        }
        stats = stats_from_doc(doc.get("stats") or {})
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed outcome document: {exc}") from exc
    return QueryOutcome(
        formula=formula,
        contract_ids=(),
        contract_names=permitted,
        stats=stats,
        verdicts=verdicts,
        maybe_ids=(),
        maybe_names=maybe,
    )


def error_doc(exc: Exception) -> dict:
    """The failure-response form of an exception."""
    return {"ok": False, "error": str(exc), "kind": type(exc).__name__}
