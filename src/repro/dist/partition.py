"""Stable hash partitioning of contracts across shards.

The router must place a contract on the same shard no matter which
process, interpreter, or ``PYTHONHASHSEED`` computes the placement —
so built-in ``hash()`` (salted per process for strings) is explicitly
off the table.  Keys are derived from the contract name with SHA-256
and mapped to a shard with Lamport's *jump consistent hash*
(Lamport & Veach 2014): a stateless function ``jump_hash(key, n)``
with two properties this module leans on:

* **determinism** — pure integer arithmetic on the digest, identical
  in every process;
* **minimal movement** — growing ``n`` shards to ``n+1`` moves only
  ~``1/(n+1)`` of the keys, and every moved key lands on the *new*
  shard (no key ever moves between two pre-existing shards).

Both properties are pinned by property-based tests in
``tests/dist/test_partition.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import sha256

from ..errors import ReproError

#: 2**64, the modulus of the jump-hash LCG state.
_M64 = 1 << 64


def stable_key(name: str) -> int:
    """A process-independent 64-bit key for a contract name."""
    digest = sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def jump_hash(key: int, buckets: int) -> int:
    """Lamport's jump consistent hash: map ``key`` to ``[0, buckets)``.

    The loop jumps through the sequence of buckets the key would have
    landed in as the cluster grew; the last jump below ``buckets`` is
    the answer.
    """
    if buckets <= 0:
        raise ReproError(f"jump_hash needs at least one bucket, got {buckets}")
    b, j = -1, 0
    while j < buckets:
        b = j
        key = (key * 2862933555777941757 + 1) % _M64
        # the top 33 bits of the LCG state drive the next jump
        j = int((b + 1) * ((1 << 31) / ((key >> 33) + 1)))
    return b


@dataclass(frozen=True)
class ShardRouter:
    """Places contract names on ``num_shards`` shards, stably.

    Placement depends only on the contract name and the shard count —
    never on registration order, process identity, or hash seed — so a
    coordinator restarted with the same topology routes every existing
    contract to the shard that already holds it.
    """

    num_shards: int

    def __post_init__(self):
        if self.num_shards <= 0:
            raise ReproError(
                f"a cluster needs at least one shard, got {self.num_shards}"
            )

    def shard_for(self, name: str) -> int:
        """The shard index ``[0, num_shards)`` owning ``name``."""
        return jump_hash(stable_key(name), self.num_shards)

    def partition(self, names: list[str]) -> list[list[str]]:
        """Split ``names`` into per-shard lists (order preserved)."""
        out: list[list[str]] = [[] for _ in range(self.num_shards)]
        for name in names:
            out[self.shard_for(name)].append(name)
        return out
