"""The distributed broker front-end: route, fan out, merge.

The :class:`Coordinator` owns the only cluster-global state — the
catalog mapping each registered contract to a global id and the shard
the :class:`~repro.dist.partition.ShardRouter` placed it on.  Every
mutation routes to exactly one shard; every query fans out to all of
them concurrently (asyncio) and the shard answers are merged back into
one :class:`~repro.broker.query.QueryOutcome` in **global registration
order** — the same ascending-id order a single-node database reports —
so a distributed answer is byte-comparable to the single-node oracle's
(invariant 15: distribution changes placement, never answers).

Degradation composes across the network: a shard that misses its RPC
deadline (or is simply gone) contributes SKIPPED verdicts for every
contract it owns, exactly the shape a single node gives queued
candidates when the budget runs out first — so the merged outcome
keeps satisfying ``permitted ⊆ exact ⊆ permitted ∪ maybe``.

:class:`DistributedDatabase` wraps the coordinator in the synchronous
``ContractDatabase``-shaped client API (a background event loop), so
application code can switch a single-node database for a cluster
without touching call sites.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass

from ..broker.options import Degradation, QueryOptions, coerce_query_options
from ..broker.query import QueryOutcome, QueryStats, Verdict
from ..broker.spec import QuerySpec
from ..errors import DistError
from ..ltl.ast import Formula
from ..ltl.parser import parse
from ..obs.metrics import COUNT_BUCKETS, MetricsRegistry
from . import protocol
from .partition import ShardRouter

#: Grace added on top of a query's own deadline before the coordinator
#: gives up on a shard RPC (the shard needs time to serialize/ship the
#: degraded answer it produced *at* the deadline).
RPC_GRACE_SECONDS = 5.0

#: RPC timeout for queries with no deadline of their own.
DEFAULT_RPC_TIMEOUT = 300.0


@dataclass(frozen=True)
class RoutedContract:
    """The coordinator's receipt for one registration."""

    contract_id: int  #: the cluster-global id
    name: str
    shard: int  #: which shard holds it


class Coordinator:
    """The asyncio cluster front-end over ``addresses`` shards.

    One persistent connection per shard, serialized per shard with a
    lock (concurrent fan-out across shards, in-order frames within
    one); a failed connection is re-dialed on the next request.
    """

    def __init__(self, addresses: list[tuple[str, int]], *,
                 metrics: MetricsRegistry | None = None,
                 rpc_timeout: float = DEFAULT_RPC_TIMEOUT):
        if not addresses:
            raise DistError("a cluster needs at least one shard address")
        self.addresses = list(addresses)
        self.router = ShardRouter(len(self.addresses))
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.rpc_timeout = rpc_timeout
        self._catalog: dict[int, RoutedContract] = {}
        self._by_name: dict[str, int] = {}
        self._next_id = 1
        self._conns: list[tuple | None] = [None] * len(self.addresses)
        self._locks = [asyncio.Lock() for _ in self.addresses]

    # -- plumbing ---------------------------------------------------------------------

    async def _connection(self, shard: int):
        conn = self._conns[shard]
        if conn is None:
            host, port = self.addresses[shard]
            try:
                conn = await asyncio.open_connection(host, port)
            except OSError as exc:
                raise DistError(
                    f"cannot reach shard {shard} at {host}:{port}: {exc}"
                ) from exc
            self._conns[shard] = conn
        return conn

    async def _call(self, shard: int, doc: dict, *,
                    timeout: float | None = None) -> dict:
        """One request/response exchange with ``shard`` (raises
        :class:`DistError` on transport failure, protocol violation,
        timeout, or a shard-side error response)."""
        started = time.perf_counter()
        try:
            async with self._locks[shard]:
                reader, writer = await self._connection(shard)
                try:
                    await protocol.write_frame(writer, doc)
                    response = await asyncio.wait_for(
                        protocol.read_frame(reader),
                        timeout if timeout is not None else self.rpc_timeout,
                    )
                except (OSError, asyncio.TimeoutError, DistError):
                    # the connection's framing state is unknown now
                    self._conns[shard] = None
                    writer.close()
                    raise
        except asyncio.TimeoutError as exc:
            self.metrics.inc(f"dist.shard.{shard}.timeouts")
            raise DistError(
                f"shard {shard} missed the RPC deadline for "
                f"{doc.get('op')!r}"
            ) from exc
        except OSError as exc:
            self.metrics.inc(f"dist.shard.{shard}.failures")
            raise DistError(
                f"shard {shard} transport failed during "
                f"{doc.get('op')!r}: {exc}"
            ) from exc
        finally:
            self.metrics.observe(
                f"dist.shard.{shard}.rpc_seconds",
                time.perf_counter() - started,
            )
        if response is None:
            self._conns[shard] = None
            self.metrics.inc(f"dist.shard.{shard}.failures")
            raise DistError(
                f"shard {shard} closed the connection mid-request"
            )
        self.metrics.inc(f"dist.shard.{shard}.requests")
        if not response.get("ok"):
            raise DistError(
                f"shard {shard} rejected {doc.get('op')!r}: "
                f"{response.get('error')}"
            )
        return response

    async def aclose(self) -> None:
        for shard, conn in enumerate(self._conns):
            if conn is not None:
                conn[1].close()
                self._conns[shard] = None

    # -- mutations (routed to one shard) ----------------------------------------------

    async def register(self, name: str, clauses, attributes=None) -> RoutedContract:
        if name in self._by_name:
            raise DistError(f"contract {name!r} is already registered")
        shard = self.router.shard_for(name)
        clauses = [clauses] if isinstance(clauses, str) else list(clauses)
        await self._call(shard, {
            "op": "register",
            "name": name,
            "clauses": [str(c) for c in clauses],
            "attributes": dict(attributes or {}),
        })
        routed = RoutedContract(
            contract_id=self._next_id, name=name, shard=shard
        )
        self._next_id += 1
        self._catalog[routed.contract_id] = routed
        self._by_name[name] = routed.contract_id
        self.metrics.inc("dist.registrations")
        self.metrics.inc(f"dist.shard.{shard}.contracts")
        return routed

    async def deregister(self, contract_id: int) -> None:
        routed = self._catalog.get(contract_id)
        if routed is None:
            raise DistError(f"no contract with global id {contract_id}")
        await self._call(routed.shard, {
            "op": "deregister", "name": routed.name,
        })
        del self._catalog[contract_id]
        del self._by_name[routed.name]
        self.metrics.inc("dist.deregistrations")

    # -- queries (fanned out to every shard) ------------------------------------------

    async def query(self, query, options: QueryOptions | None = None) -> QueryOutcome:
        outcomes = await self.query_many([query], options)
        return outcomes[0]

    async def query_many(self, queries, options: QueryOptions | None = None
                         ) -> list[QueryOutcome]:
        """Fan a workload out to every shard and merge per query.

        The whole batch ships as one ``query_many`` RPC per shard (one
        round trip), and each shard evaluates it against only its own
        contracts; merging restores global registration order.
        """
        if isinstance(queries, (str, Formula, QuerySpec)):
            raise DistError(
                "query_many takes a sequence of queries; use query() for one"
            )
        queries = list(queries)
        specs: list[str] = []
        merged_options = options
        for query in queries:
            if isinstance(query, QuerySpec):
                raise DistError(
                    "pass QuerySpec through query(), not query_many()"
                )
            specs.append(str(query))
        options = coerce_query_options("query_many", merged_options, {})
        protocol.check_distributable(options)
        if not specs:
            return []

        started = time.perf_counter()
        doc = {"op": "query_many", "queries": specs,
               **protocol.options_to_doc(options)}
        shard_docs = await self._fan_out(doc, options, started)
        outcomes = []
        for qi, text in enumerate(specs):
            per_shard = [
                (shard, docs["outcomes"][qi] if docs is not None else None)
                for shard, docs in shard_docs
            ]
            outcomes.append(self._merge(text, per_shard, options))
        elapsed = time.perf_counter() - started
        self.metrics.inc("dist.queries", len(specs))
        self.metrics.observe("dist.fanout_seconds", elapsed)
        self.metrics.observe(
            "dist.fanout_queries", len(specs), COUNT_BUCKETS
        )
        return outcomes

    async def _fan_out(self, doc: dict, options: QueryOptions,
                       started: float) -> list[tuple[int, dict | None]]:
        """Send ``doc`` to every shard concurrently; a shard that fails
        or misses the deadline yields ``None`` (merged as SKIPPED)."""

        async def one(shard: int) -> dict | None:
            send = dict(doc)
            timeout = self.rpc_timeout
            if options.deadline_seconds is not None:
                # propagate the *remaining* budget: time already spent
                # routing/serializing is not given back to the shard
                remaining = max(
                    0.0,
                    options.deadline_seconds
                    - (time.perf_counter() - started),
                )
                shard_options = options.evolve(deadline_seconds=remaining)
                send.update(protocol.options_to_doc(shard_options))
                timeout = remaining + RPC_GRACE_SECONDS
            try:
                return await self._call(shard, send, timeout=timeout)
            except DistError:
                if options.degradation is Degradation.FAIL:
                    raise
                self.metrics.inc("dist.merge.skipped_shards")
                return None

        return list(zip(
            range(len(self.addresses)),
            await asyncio.gather(*(one(s) for s in range(len(self.addresses)))),
        ))

    def _merge(self, query_text: str,
               per_shard: list[tuple[int, dict | None]],
               options: QueryOptions) -> QueryOutcome:
        """Merge shard outcome documents into one global outcome, in
        ascending global-id (registration) order — the order a
        single-node database reports."""
        shard_verdicts: dict[int, dict] = {}
        shard_stats: list[QueryStats] = []
        failed: set[int] = set()
        for shard, doc in per_shard:
            if doc is None:
                failed.add(shard)
                continue
            shard_verdicts[shard] = doc.get("verdicts") or {}
            shard_stats.append(protocol.stats_from_doc(doc.get("stats") or {}))

        permitted_ids: list[int] = []
        permitted_names: list[str] = []
        maybe_ids: list[int] = []
        maybe_names: list[str] = []
        verdicts: dict[int, Verdict] = {}
        skipped_on_failed = 0

        for global_id in sorted(self._catalog):
            routed = self._catalog[global_id]
            if routed.shard in failed:
                continue  # handled below: SKIPPED, in one sorted pass
            value = shard_verdicts[routed.shard].get(routed.name)
            if value is None:
                continue  # not a candidate on its shard
            verdict = Verdict(value)
            verdicts[global_id] = verdict
            if verdict is Verdict.PERMITTED:
                permitted_ids.append(global_id)
                permitted_names.append(routed.name)
            elif verdict in (Verdict.TIMED_OUT, Verdict.SKIPPED):
                if options.degradation is Degradation.MAYBE:
                    maybe_ids.append(global_id)
                    maybe_names.append(routed.name)

        if failed:
            for global_id in sorted(self._catalog):
                routed = self._catalog[global_id]
                if routed.shard not in failed:
                    continue
                verdicts[global_id] = Verdict.SKIPPED
                skipped_on_failed += 1
                if options.degradation is Degradation.MAYBE:
                    maybe_ids.append(global_id)
                    maybe_names.append(routed.name)
            maybe = sorted(zip(maybe_ids, maybe_names))
            maybe_ids = [i for i, _ in maybe]
            maybe_names = [n for _, n in maybe]

        stats = QueryStats(
            translation_seconds=max(
                (s.translation_seconds for s in shard_stats), default=0.0
            ),
            prefilter_seconds=max(
                (s.prefilter_seconds for s in shard_stats), default=0.0
            ),
            selection_seconds=max(
                (s.selection_seconds for s in shard_stats), default=0.0
            ),
            # the shards ran concurrently: the merged permission time is
            # the slowest shard's (the critical path), not the sum
            permission_seconds=max(
                (s.permission_seconds for s in shard_stats), default=0.0
            ),
            total_seconds=max(
                (s.total_seconds for s in shard_stats), default=0.0
            ),
            database_size=len(self._catalog),
            relational_matches=sum(
                s.relational_matches for s in shard_stats
            ),
            candidates=sum(s.candidates for s in shard_stats)
            + skipped_on_failed,
            checked=sum(s.checked for s in shard_stats),
            permitted=len(permitted_ids),
            timed_out=sum(s.timed_out for s in shard_stats),
            skipped=sum(s.skipped for s in shard_stats) + skipped_on_failed,
            degraded=any(s.degraded for s in shard_stats)
            or bool(skipped_on_failed),
            deadline_seconds=options.deadline_seconds,
            step_budget=options.step_budget,
            used_prefilter=any(s.used_prefilter for s in shard_stats),
            used_projections=any(s.used_projections for s in shard_stats),
            used_encoded=any(s.used_encoded for s in shard_stats),
            stage_order=shard_stats[0].stage_order
            if shard_stats else "attr_first",
            planned=any(s.planned for s in shard_stats),
        )
        return QueryOutcome(
            formula=parse(query_text),
            contract_ids=tuple(permitted_ids),
            contract_names=tuple(permitted_names),
            stats=stats,
            verdicts=verdicts,
            maybe_ids=tuple(maybe_ids),
            maybe_names=tuple(maybe_names),
        )

    # -- streaming & operations -------------------------------------------------------

    async def ingest(self, events) -> dict:
        """Route stream records to the shards owning their contracts
        (broadcast records go everywhere) and merge the reports."""
        per_shard: list[list] = [[] for _ in self.addresses]
        for record in events:
            if not isinstance(record, dict):
                raise DistError(
                    "distributed ingest takes JSON stream records "
                    "({'events': [...], 'contract': name-or-null})"
                )
            name = record.get("contract")
            if name is None:
                for bucket in per_shard:
                    bucket.append(record)
            else:
                global_id = self._by_name.get(name)
                if global_id is None:
                    raise DistError(f"no contract {name!r} registered")
                per_shard[self._catalog[global_id].shard].append(record)

        async def one(shard: int):
            if not per_shard[shard]:
                return None
            return await self._call(shard, {
                "op": "ingest", "events": per_shard[shard],
            })

        responses = await asyncio.gather(
            *(one(s) for s in range(len(self.addresses)))
        )
        merged = {"events": 0, "deliveries": 0, "unknown_events": 0,
                  "alerts": []}
        for response in responses:
            if response is None:
                continue
            report = response["report"]
            merged["events"] += report["events"]
            merged["deliveries"] += report["deliveries"]
            merged["unknown_events"] += report["unknown_events"]
            merged["alerts"].extend(report["alerts"])
        self.metrics.inc("dist.ingest.events", merged["events"])
        return merged

    async def status(self) -> dict:
        """Per-shard status documents plus the coordinator's view."""
        async def one(shard: int):
            try:
                return await self._call(shard, {"op": "status"})
            except DistError as exc:
                return {"ok": False, "error": str(exc), "shard_id": shard}

        shards = await asyncio.gather(
            *(one(s) for s in range(len(self.addresses)))
        )
        return {
            "shards": list(shards),
            "contracts": len(self._catalog),
            "addresses": [list(a) for a in self.addresses],
        }

    async def save_all(self) -> list[dict]:
        """Snapshot + compact every shard that has a directory."""
        return list(await asyncio.gather(
            *(self._call(s, {"op": "save"})
              for s in range(len(self.addresses)))
        ))

    def __len__(self) -> int:
        return len(self._catalog)


class DistributedDatabase:
    """The synchronous, ``ContractDatabase``-shaped face of a cluster.

    Owns a background event loop; every method round-trips through the
    :class:`Coordinator` on it.  Use as a context manager (or call
    :meth:`close`)."""

    def __init__(self, addresses: list[tuple[str, int]], *,
                 metrics: MetricsRegistry | None = None,
                 rpc_timeout: float = DEFAULT_RPC_TIMEOUT):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="dist-coordinator",
            daemon=True,
        )
        self._thread.start()
        self.coordinator = Coordinator(
            addresses, metrics=metrics, rpc_timeout=rpc_timeout
        )

    def _run(self, coro):
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result()

    @property
    def metrics(self) -> MetricsRegistry:
        return self.coordinator.metrics

    def register(self, name, clauses=None, attributes=None) -> RoutedContract:
        # accept a ContractSpec-like first argument, matching the
        # single-node register() convenience
        if clauses is None and hasattr(name, "clauses"):
            spec = name
            return self._run(self.coordinator.register(
                spec.name, [str(c) for c in spec.clauses],
                dict(spec.attributes),
            ))
        return self._run(self.coordinator.register(name, clauses, attributes))

    def deregister(self, contract_id: int) -> None:
        self._run(self.coordinator.deregister(contract_id))

    def query(self, query, options=None) -> QueryOutcome:
        if isinstance(query, QuerySpec):
            if options is not None:
                raise DistError(
                    "pass either a QuerySpec or explicit options, not both"
                )
            options = query.to_options()
            query = query.query
        return self._run(self.coordinator.query(str(query), options))

    def query_many(self, queries, options=None) -> list[QueryOutcome]:
        if isinstance(queries, (str, Formula, QuerySpec)):
            # guard before [str(q) for q in ...] would shred a bare
            # string into one query per character
            raise DistError(
                "query_many takes a sequence of queries; use query() for one"
            )
        return self._run(self.coordinator.query_many(
            [str(q) for q in queries], options
        ))

    def ingest(self, events) -> dict:
        return self._run(self.coordinator.ingest(list(events)))

    def status(self) -> dict:
        return self._run(self.coordinator.status())

    def save_all(self) -> list[dict]:
        return self._run(self.coordinator.save_all())

    def __len__(self) -> int:
        return len(self.coordinator)

    def close(self) -> None:
        if self._loop.is_closed():
            return
        self._run(self.coordinator.aclose())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop.close()

    def __enter__(self) -> "DistributedDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
