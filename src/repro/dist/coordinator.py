"""The distributed broker front-end: route, fan out, merge — and survive.

The :class:`Coordinator` owns the only cluster-global state — the
catalog mapping each registered contract to a global id and the shard
the :class:`~repro.dist.partition.ShardRouter` placed it on.  Every
mutation routes to exactly one shard; every query fans out to all of
them concurrently (asyncio) and the shard answers are merged back into
one :class:`~repro.broker.query.QueryOutcome` in **global registration
order** — the same ascending-id order a single-node database reports —
so a distributed answer is byte-comparable to the single-node oracle's
(invariant 15: distribution changes placement, never answers).

Fault tolerance (1.10) is layered on that contract, never above it:

* **retry** — a transient transport failure (connect refused, socket
  ``OSError``, RPC timeout, connection closed mid-exchange) on an
  *idempotent* op (``query``/``query_many``/``status``/``ping``) is
  retried under the shared :class:`~repro.core.retry.BackoffPolicy`
  (capped exponential, deterministic jitter salted per shard+op).
  Every retry re-checks the query deadline first, so a retried call
  never outlives the budget the caller set.  ``register``/
  ``deregister`` are *not* retried — the shard may or may not have
  applied them — and surface a typed
  :class:`~repro.errors.RetryableDistError` so the caller can verify
  and re-issue (a blind re-register is rejected by name, not
  double-applied);
* **health** — each shard carries a :class:`ShardHealth` circuit
  breaker: ``failure_threshold`` consecutive transport failures open
  it, an open breaker fails calls fast (no connect, no timeout wait),
  and after ``reset_seconds`` a single half-open probe is let through —
  success closes the breaker, failure re-opens it.  A query against an
  open breaker degrades to SKIPPED immediately instead of stalling the
  whole fan-out on a dead shard's timeout;
* **replica reads** — :meth:`Coordinator.attach_replica` routes a
  shard's read traffic to a journal-shipping
  :class:`~repro.dist.replica.Replica` under a
  :class:`~repro.dist.replica.ReadPreference` staleness bound,
  falling back to the leader when the replica lags past it;
* **failover** — :meth:`Coordinator.fail_over` repoints a shard's
  address at a promoted replica (:meth:`~repro.dist.replica.Replica.
  promote`) without renumbering a single global contract id: the
  catalog is keyed by name+shard slot, so placement survives the
  leader change untouched.

Degradation composes across the network: a shard that misses its RPC
deadline (or is simply gone, or breaker-open) contributes SKIPPED
verdicts for every contract it owns, exactly the shape a single node
gives queued candidates when the budget runs out first — so the merged
outcome keeps satisfying ``permitted ⊆ exact ⊆ permitted ∪ maybe``,
and under ``Degradation.FAIL`` a failed shard raises
:class:`~repro.errors.QueryBudgetError`, the same typed refusal a
single node gives an exhausted budget.

:class:`DistributedDatabase` wraps the coordinator in the synchronous
``ContractDatabase``-shaped client API (a background event loop), so
application code can switch a single-node database for a cluster
without touching call sites.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass

from ..broker.options import Degradation, QueryOptions, coerce_query_options
from ..broker.query import QueryOutcome, QueryStats, Verdict
from ..broker.spec import QuerySpec
from ..core import faults
from ..core.retry import BackoffPolicy
from ..errors import DistError, QueryBudgetError, RetryableDistError
from ..ltl.ast import Formula
from ..ltl.parser import parse
from ..obs.metrics import COUNT_BUCKETS, MetricsRegistry
from . import protocol
from .partition import ShardRouter
from .replica import ReadPreference, Replica

#: Grace added on top of a query's own deadline before the coordinator
#: gives up on a shard RPC (the shard needs time to serialize/ship the
#: degraded answer it produced *at* the deadline).
RPC_GRACE_SECONDS = 5.0

#: RPC timeout for queries with no deadline of their own.
DEFAULT_RPC_TIMEOUT = 300.0

#: Ops safe to retry blind: re-running them cannot double-apply state.
IDEMPOTENT_OPS = frozenset({"ping", "query", "query_many", "status"})

#: The default RPC retry schedule (see :mod:`repro.core.retry`).
DEFAULT_RETRY = BackoffPolicy()

#: Consecutive transport failures that open a shard's circuit breaker.
DEFAULT_BREAKER_THRESHOLD = 3

#: Seconds an open breaker waits before letting a half-open probe out.
DEFAULT_BREAKER_RESET_SECONDS = 5.0


class TransientShardError(DistError):
    """A shard RPC failed for a reason that may heal: connect refused,
    transport ``OSError``, RPC timeout, connection closed mid-exchange,
    or an open circuit breaker refusing to try.  The coordinator
    retries these on idempotent ops; everything else surfaces them."""


@dataclass(frozen=True)
class RoutedContract:
    """The coordinator's receipt for one registration."""

    contract_id: int  #: the cluster-global id
    name: str
    shard: int  #: which shard holds it


class ShardHealth:
    """A consecutive-failure circuit breaker for one shard.

    States: **closed** (healthy — calls flow), **open** (tripped —
    calls fail fast without touching the network), **half-open** (the
    reset timeout elapsed — exactly one probe is let through; its
    outcome decides between closed and open again).  Success in any
    state closes the breaker and zeroes the failure streak.
    """

    def __init__(self, *, failure_threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 reset_seconds: float = DEFAULT_BREAKER_RESET_SECONDS,
                 clock=time.monotonic):
        if failure_threshold < 1:
            raise DistError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self.state = "closed"
        self.consecutive_failures = 0
        self.last_error: str | None = None
        self._opened_at = 0.0
        self._probing = False

    def allow(self) -> bool:
        """May a call go out now?  In half-open, the first ``allow``
        claims the single probe slot; concurrent callers are refused
        until the probe reports back."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._clock() - self._opened_at >= self.reset_seconds:
                self.state = "half_open"
                self._probing = True
                return True
            return False
        # half-open: one probe in flight at a time
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        self.state = "closed"
        self.consecutive_failures = 0
        self.last_error = None
        self._probing = False

    def record_failure(self, error: BaseException | str) -> bool:
        """Count one transport failure; returns True when this failure
        *trips* the breaker (closed/half-open → open)."""
        self.consecutive_failures += 1
        self.last_error = str(error)
        self._probing = False
        should_open = (
            self.state == "half_open"
            or self.consecutive_failures >= self.failure_threshold
        )
        if should_open and self.state != "open":
            self.state = "open"
            self._opened_at = self._clock()
            return True
        if should_open:
            self._opened_at = self._clock()
        return False

    def reset(self) -> None:
        """Forget everything (a failover installed a fresh address)."""
        self.record_success()

    @property
    def healthy(self) -> bool:
        return self.state == "closed"

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "last_error": self.last_error,
        }


class Coordinator:
    """The asyncio cluster front-end over ``addresses`` shards.

    One persistent connection per shard, serialized per shard with a
    lock (concurrent fan-out across shards, in-order frames within
    one); a failed connection is re-dialed on the next request.
    """

    def __init__(self, addresses: list[tuple[str, int]], *,
                 metrics: MetricsRegistry | None = None,
                 rpc_timeout: float = DEFAULT_RPC_TIMEOUT,
                 retry: BackoffPolicy | None = None,
                 breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 breaker_reset_seconds: float = DEFAULT_BREAKER_RESET_SECONDS,
                 health_clock=time.monotonic):
        if not addresses:
            raise DistError("a cluster needs at least one shard address")
        self.addresses = list(addresses)
        self.router = ShardRouter(len(self.addresses))
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.rpc_timeout = rpc_timeout
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self._catalog: dict[int, RoutedContract] = {}
        self._by_name: dict[str, int] = {}
        self._next_id = 1
        self._conns: list[tuple | None] = [None] * len(self.addresses)
        self._locks = [asyncio.Lock() for _ in self.addresses]
        self.health = [
            ShardHealth(
                failure_threshold=breaker_threshold,
                reset_seconds=breaker_reset_seconds,
                clock=health_clock,
            )
            for _ in self.addresses
        ]
        self._replicas: dict[int, tuple[Replica, ReadPreference]] = {}

    # -- plumbing ---------------------------------------------------------------------

    async def _connection(self, shard: int):
        conn = self._conns[shard]
        if conn is None:
            host, port = self.addresses[shard]
            faults.hit("dist.connect", shard=shard, host=host, port=port)
            try:
                conn = await asyncio.open_connection(host, port)
            except OSError as exc:
                raise TransientShardError(
                    f"cannot reach shard {shard} at {host}:{port}: {exc}"
                ) from exc
            self._conns[shard] = conn
        return conn

    async def _call_once(self, shard: int, doc: dict, *,
                         timeout: float | None = None) -> dict:
        """One request/response exchange with ``shard``.  Raises
        :class:`TransientShardError` on transport failure or timeout
        (may heal — retryable), plain :class:`DistError` on a
        shard-side error response (the shard is up and answering)."""
        started = time.perf_counter()
        op = doc.get("op")
        try:
            async with self._locks[shard]:
                reader, writer = await self._connection(shard)
                try:
                    faults.hit("dist.send", shard=shard, op=op)
                    await protocol.write_frame(writer, doc)
                    faults.hit("dist.recv", shard=shard, op=op)
                    response = await asyncio.wait_for(
                        protocol.read_frame(reader),
                        timeout if timeout is not None else self.rpc_timeout,
                    )
                except (OSError, asyncio.TimeoutError, DistError):
                    # the connection's framing state is unknown now
                    self._conns[shard] = None
                    writer.close()
                    raise
        except TransientShardError:
            self.metrics.inc(f"dist.shard.{shard}.failures")
            raise
        except asyncio.TimeoutError as exc:
            self.metrics.inc(f"dist.shard.{shard}.timeouts")
            raise TransientShardError(
                f"shard {shard} missed the RPC deadline for {op!r}"
            ) from exc
        except OSError as exc:
            self.metrics.inc(f"dist.shard.{shard}.failures")
            raise TransientShardError(
                f"shard {shard} transport failed during {op!r}: {exc}"
            ) from exc
        finally:
            self.metrics.observe(
                f"dist.shard.{shard}.rpc_seconds",
                time.perf_counter() - started,
            )
        if response is None:
            self._conns[shard] = None
            self.metrics.inc(f"dist.shard.{shard}.failures")
            raise TransientShardError(
                f"shard {shard} closed the connection mid-request"
            )
        self.metrics.inc(f"dist.shard.{shard}.requests")
        if not response.get("ok"):
            raise DistError(
                f"shard {shard} rejected {op!r}: {response.get('error')}"
            )
        return response

    async def _call(self, shard: int, doc: dict, *,
                    timeout: float | None = None,
                    deadline: float | None = None) -> dict:
        """A health-tracked, retrying exchange with ``shard``.

        ``deadline`` is an absolute ``time.perf_counter()`` value the
        call (including every retry and backoff sleep) must never
        outlive — it is re-checked before each attempt *and* before
        each backoff sleep.  Idempotent ops retry transient failures
        under the coordinator's :class:`~repro.core.retry.BackoffPolicy`;
        mutations surface a :class:`~repro.errors.RetryableDistError`
        after the first transient failure instead.
        """
        op = doc.get("op")
        health = self.health[shard]
        attempt = 0
        while True:
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise TransientShardError(
                        f"query budget exhausted before shard {shard} "
                        f"answered {op!r}"
                    )
                attempt_timeout = remaining + RPC_GRACE_SECONDS
                if timeout is not None:
                    attempt_timeout = min(timeout, attempt_timeout)
            else:
                attempt_timeout = timeout
            if not health.allow():
                self._publish_health(shard)
                raise TransientShardError(
                    f"shard {shard} circuit breaker is open "
                    f"({health.consecutive_failures} consecutive "
                    f"failure(s); last: {health.last_error})"
                )
            try:
                response = await self._call_once(
                    shard, doc, timeout=attempt_timeout
                )
            except TransientShardError as exc:
                if health.record_failure(exc):
                    self.metrics.inc("dist.breaker_open")
                self._publish_health(shard)
                if op not in IDEMPOTENT_OPS:
                    raise RetryableDistError(
                        f"transient failure on non-idempotent {op!r} "
                        f"against shard {shard}: {exc}  (not retried "
                        "automatically — verify shard state, then "
                        "re-issue)"
                    ) from exc
                attempt += 1
                if attempt > self.retry.max_retries:
                    raise
                pause = self.retry.delay(attempt, salt=f"shard{shard}:{op}")
                if (deadline is not None
                        and time.perf_counter() + pause >= deadline):
                    # a retry must never outlive the query's own budget
                    raise
                self.metrics.inc("dist.retries")
                self.metrics.inc(f"dist.shard.{shard}.retries")
                await asyncio.sleep(pause)
                continue
            health.record_success()
            self._publish_health(shard)
            return response

    def _publish_health(self, shard: int) -> None:
        health = self.health[shard]
        self.metrics.set_gauge(
            f"dist.shard.{shard}.healthy", 1.0 if health.healthy else 0.0
        )
        self.metrics.set_gauge(
            f"dist.shard.{shard}.consecutive_failures",
            health.consecutive_failures,
        )

    async def aclose(self) -> None:
        for shard, conn in enumerate(self._conns):
            if conn is not None:
                conn[1].close()
                self._conns[shard] = None

    # -- topology: replicas and failover ----------------------------------------------

    def attach_replica(self, shard: int, replica: Replica,
                       preference: ReadPreference | None = None) -> None:
        """Route ``shard``'s read traffic to ``replica`` whenever its
        replication lag is within ``preference``'s staleness bound;
        reads past the bound (or any replica failure) fall back to the
        leader transparently."""
        self._check_shard(shard)
        self._replicas[shard] = (
            replica, preference if preference is not None else ReadPreference()
        )

    def detach_replica(self, shard: int) -> None:
        self._replicas.pop(shard, None)

    def fail_over(self, shard: int, address: tuple[str, int]) -> None:
        """Repoint ``shard`` at ``address`` — a promoted replica (or a
        restarted leader).  The catalog is untouched: every contract
        keeps its global id and its shard slot (invariant 15 —
        distribution changes placement, never answers), only the wire
        destination changes.  The shard's breaker and connection are
        reset so the next call probes the new address immediately."""
        self._check_shard(shard)
        host, port = address
        conn = self._conns[shard]
        if conn is not None:
            conn[1].close()
            self._conns[shard] = None
        self.addresses[shard] = (str(host), int(port))
        self.health[shard].reset()
        self._publish_health(shard)
        # the promoted replica is the leader now; never read-route a
        # shard to its own leader
        self._replicas.pop(shard, None)
        self.metrics.inc("dist.failovers")

    def reset_breakers(self) -> None:
        """Close every breaker (an operator healed the network)."""
        for shard in range(len(self.addresses)):
            self.health[shard].reset()
            self._publish_health(shard)

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < len(self.addresses):
            raise DistError(
                f"no shard {shard} in a {len(self.addresses)}-shard cluster"
            )

    async def check_health(self, *, timeout: float = 5.0) -> list[dict]:
        """Probe every shard with a ``status`` RPC (through the breaker
        and retry machinery, so the health state updates) and report
        one document per shard."""
        async def one(shard: int) -> dict:
            doc: dict = {
                "shard": shard,
                "address": list(self.addresses[shard]),
            }
            try:
                status = await self._call(
                    shard, {"op": "status"}, timeout=timeout
                )
            except DistError as exc:
                doc.update(healthy=False, error=str(exc))
            else:
                doc.update(
                    healthy=True,
                    contracts=status.get("contracts"),
                    journal=status.get("journal"),
                )
            doc["breaker"] = self.health[shard].to_dict()
            return doc

        return list(await asyncio.gather(
            *(one(s) for s in range(len(self.addresses)))
        ))

    # -- mutations (routed to one shard) ----------------------------------------------

    async def register(self, name: str, clauses, attributes=None) -> RoutedContract:
        if name in self._by_name:
            raise DistError(f"contract {name!r} is already registered")
        shard = self.router.shard_for(name)
        clauses = [clauses] if isinstance(clauses, str) else list(clauses)
        await self._call(shard, {
            "op": "register",
            "name": name,
            "clauses": [str(c) for c in clauses],
            "attributes": dict(attributes or {}),
        })
        routed = RoutedContract(
            contract_id=self._next_id, name=name, shard=shard
        )
        self._next_id += 1
        self._catalog[routed.contract_id] = routed
        self._by_name[name] = routed.contract_id
        self.metrics.inc("dist.registrations")
        self.metrics.inc(f"dist.shard.{shard}.contracts")
        return routed

    async def deregister(self, contract_id: int) -> None:
        routed = self._catalog.get(contract_id)
        if routed is None:
            raise DistError(f"no contract with global id {contract_id}")
        await self._call(routed.shard, {
            "op": "deregister", "name": routed.name,
        })
        del self._catalog[contract_id]
        del self._by_name[routed.name]
        self.metrics.inc("dist.deregistrations")

    # -- queries (fanned out to every shard) ------------------------------------------

    async def query(self, query, options: QueryOptions | None = None) -> QueryOutcome:
        outcomes = await self.query_many([query], options)
        return outcomes[0]

    async def query_many(self, queries, options: QueryOptions | None = None
                         ) -> list[QueryOutcome]:
        """Fan a workload out to every shard and merge per query.

        The whole batch ships as one ``query_many`` RPC per shard (one
        round trip), and each shard evaluates it against only its own
        contracts; merging restores global registration order.
        """
        if isinstance(queries, (str, Formula, QuerySpec)):
            raise DistError(
                "query_many takes a sequence of queries; use query() for one"
            )
        queries = list(queries)
        specs: list[str] = []
        merged_options = options
        for query in queries:
            if isinstance(query, QuerySpec):
                raise DistError(
                    "pass QuerySpec through query(), not query_many()"
                )
            specs.append(str(query))
        options = coerce_query_options("query_many", merged_options, {})
        protocol.check_distributable(options)
        if not specs:
            return []

        started = time.perf_counter()
        doc = {"op": "query_many", "queries": specs,
               **protocol.options_to_doc(options)}
        shard_docs = await self._fan_out(doc, options, started)
        outcomes = []
        for qi, text in enumerate(specs):
            per_shard = [
                (shard, docs["outcomes"][qi] if docs is not None else None)
                for shard, docs in shard_docs
            ]
            outcomes.append(self._merge(text, per_shard, options))
        elapsed = time.perf_counter() - started
        self.metrics.inc("dist.queries", len(specs))
        self.metrics.observe("dist.fanout_seconds", elapsed)
        self.metrics.observe(
            "dist.fanout_queries", len(specs), COUNT_BUCKETS
        )
        return outcomes

    async def _fan_out(self, doc: dict, options: QueryOptions,
                       started: float) -> list[tuple[int, dict | None]]:
        """Send ``doc`` to every shard concurrently; a shard that fails
        or misses the deadline yields ``None`` (merged as SKIPPED —
        or, under ``Degradation.FAIL``, raises
        :class:`~repro.errors.QueryBudgetError`)."""

        async def one(shard: int) -> dict | None:
            send = dict(doc)
            timeout = self.rpc_timeout
            deadline = None
            if options.deadline_seconds is not None:
                # propagate the *remaining* budget: time already spent
                # routing/serializing is not given back to the shard
                deadline = started + options.deadline_seconds
                remaining = max(0.0, deadline - time.perf_counter())
                shard_options = options.evolve(deadline_seconds=remaining)
                send.update(protocol.options_to_doc(shard_options))
                timeout = remaining + RPC_GRACE_SECONDS
            if shard in self._replicas:
                response = await self._replica_read(shard, send)
                if response is not None:
                    return response
            try:
                return await self._call(
                    shard, send, timeout=timeout, deadline=deadline
                )
            except DistError as exc:
                if options.degradation is Degradation.FAIL:
                    raise QueryBudgetError(
                        f"shard {shard} failed under Degradation.FAIL: "
                        f"{exc}"
                    ) from exc
                self.metrics.inc("dist.merge.skipped_shards")
                return None

        return list(zip(
            range(len(self.addresses)),
            await asyncio.gather(*(one(s) for s in range(len(self.addresses)))),
        ))

    async def _replica_read(self, shard: int, send: dict) -> dict | None:
        """Serve ``shard``'s slice of a read from its attached replica
        when the replication lag is within the read preference's bound;
        ``None`` means "go ask the leader" (stale, stalled, or the
        replica itself failed)."""
        replica, preference = self._replicas[shard]
        try:
            report = await asyncio.to_thread(replica.poll)
            if (report.lag_records > preference.max_staleness_records
                    or replica.stalled):
                self.metrics.inc("dist.replica_read_fallbacks")
                return None
            shard_options = protocol.options_from_doc(send)
            outcomes = await asyncio.to_thread(
                replica.query_many, list(send["queries"]), shard_options
            )
        except Exception:
            # any replica trouble falls back to the leader; reads must
            # never be *less* available with a replica attached
            self.metrics.inc("dist.replica_read_fallbacks")
            return None
        id_to_name = {
            c.contract_id: c.name for c in replica.db.contracts()
        }
        self.metrics.inc("dist.replica_reads")
        return protocol.outcomes_doc(outcomes, id_to_name)

    def _merge(self, query_text: str,
               per_shard: list[tuple[int, dict | None]],
               options: QueryOptions) -> QueryOutcome:
        """Merge shard outcome documents into one global outcome, in
        ascending global-id (registration) order — the order a
        single-node database reports."""
        shard_verdicts: dict[int, dict] = {}
        shard_stats: list[QueryStats] = []
        failed: set[int] = set()
        for shard, doc in per_shard:
            if doc is None:
                failed.add(shard)
                continue
            shard_verdicts[shard] = doc.get("verdicts") or {}
            shard_stats.append(protocol.stats_from_doc(doc.get("stats") or {}))

        permitted_ids: list[int] = []
        permitted_names: list[str] = []
        maybe_ids: list[int] = []
        maybe_names: list[str] = []
        verdicts: dict[int, Verdict] = {}
        skipped_on_failed = 0

        for global_id in sorted(self._catalog):
            routed = self._catalog[global_id]
            if routed.shard in failed:
                continue  # handled below: SKIPPED, in one sorted pass
            value = shard_verdicts[routed.shard].get(routed.name)
            if value is None:
                continue  # not a candidate on its shard
            verdict = Verdict(value)
            verdicts[global_id] = verdict
            if verdict is Verdict.PERMITTED:
                permitted_ids.append(global_id)
                permitted_names.append(routed.name)
            elif verdict in (Verdict.TIMED_OUT, Verdict.SKIPPED):
                if options.degradation is Degradation.MAYBE:
                    maybe_ids.append(global_id)
                    maybe_names.append(routed.name)

        if failed:
            for global_id in sorted(self._catalog):
                routed = self._catalog[global_id]
                if routed.shard not in failed:
                    continue
                verdicts[global_id] = Verdict.SKIPPED
                skipped_on_failed += 1
                if options.degradation is Degradation.MAYBE:
                    maybe_ids.append(global_id)
                    maybe_names.append(routed.name)
            maybe = sorted(zip(maybe_ids, maybe_names))
            maybe_ids = [i for i, _ in maybe]
            maybe_names = [n for _, n in maybe]

        stats = QueryStats(
            translation_seconds=max(
                (s.translation_seconds for s in shard_stats), default=0.0
            ),
            prefilter_seconds=max(
                (s.prefilter_seconds for s in shard_stats), default=0.0
            ),
            selection_seconds=max(
                (s.selection_seconds for s in shard_stats), default=0.0
            ),
            # the shards ran concurrently: the merged permission time is
            # the slowest shard's (the critical path), not the sum
            permission_seconds=max(
                (s.permission_seconds for s in shard_stats), default=0.0
            ),
            total_seconds=max(
                (s.total_seconds for s in shard_stats), default=0.0
            ),
            database_size=len(self._catalog),
            relational_matches=sum(
                s.relational_matches for s in shard_stats
            ),
            candidates=sum(s.candidates for s in shard_stats)
            + skipped_on_failed,
            checked=sum(s.checked for s in shard_stats),
            permitted=len(permitted_ids),
            timed_out=sum(s.timed_out for s in shard_stats),
            skipped=sum(s.skipped for s in shard_stats) + skipped_on_failed,
            degraded=any(s.degraded for s in shard_stats)
            or bool(skipped_on_failed),
            deadline_seconds=options.deadline_seconds,
            step_budget=options.step_budget,
            used_prefilter=any(s.used_prefilter for s in shard_stats),
            used_projections=any(s.used_projections for s in shard_stats),
            used_encoded=any(s.used_encoded for s in shard_stats),
            stage_order=shard_stats[0].stage_order
            if shard_stats else "attr_first",
            planned=any(s.planned for s in shard_stats),
        )
        return QueryOutcome(
            formula=parse(query_text),
            contract_ids=tuple(permitted_ids),
            contract_names=tuple(permitted_names),
            stats=stats,
            verdicts=verdicts,
            maybe_ids=tuple(maybe_ids),
            maybe_names=tuple(maybe_names),
        )

    # -- streaming & operations -------------------------------------------------------

    async def ingest(self, events) -> dict:
        """Route stream records to the shards owning their contracts
        (broadcast records go everywhere) and merge the reports."""
        per_shard: list[list] = [[] for _ in self.addresses]
        for record in events:
            if not isinstance(record, dict):
                raise DistError(
                    "distributed ingest takes JSON stream records "
                    "({'events': [...], 'contract': name-or-null})"
                )
            name = record.get("contract")
            if name is None:
                for bucket in per_shard:
                    bucket.append(record)
            else:
                global_id = self._by_name.get(name)
                if global_id is None:
                    raise DistError(f"no contract {name!r} registered")
                per_shard[self._catalog[global_id].shard].append(record)

        async def one(shard: int):
            if not per_shard[shard]:
                return None
            return await self._call(shard, {
                "op": "ingest", "events": per_shard[shard],
            })

        responses = await asyncio.gather(
            *(one(s) for s in range(len(self.addresses)))
        )
        merged = {"events": 0, "deliveries": 0, "unknown_events": 0,
                  "alerts": []}
        for response in responses:
            if response is None:
                continue
            report = response["report"]
            merged["events"] += report["events"]
            merged["deliveries"] += report["deliveries"]
            merged["unknown_events"] += report["unknown_events"]
            merged["alerts"].extend(report["alerts"])
        self.metrics.inc("dist.ingest.events", merged["events"])
        return merged

    async def status(self) -> dict:
        """Per-shard status documents plus the coordinator's view."""
        async def one(shard: int):
            try:
                return await self._call(shard, {"op": "status"})
            except DistError as exc:
                return {"ok": False, "error": str(exc), "shard_id": shard}

        shards = await asyncio.gather(
            *(one(s) for s in range(len(self.addresses)))
        )
        return {
            "shards": list(shards),
            "contracts": len(self._catalog),
            "addresses": [list(a) for a in self.addresses],
        }

    async def save_all(self) -> list[dict]:
        """Snapshot + compact every shard that has a directory."""
        return list(await asyncio.gather(
            *(self._call(s, {"op": "save"})
              for s in range(len(self.addresses)))
        ))

    def __len__(self) -> int:
        return len(self._catalog)


class DistributedDatabase:
    """The synchronous, ``ContractDatabase``-shaped face of a cluster.

    Owns a background event loop; every method round-trips through the
    :class:`Coordinator` on it.  Use as a context manager (or call
    :meth:`close`)."""

    def __init__(self, addresses: list[tuple[str, int]], *,
                 metrics: MetricsRegistry | None = None,
                 rpc_timeout: float = DEFAULT_RPC_TIMEOUT,
                 retry: BackoffPolicy | None = None,
                 breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 breaker_reset_seconds: float = DEFAULT_BREAKER_RESET_SECONDS):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="dist-coordinator",
            daemon=True,
        )
        self._thread.start()
        self.coordinator = Coordinator(
            addresses, metrics=metrics, rpc_timeout=rpc_timeout,
            retry=retry, breaker_threshold=breaker_threshold,
            breaker_reset_seconds=breaker_reset_seconds,
        )

    def _run(self, coro):
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result()

    def _call_on_loop(self, fn, *args):
        """Run a plain callable on the coordinator's loop thread (the
        coordinator's topology state is only touched from its loop)."""
        async def shim():
            return fn(*args)

        return self._run(shim())

    @property
    def metrics(self) -> MetricsRegistry:
        return self.coordinator.metrics

    def register(self, name, clauses=None, attributes=None) -> RoutedContract:
        # accept a ContractSpec-like first argument, matching the
        # single-node register() convenience
        if clauses is None and hasattr(name, "clauses"):
            spec = name
            return self._run(self.coordinator.register(
                spec.name, [str(c) for c in spec.clauses],
                dict(spec.attributes),
            ))
        return self._run(self.coordinator.register(name, clauses, attributes))

    def deregister(self, contract_id: int) -> None:
        self._run(self.coordinator.deregister(contract_id))

    def query(self, query, options=None) -> QueryOutcome:
        if isinstance(query, QuerySpec):
            if options is not None:
                raise DistError(
                    "pass either a QuerySpec or explicit options, not both"
                )
            options = query.to_options()
            query = query.query
        return self._run(self.coordinator.query(str(query), options))

    def query_many(self, queries, options=None) -> list[QueryOutcome]:
        if isinstance(queries, (str, Formula, QuerySpec)):
            # guard before [str(q) for q in ...] would shred a bare
            # string into one query per character
            raise DistError(
                "query_many takes a sequence of queries; use query() for one"
            )
        return self._run(self.coordinator.query_many(
            [str(q) for q in queries], options
        ))

    def ingest(self, events) -> dict:
        return self._run(self.coordinator.ingest(list(events)))

    def status(self) -> dict:
        return self._run(self.coordinator.status())

    def check_health(self, *, timeout: float = 5.0) -> list[dict]:
        return self._run(self.coordinator.check_health(timeout=timeout))

    def attach_replica(self, shard: int, replica: Replica,
                       preference: ReadPreference | None = None) -> None:
        self._call_on_loop(
            self.coordinator.attach_replica, shard, replica, preference
        )

    def detach_replica(self, shard: int) -> None:
        self._call_on_loop(self.coordinator.detach_replica, shard)

    def fail_over(self, shard: int, address: tuple[str, int]) -> None:
        self._call_on_loop(self.coordinator.fail_over, shard, address)

    def reset_breakers(self) -> None:
        self._call_on_loop(self.coordinator.reset_breakers)

    def save_all(self) -> list[dict]:
        return self._run(self.coordinator.save_all())

    def __len__(self) -> int:
        return len(self.coordinator)

    def close(self) -> None:
        if self._loop.is_closed():
            return
        self._run(self.coordinator.aclose())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop.close()

    def __enter__(self) -> "DistributedDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
