"""Ultimately-periodic runs: the finite representation of temporal sequences.

The paper's formal model (§6.1) is the *run*: an infinite sequence of
snapshots, each snapshot a truth assignment over the event vocabulary.
Every satisfiable LTL formula has an ultimately-periodic model — a run of
the shape ``prefix · loop^ω`` — and every lasso path of a Büchi automaton
denotes such runs, so this finite representation is lossless for all the
reasoning the library performs.

A snapshot is represented as a ``frozenset`` of the event names true at
that instant; every event not in the set is false.  This matches the
paper's remark that finite sequences are encoded by appending dummy
(empty) snapshots forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

Snapshot = frozenset


def snapshot(*events: str) -> Snapshot:
    """Build a snapshot in which exactly ``events`` are true."""
    return frozenset(events)


#: The empty snapshot (no event happens) used to pad finite sequences.
EMPTY_SNAPSHOT: Snapshot = frozenset()


@dataclass(frozen=True)
class Run:
    """An ultimately-periodic run ``prefix · loop^ω``.

    Attributes:
        prefix: finite, possibly empty sequence of snapshots.
        loop: finite, non-empty sequence of snapshots repeated forever.
    """

    prefix: tuple[Snapshot, ...]
    loop: tuple[Snapshot, ...]

    def __post_init__(self) -> None:
        if not self.loop:
            raise ValueError("the loop of an ultimately-periodic run is non-empty")

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_events(
        cls,
        prefix: Iterable[Iterable[str]],
        loop: Iterable[Iterable[str]] = ((),),
    ) -> "Run":
        """Build a run from per-instant iterables of true event names.

        >>> Run.from_events([["purchase"], ["use"]])   # then nothing forever
        """
        return cls(
            tuple(frozenset(s) for s in prefix),
            tuple(frozenset(s) for s in loop),
        )

    @classmethod
    def finite(cls, snapshots: Iterable[Iterable[str]]) -> "Run":
        """Encode a finite sequence by appending empty snapshots forever,
        exactly as the paper suggests (§2.3)."""
        return cls.from_events(snapshots, [()])

    # -- positional structure ---------------------------------------------------

    @property
    def period_start(self) -> int:
        """Index of the first position inside the loop."""
        return len(self.prefix)

    @property
    def num_positions(self) -> int:
        """Number of distinct positions (prefix plus one loop unrolling)."""
        return len(self.prefix) + len(self.loop)

    def successor(self, position: int) -> int:
        """The position reached one instant after ``position``."""
        if position < 0 or position >= self.num_positions:
            raise IndexError(f"position {position} out of range")
        if position == self.num_positions - 1:
            return self.period_start
        return position + 1

    def at(self, position: int) -> Snapshot:
        """Snapshot at a distinct position (``0 <= position < num_positions``)."""
        if position < len(self.prefix):
            return self.prefix[position]
        return self.loop[position - len(self.prefix)]

    def instant(self, time: int) -> Snapshot:
        """Snapshot at an arbitrary time point ``t >= 0`` of the infinite run."""
        if time < 0:
            raise IndexError("time must be non-negative")
        if time < len(self.prefix):
            return self.prefix[time]
        return self.loop[(time - len(self.prefix)) % len(self.loop)]

    def positions(self) -> Iterator[int]:
        """Iterate over the distinct positions in order."""
        return iter(range(self.num_positions))

    # -- transformations ----------------------------------------------------------

    def project(self, events: Iterable[str]) -> "Run":
        """The V-projection of the run onto a set of events (Definition 3):
        every snapshot is restricted to the given events."""
        keep = frozenset(events)
        return Run(
            tuple(s & keep for s in self.prefix),
            tuple(s & keep for s in self.loop),
        )

    def variables(self) -> frozenset[str]:
        """All events that occur in at least one snapshot."""
        out: set[str] = set()
        for snap in self.prefix + self.loop:
            out |= snap
        return frozenset(out)

    def unroll(self, length: int) -> list[Snapshot]:
        """The first ``length`` snapshots of the infinite run (for display
        and debugging)."""
        return [self.instant(t) for t in range(length)]

    def __str__(self) -> str:
        def fmt(snaps: Sequence[Snapshot]) -> str:
            return " ".join("{" + ",".join(sorted(s)) + "}" for s in snaps)

        return f"{fmt(self.prefix)} ({fmt(self.loop)})^w".strip()
