"""Pretty-printing of LTL formulas.

Produces the concrete syntax accepted back by :mod:`repro.ltl.parser`, so
``parse(format_formula(f)) == f`` holds structurally (a property exercised
by the round-trip tests).

Operator precedence, loosest to tightest::

    <->   ->   ||   &&   U/W/B/R   (unary: ! X F G)   atoms
"""

from __future__ import annotations

from . import ast as A

# Precedence levels; higher binds tighter.
_PREC_IFF = 1
_PREC_IMPLIES = 2
_PREC_OR = 3
_PREC_AND = 4
_PREC_TEMPORAL_BIN = 5
_PREC_UNARY = 6
_PREC_ATOM = 7

_BINARY_SYMBOLS: dict[type, tuple[str, int]] = {
    A.Iff: ("<->", _PREC_IFF),
    A.Implies: ("->", _PREC_IMPLIES),
    A.Or: ("||", _PREC_OR),
    A.And: ("&&", _PREC_AND),
    A.Until: ("U", _PREC_TEMPORAL_BIN),
    A.WeakUntil: ("W", _PREC_TEMPORAL_BIN),
    A.Before: ("B", _PREC_TEMPORAL_BIN),
    A.Release: ("R", _PREC_TEMPORAL_BIN),
}

_UNARY_SYMBOLS: dict[type, str] = {
    A.Not: "!",
    A.Next: "X",
    A.Finally: "F",
    A.Globally: "G",
}


def format_formula(formula: A.Formula) -> str:
    """Render ``formula`` as a parseable string."""
    return _format(formula, 0)


def _format(formula: A.Formula, parent_prec: int) -> str:
    if isinstance(formula, A.TrueConst):
        return "true"
    if isinstance(formula, A.FalseConst):
        return "false"
    if isinstance(formula, A.Prop):
        return formula.name

    cls = type(formula)
    if cls in _UNARY_SYMBOLS:
        symbol = _UNARY_SYMBOLS[cls]
        inner = _format(formula.operand, _PREC_UNARY)  # type: ignore[attr-defined]
        # Alphabetic unary operators need a space before an alphanumeric
        # operand ("X p"); "!" reads fine without one.
        sep = "" if symbol == "!" else " "
        text = f"{symbol}{sep}{inner}"
        return _parenthesize(text, _PREC_UNARY, parent_prec)

    if cls in _BINARY_SYMBOLS:
        symbol, prec = _BINARY_SYMBOLS[cls]
        # All binary operators are rendered non-associatively: children at
        # the same level get parentheses, which keeps the output unambiguous
        # regardless of the parser's associativity choices.
        left = _format(formula.left, prec + 1)  # type: ignore[attr-defined]
        right = _format(formula.right, prec + 1)  # type: ignore[attr-defined]
        text = f"{left} {symbol} {right}"
        return _parenthesize(text, prec, parent_prec)

    raise TypeError(f"unknown formula node: {cls.__name__}")


def _parenthesize(text: str, prec: int, parent_prec: int) -> str:
    if prec < parent_prec:
        return f"({text})"
    return text
