"""Decision procedures on LTL formulas via the automata pipeline.

Theorem 6 of the paper leans on the classical facts that LTL
satisfiability is PSPACE-complete and reduces to Büchi-automaton
emptiness; this module packages those reductions as a user-facing
toolbox:

* :func:`is_satisfiable` — ``BA(φ)`` non-empty;
* :func:`is_valid` — ``¬φ`` unsatisfiable;
* :func:`implies` — ``φ ∧ ¬ψ`` unsatisfiable;
* :func:`equivalent` — implication both ways;
* :func:`counterexample` — an ultimately-periodic run witnessing
  non-implication, for debugging contract clauses.

Contract authors use these to sanity-check specifications before
publishing (an unsatisfiable contract permits no query at all, §3.1),
and the test suite uses them to verify the textbook operator identities
(``p W q ≡ G p || (p U q)`` etc.) end to end.
"""

from __future__ import annotations

from .ast import And, Formula, Not
from .runs import Run

#: Mirrors :data:`repro.automata.ltl2ba.DEFAULT_STATE_BUDGET`; duplicated
#: here (and asserted equal in the tests) because importing the automata
#: package at module load time would be circular — the automata layer is
#: built on top of :mod:`repro.ltl`.
DEFAULT_STATE_BUDGET = 60_000


def _translate(formula: Formula, state_budget: int):
    from ..automata.ltl2ba import translate

    return translate(formula, state_budget=state_budget)


def is_satisfiable(formula: Formula,
                   state_budget: int = DEFAULT_STATE_BUDGET) -> bool:
    """True iff some run satisfies ``formula``."""
    return not _translate(formula, state_budget).is_empty()


def is_valid(formula: Formula,
             state_budget: int = DEFAULT_STATE_BUDGET) -> bool:
    """True iff every run satisfies ``formula``."""
    return not is_satisfiable(Not(formula), state_budget=state_budget)


def implies(antecedent: Formula, consequent: Formula,
            state_budget: int = DEFAULT_STATE_BUDGET) -> bool:
    """True iff every run satisfying ``antecedent`` satisfies
    ``consequent``."""
    return not is_satisfiable(
        And(antecedent, Not(consequent)), state_budget=state_budget
    )


def equivalent(left: Formula, right: Formula,
               state_budget: int = DEFAULT_STATE_BUDGET) -> bool:
    """True iff the two formulas have the same models."""
    return implies(left, right, state_budget) and implies(
        right, left, state_budget
    )


def counterexample(antecedent: Formula, consequent: Formula,
                   state_budget: int = DEFAULT_STATE_BUDGET) -> Run | None:
    """A run satisfying ``antecedent`` but not ``consequent``, or ``None``
    when the implication holds."""
    gap = _translate(And(antecedent, Not(consequent)), state_budget)
    return gap.find_accepted_run()
