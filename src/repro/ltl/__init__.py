"""Linear Temporal Logic: AST, parser, printer, rewriting, semantics,
and the Dwyer property-specification pattern library.

Quick tour::

    from repro.ltl import parse, satisfies, Run

    ticket_a = parse("G(dateChange -> !F refund)")
    run = Run.from_events([["purchase"], ["dateChange"], ["use"]])
    assert satisfies(run, ticket_a)
"""

from .ast import (
    FALSE,
    TRUE,
    And,
    Before,
    FalseConst,
    Finally,
    Formula,
    Globally,
    Iff,
    Implies,
    Next,
    Not,
    Or,
    Prop,
    Release,
    TrueConst,
    Until,
    WeakUntil,
    conj,
    disj,
    is_literal,
    is_temporal,
)
from .equivalence import (
    counterexample,
    equivalent,
    implies,
    is_satisfiable,
    is_valid,
)
from .parser import parse, parse_clauses
from .printer import format_formula
from .rewrite import is_nnf_core, nnf, simplify
from .runs import EMPTY_SNAPSHOT, Run, Snapshot, snapshot
from .semantics import evaluate_positions, satisfies

__all__ = [
    "FALSE",
    "TRUE",
    "And",
    "Before",
    "FalseConst",
    "Finally",
    "Formula",
    "Globally",
    "Iff",
    "Implies",
    "Next",
    "Not",
    "Or",
    "Prop",
    "Release",
    "TrueConst",
    "Until",
    "WeakUntil",
    "conj",
    "disj",
    "is_literal",
    "is_temporal",
    "counterexample",
    "equivalent",
    "implies",
    "is_satisfiable",
    "is_valid",
    "parse",
    "parse_clauses",
    "format_formula",
    "is_nnf_core",
    "nnf",
    "simplify",
    "EMPTY_SNAPSHOT",
    "Run",
    "Snapshot",
    "snapshot",
    "evaluate_positions",
    "satisfies",
]
