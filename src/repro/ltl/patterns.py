"""The Dwyer–Avrunin–Corbett property-specification patterns.

The paper's workload generator (§7.2) draws contract and query clauses
from the pattern system of [8] (Dwyer, Avrunin, Corbett, *Property
specification patterns for finite-state verification*, FMSP 1998): five
behaviors (absence, existence, universality, precedence, response), each
in four scopes (global, before ``r``, after ``q``, between ``q`` and
``r``).  The paper reproduces the LTL mappings in its Table 3 (and the
precedence row in Table 1); together these patterns cover over 92% of the
500+ real-life specifications surveyed in [8].

This module implements all twenty behavior×scope templates as formula
builders, together with the occurrence frequencies used to sample them.

Notes on fidelity:

* The LTL for ``universality / after`` as printed in the paper's Table 3
  repeats the *between* formula (an evident typesetting slip — it
  references the unbound event ``r``); we use the canonical form from [8],
  ``G(q -> G p)``.
* The frequencies in [8] are reported per pattern occurrence over 555
  surveyed specifications (response 245, universality 119, absence 85,
  existence 27, precedence 26 among the five behaviors used here) and the
  scope distribution is strongly dominated by *global* (~80%).  The exact
  per-cell table is not reprinted in the paper, so we encode the published
  marginals and sample behavior and scope independently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Mapping

from .ast import (
    And,
    Finally,
    Formula,
    Globally,
    Implies,
    Not,
    Or,
    Prop,
    Until,
    WeakUntil,
)


class Behavior(enum.Enum):
    """The five pattern behaviors of [8] used by the paper (§7.2)."""

    ABSENCE = "absence"
    EXISTENCE = "existence"
    UNIVERSALITY = "universality"
    PRECEDENCE = "precedence"
    RESPONSE = "response"


class Scope(enum.Enum):
    """The four pattern scopes of [8] used by the paper (§7.2)."""

    GLOBAL = "global"
    BEFORE = "before"
    AFTER = "after"
    BETWEEN = "between"


#: Occurrence counts of the five behaviors in the 555-specification survey
#: of [8]; used as sampling weights by the workload generator.
BEHAVIOR_WEIGHTS: dict[Behavior, int] = {
    Behavior.RESPONSE: 245,
    Behavior.UNIVERSALITY: 119,
    Behavior.ABSENCE: 85,
    Behavior.EXISTENCE: 27,
    Behavior.PRECEDENCE: 26,
}

#: Scope distribution of [8] (global dominates at roughly 80%); the exact
#: cross-table is not reprinted in the paper, so behavior and scope are
#: sampled independently from these marginals.
SCOPE_WEIGHTS: dict[Scope, int] = {
    Scope.GLOBAL: 447,
    Scope.BEFORE: 25,
    Scope.AFTER: 55,
    Scope.BETWEEN: 28,
}


@dataclass(frozen=True)
class PatternTemplate:
    """One behavior×scope cell of the pattern system.

    Attributes:
        behavior: the required behavior.
        scope: the temporal interval in which it must hold.
        placeholders: ordered placeholder names, e.g. ``("p", "s", "q", "r")``;
            the workload generator substitutes vocabulary events for these.
        description: the informal reading from the paper's Table 3.
        build: callable mapping placeholder->event-name to a Formula.
    """

    behavior: Behavior
    scope: Scope
    placeholders: tuple[str, ...]
    description: str
    build: Callable[[Mapping[str, str]], Formula]

    def instantiate(self, **events: str) -> Formula:
        """Instantiate the template, e.g.
        ``template.instantiate(p="refund", q="missedFlight")``."""
        missing = set(self.placeholders) - set(events)
        if missing:
            raise KeyError(f"missing placeholder(s): {sorted(missing)}")
        return self.build(events)


def _p(events: Mapping[str, str], name: str) -> Prop:
    return Prop(events[name])


# -- behavior bodies ---------------------------------------------------------
# Formulas transcribed from Table 3 of the paper (Table 1 for precedence),
# with the 'universality / after' fix described in the module docstring.


def _absence_global(e: Mapping[str, str]) -> Formula:
    return Globally(Not(_p(e, "p")))


def _absence_before(e: Mapping[str, str]) -> Formula:
    p, r = _p(e, "p"), _p(e, "r")
    return Implies(Finally(r), Until(Not(p), r))


def _absence_after(e: Mapping[str, str]) -> Formula:
    p, q = _p(e, "p"), _p(e, "q")
    return Globally(Implies(q, Globally(Not(p))))


def _absence_between(e: Mapping[str, str]) -> Formula:
    p, q, r = _p(e, "p"), _p(e, "q"), _p(e, "r")
    return Globally(Implies(And(q, And(Not(r), Finally(r))), Until(Not(p), r)))


def _existence_global(e: Mapping[str, str]) -> Formula:
    return Finally(_p(e, "p"))


def _existence_before(e: Mapping[str, str]) -> Formula:
    p, r = _p(e, "p"), _p(e, "r")
    return WeakUntil(Not(r), And(p, Not(r)))


def _existence_after(e: Mapping[str, str]) -> Formula:
    p, q = _p(e, "p"), _p(e, "q")
    return Or(Globally(Not(q)), Finally(And(q, Finally(p))))


def _existence_between(e: Mapping[str, str]) -> Formula:
    p, q, r = _p(e, "p"), _p(e, "q"), _p(e, "r")
    return Globally(
        Implies(And(q, Not(r)), WeakUntil(Not(r), And(p, Not(r))))
    )


def _universality_global(e: Mapping[str, str]) -> Formula:
    return Globally(_p(e, "p"))


def _universality_before(e: Mapping[str, str]) -> Formula:
    p, r = _p(e, "p"), _p(e, "r")
    return Implies(Finally(r), Until(p, r))


def _universality_after(e: Mapping[str, str]) -> Formula:
    p, q = _p(e, "p"), _p(e, "q")
    return Globally(Implies(q, Globally(p)))


def _universality_between(e: Mapping[str, str]) -> Formula:
    p, q, r = _p(e, "p"), _p(e, "q"), _p(e, "r")
    return Globally(Implies(And(q, And(Not(r), Finally(r))), Until(p, r)))


def _precedence_global(e: Mapping[str, str]) -> Formula:
    p, s = _p(e, "p"), _p(e, "s")
    return Implies(Finally(p), Until(Not(p), Or(s, Globally(Not(p)))))


def _precedence_before(e: Mapping[str, str]) -> Formula:
    p, s, r = _p(e, "p"), _p(e, "s"), _p(e, "r")
    return Implies(Finally(r), Until(Not(p), Or(s, r)))


def _precedence_after(e: Mapping[str, str]) -> Formula:
    p, s, q = _p(e, "p"), _p(e, "s"), _p(e, "q")
    return Or(
        Globally(Not(q)),
        Finally(And(q, Until(Not(p), Or(s, Globally(Not(p)))))),
    )


def _precedence_between(e: Mapping[str, str]) -> Formula:
    p, s, q, r = _p(e, "p"), _p(e, "s"), _p(e, "q"), _p(e, "r")
    return Globally(
        Implies(And(q, And(Not(r), Finally(r))), Until(Not(p), Or(s, r)))
    )


def _response_global(e: Mapping[str, str]) -> Formula:
    p, s = _p(e, "p"), _p(e, "s")
    return Globally(Implies(p, Finally(s)))


def _response_before(e: Mapping[str, str]) -> Formula:
    p, s, r = _p(e, "p"), _p(e, "s"), _p(e, "r")
    return Implies(
        Finally(r), Until(Implies(p, Until(Not(r), And(s, Not(r)))), r)
    )


def _response_after(e: Mapping[str, str]) -> Formula:
    p, s, q = _p(e, "p"), _p(e, "s"), _p(e, "q")
    return Globally(Implies(q, Globally(Implies(p, Finally(s)))))


def _response_between(e: Mapping[str, str]) -> Formula:
    p, s, q, r = _p(e, "p"), _p(e, "s"), _p(e, "q"), _p(e, "r")
    return Globally(
        Implies(
            And(q, And(Not(r), Finally(r))),
            Until(Implies(p, Until(Not(r), And(s, Not(r)))), r),
        )
    )


def _make_templates() -> dict[tuple[Behavior, Scope], PatternTemplate]:
    scope_params = {
        Scope.GLOBAL: (),
        Scope.BEFORE: ("r",),
        Scope.AFTER: ("q",),
        Scope.BETWEEN: ("q", "r"),
    }
    behavior_params = {
        Behavior.ABSENCE: ("p",),
        Behavior.EXISTENCE: ("p",),
        Behavior.UNIVERSALITY: ("p",),
        Behavior.PRECEDENCE: ("p", "s"),
        Behavior.RESPONSE: ("p", "s"),
    }
    builders: dict[tuple[Behavior, Scope], Callable] = {
        (Behavior.ABSENCE, Scope.GLOBAL): _absence_global,
        (Behavior.ABSENCE, Scope.BEFORE): _absence_before,
        (Behavior.ABSENCE, Scope.AFTER): _absence_after,
        (Behavior.ABSENCE, Scope.BETWEEN): _absence_between,
        (Behavior.EXISTENCE, Scope.GLOBAL): _existence_global,
        (Behavior.EXISTENCE, Scope.BEFORE): _existence_before,
        (Behavior.EXISTENCE, Scope.AFTER): _existence_after,
        (Behavior.EXISTENCE, Scope.BETWEEN): _existence_between,
        (Behavior.UNIVERSALITY, Scope.GLOBAL): _universality_global,
        (Behavior.UNIVERSALITY, Scope.BEFORE): _universality_before,
        (Behavior.UNIVERSALITY, Scope.AFTER): _universality_after,
        (Behavior.UNIVERSALITY, Scope.BETWEEN): _universality_between,
        (Behavior.PRECEDENCE, Scope.GLOBAL): _precedence_global,
        (Behavior.PRECEDENCE, Scope.BEFORE): _precedence_before,
        (Behavior.PRECEDENCE, Scope.AFTER): _precedence_after,
        (Behavior.PRECEDENCE, Scope.BETWEEN): _precedence_between,
        (Behavior.RESPONSE, Scope.GLOBAL): _response_global,
        (Behavior.RESPONSE, Scope.BEFORE): _response_before,
        (Behavior.RESPONSE, Scope.AFTER): _response_after,
        (Behavior.RESPONSE, Scope.BETWEEN): _response_between,
    }
    descriptions: dict[tuple[Behavior, Scope], str] = {
        (Behavior.ABSENCE, Scope.GLOBAL): "p is never true",
        (Behavior.ABSENCE, Scope.BEFORE): "p is never true before r",
        (Behavior.ABSENCE, Scope.AFTER): "p is never true after q",
        (Behavior.ABSENCE, Scope.BETWEEN): "p is never true between q and r",
        (Behavior.EXISTENCE, Scope.GLOBAL): "p is eventually true",
        (Behavior.EXISTENCE, Scope.BEFORE): "p is true some time before r",
        (Behavior.EXISTENCE, Scope.AFTER): "p is true some time after q",
        (Behavior.EXISTENCE, Scope.BETWEEN): "p is true some time between q and r",
        (Behavior.UNIVERSALITY, Scope.GLOBAL): "p is always true",
        (Behavior.UNIVERSALITY, Scope.BEFORE): "p is true in every instant before r",
        (Behavior.UNIVERSALITY, Scope.AFTER): "p is true in every instant after q",
        (Behavior.UNIVERSALITY, Scope.BETWEEN): "p is true in any instant between q and r",
        (Behavior.PRECEDENCE, Scope.GLOBAL): "s precedes p at any time",
        (Behavior.PRECEDENCE, Scope.BEFORE): "if p happens before r, s precedes p",
        (Behavior.PRECEDENCE, Scope.AFTER): "if p happens after q, s precedes p and follows q",
        (Behavior.PRECEDENCE, Scope.BETWEEN): "s precedes p, both events between q and r",
        (Behavior.RESPONSE, Scope.GLOBAL): "if p is true, s will follow",
        (Behavior.RESPONSE, Scope.BEFORE): "if p is true before r, s will follow p and precede r",
        (Behavior.RESPONSE, Scope.AFTER): "if p is true after q, s will follow p",
        (Behavior.RESPONSE, Scope.BETWEEN): "s follows p, between q and r",
    }
    out: dict[tuple[Behavior, Scope], PatternTemplate] = {}
    for key, builder in builders.items():
        behavior, scope = key
        out[key] = PatternTemplate(
            behavior=behavior,
            scope=scope,
            placeholders=behavior_params[behavior] + scope_params[scope],
            description=descriptions[key],
            build=builder,
        )
    return out


#: All twenty behavior×scope templates, keyed by ``(Behavior, Scope)``.
TEMPLATES: dict[tuple[Behavior, Scope], PatternTemplate] = _make_templates()


def template(behavior: Behavior, scope: Scope) -> PatternTemplate:
    """Look up one behavior×scope template."""
    return TEMPLATES[(behavior, scope)]


def instantiate(behavior: Behavior, scope: Scope, **events: str) -> Formula:
    """Instantiate a pattern directly, e.g.::

        instantiate(Behavior.ABSENCE, Scope.AFTER, p="dateChange",
                    q="missedFlight")
        # == G(missedFlight -> G !dateChange)
    """
    return template(behavior, scope).instantiate(**events)
