"""Normalization and simplification of LTL formulas.

The tableau translation (:mod:`repro.automata.ltl2ba`) operates on the
*core* fragment in negation normal form (NNF):

* atoms: ``true``, ``false``, literals (``p`` / ``!p``);
* connectives: ``&&``, ``||``;
* temporal: ``X``, ``U``, ``R``.

:func:`nnf` eliminates the derived operators with the standard identities
(which the paper lists in §6.1)::

    F p      ==  true U p
    G p      ==  false R p          (== !F !p)
    p W q    ==  q R (q || p)       (== G p || (p U q))
    p B q    ==  !(!p U q)
    p -> q   ==  !p || q
    p <-> q  ==  (p && q) || (!p && !q)

and pushes negations down to the atoms using the usual dualities
(``!(p U q) == !p R !q`` etc.).

All constructors here are *smart*: they constant-fold and apply cheap,
sound local simplifications so that the generated automata stay small.
Every rewrite preserves LTL equivalence; the property-based tests check
this against the ground-truth evaluator on random ultimately-periodic
runs.
"""

from __future__ import annotations

from . import ast as A
from .ast import (
    FALSE,
    TRUE,
    And,
    Before,
    FalseConst,
    Finally,
    Formula,
    Globally,
    Iff,
    Implies,
    Next,
    Not,
    Or,
    Prop,
    Release,
    TrueConst,
    Until,
    WeakUntil,
)

# ---------------------------------------------------------------------------
# smart constructors (operate on NNF-core operands)
# ---------------------------------------------------------------------------


def negate_literal(formula: Formula) -> Formula:
    """Negate an atom (constant or literal); error on anything else."""
    if isinstance(formula, TrueConst):
        return FALSE
    if isinstance(formula, FalseConst):
        return TRUE
    if isinstance(formula, Prop):
        return Not(formula)
    if isinstance(formula, Not) and isinstance(formula.operand, Prop):
        return formula.operand
    raise ValueError(f"not an atom: {formula}")


def _flatten(formula: Formula, cls: type) -> list[Formula]:
    """Collect the operands of a nested binary connective of type ``cls``."""
    out: list[Formula] = []
    stack = [formula]
    while stack:
        node = stack.pop()
        if isinstance(node, cls):
            stack.append(node.right)  # type: ignore[attr-defined]
            stack.append(node.left)  # type: ignore[attr-defined]
        else:
            out.append(node)
    return out


def _complementary(items: list[Formula]) -> bool:
    """True if the list contains both ``l`` and ``!l`` for some literal."""
    positive: set[str] = set()
    negative: set[str] = set()
    for item in items:
        if isinstance(item, Prop):
            positive.add(item.name)
        elif isinstance(item, Not) and isinstance(item.operand, Prop):
            negative.add(item.operand.name)
    return bool(positive & negative)


def mk_and(left: Formula, right: Formula) -> Formula:
    """Conjunction with flattening, deduplication and contradiction
    detection."""
    items: list[Formula] = []
    seen: set[Formula] = set()
    for operand in _flatten(left, And) + _flatten(right, And):
        if isinstance(operand, FalseConst):
            return FALSE
        if isinstance(operand, TrueConst) or operand in seen:
            continue
        seen.add(operand)
        items.append(operand)
    if _complementary(items):
        return FALSE
    return A.conj(items)


def mk_or(left: Formula, right: Formula) -> Formula:
    """Disjunction with flattening, deduplication and tautology detection."""
    items: list[Formula] = []
    seen: set[Formula] = set()
    for operand in _flatten(left, Or) + _flatten(right, Or):
        if isinstance(operand, TrueConst):
            return TRUE
        if isinstance(operand, FalseConst) or operand in seen:
            continue
        seen.add(operand)
        items.append(operand)
    if _complementary(items):
        return TRUE
    return A.disj(items)


def mk_next(operand: Formula) -> Formula:
    """``X`` with constant folding (runs are infinite, so ``X true == true``)."""
    if isinstance(operand, (TrueConst, FalseConst)):
        return operand
    return Next(operand)


def mk_until(left: Formula, right: Formula) -> Formula:
    """``U`` with the standard local simplifications."""
    if isinstance(right, (TrueConst, FalseConst)):
        return right
    if isinstance(left, FalseConst):
        return right
    if left == right:
        return right
    # p U (p U q)  ==  p U q
    if isinstance(right, Until) and right.left == left:
        return right
    return Until(left, right)


def mk_release(left: Formula, right: Formula) -> Formula:
    """``R`` with the dual simplifications of :func:`mk_until`."""
    if isinstance(right, (TrueConst, FalseConst)):
        return right
    if isinstance(left, TrueConst):
        return right
    if left == right:
        return right
    # p R (p R q)  ==  p R q
    if isinstance(right, Release) and right.left == left:
        return right
    return Release(left, right)


# ---------------------------------------------------------------------------
# negation normal form
# ---------------------------------------------------------------------------


def nnf(formula: Formula, negated: bool = False) -> Formula:
    """Rewrite ``formula`` into the simplified NNF core fragment.

    ``negated`` tracks the parity of enclosing negations while the
    recursion walks the tree, so the whole transformation is one pass.
    """
    if isinstance(formula, TrueConst):
        return FALSE if negated else TRUE
    if isinstance(formula, FalseConst):
        return TRUE if negated else FALSE
    if isinstance(formula, Prop):
        return Not(formula) if negated else formula
    if isinstance(formula, Not):
        return nnf(formula.operand, not negated)
    if isinstance(formula, And):
        left = nnf(formula.left, negated)
        right = nnf(formula.right, negated)
        return mk_or(left, right) if negated else mk_and(left, right)
    if isinstance(formula, Or):
        left = nnf(formula.left, negated)
        right = nnf(formula.right, negated)
        return mk_and(left, right) if negated else mk_or(left, right)
    if isinstance(formula, Implies):
        # p -> q == !p || q
        return nnf(Or(Not(formula.left), formula.right), negated)
    if isinstance(formula, Iff):
        # p <-> q == (p && q) || (!p && !q)
        expanded = Or(
            And(formula.left, formula.right),
            And(Not(formula.left), Not(formula.right)),
        )
        return nnf(expanded, negated)
    if isinstance(formula, Next):
        return mk_next(nnf(formula.operand, negated))
    if isinstance(formula, Finally):
        # F p == true U p ; !F p == false R !p
        if negated:
            return mk_release(FALSE, nnf(formula.operand, True))
        return mk_until(TRUE, nnf(formula.operand, False))
    if isinstance(formula, Globally):
        # G p == false R p ; !G p == true U !p
        if negated:
            return mk_until(TRUE, nnf(formula.operand, True))
        return mk_release(FALSE, nnf(formula.operand, False))
    if isinstance(formula, Until):
        left = nnf(formula.left, negated)
        right = nnf(formula.right, negated)
        if negated:
            return mk_release(left, right)
        return mk_until(left, right)
    if isinstance(formula, Release):
        left = nnf(formula.left, negated)
        right = nnf(formula.right, negated)
        if negated:
            return mk_until(left, right)
        return mk_release(left, right)
    if isinstance(formula, WeakUntil):
        # p W q == q R (q || p)
        return nnf(Release(formula.right, Or(formula.right, formula.left)), negated)
    if isinstance(formula, Before):
        # p B q == !(!p U q)
        return nnf(Until(Not(formula.left), formula.right), not negated)
    raise TypeError(f"unknown formula node: {type(formula).__name__}")


def simplify(formula: Formula) -> Formula:
    """Public entry point: the simplified NNF of ``formula``."""
    return nnf(formula)


def is_nnf_core(formula: Formula) -> bool:
    """True iff ``formula`` is already in the NNF core fragment."""
    for node in formula.walk():
        if isinstance(node, (Implies, Iff, Finally, Globally, WeakUntil, Before)):
            return False
        if isinstance(node, Not) and not isinstance(node.operand, Prop):
            return False
    return True
