"""Abstract syntax trees for Linear Temporal Logic (LTL) formulas.

The paper (§2.2, §6.1) uses LTL as the declarative clause language for both
contract specifications and queries.  The operators supported here are the
ones the paper lists:

* boolean: ``true``, ``false``, ``!`` (not), ``&&`` (and), ``||`` (or),
  ``->`` (implies), ``<->`` (iff);
* temporal: ``X`` (next), ``F`` (eventually), ``G`` (globally),
  ``U`` (until), ``W`` (weak until), ``B`` (before), ``R`` (release).

``R`` (release) is not in the paper's surface syntax but is the dual of
``U`` and is required internally to put formulas in negation normal form
for the tableau translation; we expose it for completeness.

Formula objects are immutable, hashable and interned per constructor
arguments where cheap, so they can be used as dictionary keys by the
translator and the semantic evaluator.

Construction helpers (:func:`conj`, :func:`disj`, ...) perform the obvious
constant folding (``p && true == p``) so that generated workloads do not
carry dead weight into the translator.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Formula:
    """Base class of all LTL formula nodes.

    Subclasses are immutable; equality and hashing are structural.  The
    class also implements operator overloading so tests and examples can
    build formulas compactly::

        f = G(Prop("purchase").implies(~F(Prop("refund"))))
    """

    __slots__ = ("_hash",)

    # -- structural protocol -------------------------------------------------

    def children(self) -> tuple["Formula", ...]:
        """Return the direct subformulas (empty for atoms)."""
        raise NotImplementedError

    def with_children(self, children: tuple["Formula", ...]) -> "Formula":
        """Rebuild this node with replacement children (same arity)."""
        raise NotImplementedError

    # -- convenience constructors --------------------------------------------

    def __invert__(self) -> "Formula":
        return Not(self)

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def implies(self, other: "Formula") -> "Formula":
        return Implies(self, other)

    def iff(self, other: "Formula") -> "Formula":
        return Iff(self, other)

    def until(self, other: "Formula") -> "Formula":
        return Until(self, other)

    def weak_until(self, other: "Formula") -> "Formula":
        return WeakUntil(self, other)

    def before(self, other: "Formula") -> "Formula":
        return Before(self, other)

    def release(self, other: "Formula") -> "Formula":
        return Release(self, other)

    # -- queries --------------------------------------------------------------

    def variables(self) -> frozenset[str]:
        """The set of event-variable names mentioned anywhere in the formula.

        This is the contract's *vocabulary* when the formula is a contract
        specification (Definition 4 of the paper).
        """
        out: set[str] = set()
        for node in self.walk():
            if isinstance(node, Prop):
                out.add(node.name)
        return frozenset(out)

    def walk(self) -> Iterator["Formula"]:
        """Yield every node of the tree, root first (pre-order)."""
        stack: list[Formula] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def size(self) -> int:
        """Number of AST nodes; a crude complexity measure used in stats."""
        return sum(1 for _ in self.walk())

    def temporal_depth(self) -> int:
        """Maximum nesting depth of temporal operators."""
        bump = 1 if isinstance(self, (Next, Finally, Globally, Until,
                                      WeakUntil, Before, Release)) else 0
        kids = self.children()
        if not kids:
            return bump
        return bump + max(child.temporal_depth() for child in kids)

    # -- dunder plumbing -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(self) is not type(other):
            return False
        return self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        cached = getattr(self, "_hash", None)
        if cached is None:
            cached = hash((type(self).__name__, self._key()))
            object.__setattr__(self, "_hash", cached)
        return cached

    def _key(self) -> tuple:
        raise NotImplementedError

    def __str__(self) -> str:
        from .printer import format_formula

        return format_formula(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self)!r})"


class TrueConst(Formula):
    """The constant ``true``."""

    __slots__ = ()

    def children(self) -> tuple[Formula, ...]:
        return ()

    def with_children(self, children: tuple[Formula, ...]) -> Formula:
        return self

    def _key(self) -> tuple:
        return ()


class FalseConst(Formula):
    """The constant ``false``."""

    __slots__ = ()

    def children(self) -> tuple[Formula, ...]:
        return ()

    def with_children(self, children: tuple[Formula, ...]) -> Formula:
        return self

    def _key(self) -> tuple:
        return ()


#: Singleton instances; prefer these over constructing new ones.
TRUE = TrueConst()
FALSE = FalseConst()


class Prop(Formula):
    """A propositional event variable from the common vocabulary.

    The paper associates one variable per domain event (``purchase``,
    ``refund``, ``dateChange``, ...); a variable is true in a snapshot in
    which the event happens (§2.2).
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not name[0].isalpha() and name[0] != "_":
            raise ValueError(f"invalid proposition name: {name!r}")
        object.__setattr__(self, "name", name)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Formula objects are immutable")

    def children(self) -> tuple[Formula, ...]:
        return ()

    def with_children(self, children: tuple[Formula, ...]) -> Formula:
        return self

    def _key(self) -> tuple:
        return (self.name,)


class _Unary(Formula):
    __slots__ = ("operand",)

    def __init__(self, operand: Formula):
        if not isinstance(operand, Formula):
            raise TypeError(f"expected Formula, got {type(operand).__name__}")
        object.__setattr__(self, "operand", operand)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Formula objects are immutable")

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def with_children(self, children: tuple[Formula, ...]) -> Formula:
        (child,) = children
        return type(self)(child)

    def _key(self) -> tuple:
        return (self.operand,)


class _Binary(Formula):
    __slots__ = ("left", "right")

    def __init__(self, left: Formula, right: Formula):
        if not isinstance(left, Formula) or not isinstance(right, Formula):
            raise TypeError("expected Formula operands")
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Formula objects are immutable")

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Formula, ...]) -> Formula:
        left, right = children
        return type(self)(left, right)

    def _key(self) -> tuple:
        return (self.left, self.right)


class Not(_Unary):
    """Logical negation ``!p``."""

    __slots__ = ()


class And(_Binary):
    """Conjunction ``p && q``."""

    __slots__ = ()


class Or(_Binary):
    """Disjunction ``p || q``."""

    __slots__ = ()


class Implies(_Binary):
    """Implication ``p -> q`` (sugar for ``!p || q``)."""

    __slots__ = ()


class Iff(_Binary):
    """Biconditional ``p <-> q``."""

    __slots__ = ()


class Next(_Unary):
    """``X p``: ``p`` holds in the next instant."""

    __slots__ = ()


class Finally(_Unary):
    """``F p``: eventually ``p`` holds (``true U p``)."""

    __slots__ = ()


class Globally(_Unary):
    """``G p``: ``p`` holds in every instant (``!F !p``)."""

    __slots__ = ()


class Until(_Binary):
    """``p U q``: ``q`` eventually holds and ``p`` holds until then."""

    __slots__ = ()


class WeakUntil(_Binary):
    """``p W q``: ``G p || (p U q)`` — 'weak until' (§2.2)."""

    __slots__ = ()


class Before(_Binary):
    """``p B q``: ``p`` is true before ``q`` is, i.e. ``!(!p U q)`` (§6.1)."""

    __slots__ = ()


class Release(_Binary):
    """``p R q``: the dual of until, ``!(!p U !q)``.

    Needed internally for negation normal form; equivalently, ``q`` holds
    up to and including the first instant where ``p`` holds (or forever).
    """

    __slots__ = ()


# ---------------------------------------------------------------------------
# n-ary constant-folding helpers
# ---------------------------------------------------------------------------


def conj(formulas: Iterable[Formula]) -> Formula:
    """Right-associated conjunction of ``formulas`` with constant folding.

    An empty iterable yields ``TRUE``; any ``FALSE`` operand collapses the
    whole conjunction; duplicate adjacent operands are kept (full
    deduplication happens in :mod:`repro.ltl.rewrite`).
    """
    items = [f for f in formulas if not isinstance(f, TrueConst)]
    if any(isinstance(f, FalseConst) for f in items):
        return FALSE
    if not items:
        return TRUE
    result = items[-1]
    for f in reversed(items[:-1]):
        result = And(f, result)
    return result


def disj(formulas: Iterable[Formula]) -> Formula:
    """Right-associated disjunction with constant folding (dual of
    :func:`conj`)."""
    items = [f for f in formulas if not isinstance(f, FalseConst)]
    if any(isinstance(f, TrueConst) for f in items):
        return TRUE
    if not items:
        return FALSE
    result = items[-1]
    for f in reversed(items[:-1]):
        result = Or(f, result)
    return result


def is_literal(formula: Formula) -> bool:
    """True iff ``formula`` is a proposition or a negated proposition."""
    if isinstance(formula, Prop):
        return True
    return isinstance(formula, Not) and isinstance(formula.operand, Prop)


def is_temporal(formula: Formula) -> bool:
    """True iff the root operator is temporal."""
    return isinstance(
        formula, (Next, Finally, Globally, Until, WeakUntil, Before, Release)
    )
