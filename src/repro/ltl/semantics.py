"""Ground-truth LTL semantics over ultimately-periodic runs.

This module is the library's *oracle*: it evaluates any LTL formula
directly from the inductive satisfaction relation of §6.1, restricted to
ultimately-periodic runs (which is lossless, since LTL cannot distinguish
a run from any run with the same prefix/loop unrolling and every
satisfiable formula has an ultimately-periodic model).

The evaluator is deliberately simple — a per-position truth table per
subformula, with least/greatest fixpoint iteration for ``U``/``R`` — and
completely independent of the automata pipeline, so it can serve as the
reference implementation in differential tests of the LTL-to-Büchi
translation.
"""

from __future__ import annotations

from . import ast as A
from .ast import Formula
from .rewrite import nnf
from .runs import Run


def satisfies(run: Run, formula: Formula) -> bool:
    """Decide ``run |= formula`` (satisfaction at instant 0).

    >>> from repro.ltl.parser import parse
    >>> from repro.ltl.runs import Run
    >>> run = Run.from_events([["purchase"], ["use"]])
    >>> satisfies(run, parse("purchase && X use"))
    True
    """
    table = evaluate_positions(run, formula)
    return table[0]


def evaluate_positions(run: Run, formula: Formula) -> list[bool]:
    """Truth value of ``formula`` at every distinct position of ``run``.

    Index ``i`` of the result is the value of the formula on the suffix
    ``run|_i`` (the paper's tail notation).
    """
    core = nnf(formula)
    memo: dict[Formula, list[bool]] = {}
    return _table(core, run, memo)


def _table(formula: Formula, run: Run, memo: dict[Formula, list[bool]]) -> list[bool]:
    cached = memo.get(formula)
    if cached is not None:
        return cached

    n = run.num_positions
    if isinstance(formula, A.TrueConst):
        result = [True] * n
    elif isinstance(formula, A.FalseConst):
        result = [False] * n
    elif isinstance(formula, A.Prop):
        result = [formula.name in run.at(i) for i in range(n)]
    elif isinstance(formula, A.Not):
        # NNF guarantees the operand is a proposition.
        inner = _table(formula.operand, run, memo)
        result = [not v for v in inner]
    elif isinstance(formula, A.And):
        left = _table(formula.left, run, memo)
        right = _table(formula.right, run, memo)
        result = [a and b for a, b in zip(left, right)]
    elif isinstance(formula, A.Or):
        left = _table(formula.left, run, memo)
        right = _table(formula.right, run, memo)
        result = [a or b for a, b in zip(left, right)]
    elif isinstance(formula, A.Next):
        inner = _table(formula.operand, run, memo)
        result = [inner[run.successor(i)] for i in range(n)]
    elif isinstance(formula, A.Until):
        result = _until_table(formula, run, memo)
    elif isinstance(formula, A.Release):
        result = _release_table(formula, run, memo)
    else:  # pragma: no cover - nnf() eliminates every other operator
        raise TypeError(f"non-core formula after NNF: {type(formula).__name__}")

    memo[formula] = result
    return result


def _until_table(formula: A.Until, run: Run, memo: dict) -> list[bool]:
    """Least fixpoint of  val = q || (p && X val)  on the lasso graph.

    Starting from all-false and iterating to stability yields the least
    fixpoint, which is the correct semantics for the (liveness) until: a
    loop where ``p`` holds forever but ``q`` never does must evaluate to
    false.
    """
    hold = _table(formula.left, run, memo)
    target = _table(formula.right, run, memo)
    n = run.num_positions
    value = [False] * n
    changed = True
    while changed:
        changed = False
        # Iterate backwards so information propagates quickly along the
        # prefix; the loop part stabilizes within a few sweeps.
        for i in range(n - 1, -1, -1):
            new = target[i] or (hold[i] and value[run.successor(i)])
            if new != value[i]:
                value[i] = new
                changed = True
    return value


def _release_table(formula: A.Release, run: Run, memo: dict) -> list[bool]:
    """Greatest fixpoint of  val = q && (p || X val)  — dual of until.

    Starting from all-true captures the safety reading: a loop where ``q``
    holds forever satisfies ``p R q`` even if ``p`` never does.
    """
    release = _table(formula.left, run, memo)
    hold = _table(formula.right, run, memo)
    n = run.num_positions
    value = [True] * n
    changed = True
    while changed:
        changed = False
        for i in range(n - 1, -1, -1):
            new = hold[i] and (release[i] or value[run.successor(i)])
            if new != value[i]:
                value[i] = new
                changed = True
    return value
