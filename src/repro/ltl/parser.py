"""Recursive-descent parser for the LTL surface syntax.

Grammar (loosest to tightest precedence)::

    iff      := implies ( '<->' implies )*
    implies  := or ( '->' implies )?          # right associative
    or       := and ( ('||' | '|') and )*
    and      := temporal ( ('&&' | '&') temporal )*
    temporal := unary ( ('U'|'W'|'B'|'R') unary )*   # left associative
    unary    := ('!'|'~'|'X'|'F'|'G') unary | atom
    atom     := 'true' | 'false' | IDENT | '(' iff ')'

``X``, ``F``, ``G``, ``U``, ``W``, ``B``, ``R``, ``true`` and ``false`` are
reserved words; every other identifier (``[A-Za-z_][A-Za-z0-9_]*``) is an
event variable.  This mirrors the paper's notation, e.g.::

    parse("G(dateChange -> !F refund)")          # Ticket A, §2.2
    parse("G(missedFlight -> !F dateChange)")    # Ticket B / C
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import LTLSyntaxError
from . import ast as A

_RESERVED_UNARY = {"X": A.Next, "F": A.Finally, "G": A.Globally}
_RESERVED_BINARY = {"U": A.Until, "W": A.WeakUntil, "B": A.Before, "R": A.Release}
_RESERVED_CONST = {"true": A.TRUE, "false": A.FALSE}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<iff><->)
  | (?P<arrow>->)
  | (?P<and>&&|&)
  | (?P<or>\|\||\|)
  | (?P<not>!|~)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def tokenize(text: str) -> list[_Token]:
    """Split ``text`` into tokens; raises :class:`LTLSyntaxError` on any
    character outside the grammar."""
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise LTLSyntaxError(
                f"unexpected character {text[pos]!r}", text=text, position=pos
            )
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    return tokens


class _Parser:
    """Single-use recursive-descent parser over a token list."""

    def __init__(self, text: str):
        self._text = text
        self._tokens = tokenize(text)
        self._index = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise LTLSyntaxError(
                "unexpected end of input", text=self._text, position=len(self._text)
            )
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token is None or token.kind != kind:
            found = token.text if token else "end of input"
            position = token.position if token else len(self._text)
            raise LTLSyntaxError(
                f"expected {kind}, found {found!r}", text=self._text, position=position
            )
        return self._advance()

    # -- grammar ------------------------------------------------------------

    def parse(self) -> A.Formula:
        formula = self._iff()
        trailing = self._peek()
        if trailing is not None:
            raise LTLSyntaxError(
                f"unexpected trailing input {trailing.text!r}",
                text=self._text,
                position=trailing.position,
            )
        return formula

    def _iff(self) -> A.Formula:
        left = self._implies()
        while self._peek_kind() == "iff":
            self._advance()
            right = self._implies()
            left = A.Iff(left, right)
        return left

    def _implies(self) -> A.Formula:
        left = self._or()
        if self._peek_kind() == "arrow":
            self._advance()
            right = self._implies()  # right associative
            return A.Implies(left, right)
        return left

    def _or(self) -> A.Formula:
        left = self._and()
        while self._peek_kind() == "or":
            self._advance()
            left = A.Or(left, self._and())
        return left

    def _and(self) -> A.Formula:
        left = self._temporal()
        while self._peek_kind() == "and":
            self._advance()
            left = A.And(left, self._temporal())
        return left

    def _temporal(self) -> A.Formula:
        left = self._unary()
        while True:
            token = self._peek()
            if token is None or token.kind != "ident":
                return left
            ctor = _RESERVED_BINARY.get(token.text)
            if ctor is None:
                raise LTLSyntaxError(
                    f"unexpected identifier {token.text!r} "
                    "(missing operator before it?)",
                    text=self._text,
                    position=token.position,
                )
            self._advance()
            left = ctor(left, self._unary())

    def _unary(self) -> A.Formula:
        token = self._peek()
        if token is None:
            raise LTLSyntaxError(
                "unexpected end of input", text=self._text, position=len(self._text)
            )
        if token.kind == "not":
            self._advance()
            return A.Not(self._unary())
        if token.kind == "ident" and token.text in _RESERVED_UNARY:
            self._advance()
            return _RESERVED_UNARY[token.text](self._unary())
        return self._atom()

    def _atom(self) -> A.Formula:
        token = self._advance()
        if token.kind == "lparen":
            inner = self._iff()
            self._expect("rparen")
            return inner
        if token.kind == "ident":
            if token.text in _RESERVED_CONST:
                return _RESERVED_CONST[token.text]
            if token.text in _RESERVED_BINARY or token.text in _RESERVED_UNARY:
                raise LTLSyntaxError(
                    f"reserved word {token.text!r} used as a proposition",
                    text=self._text,
                    position=token.position,
                )
            return A.Prop(token.text)
        raise LTLSyntaxError(
            f"unexpected token {token.text!r}", text=self._text, position=token.position
        )

    def _peek_kind(self) -> str | None:
        token = self._peek()
        return token.kind if token else None


def parse(text: str) -> A.Formula:
    """Parse an LTL formula from its textual form.

    >>> parse("G(dateChange -> !F refund)")
    Globally('G (dateChange -> !F refund)')
    """
    return _Parser(text).parse()


def parse_clauses(texts: list[str]) -> A.Formula:
    """Parse a list of clause strings and return their conjunction.

    Contracts in the paper are specified as *sets* of declarative clauses
    whose semantics is the conjunction of all of them (§2, Example 5).
    """
    return A.conj([parse(t) for t in texts])
