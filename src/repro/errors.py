"""Exception hierarchy for the contract-broker library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so a
downstream application can install a single ``except ReproError`` guard
around broker calls without accidentally swallowing unrelated failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class LTLSyntaxError(ReproError):
    """Raised by the LTL parser on malformed input.

    Attributes:
        text: the full input string being parsed.
        position: character offset at which the error was detected.
    """

    def __init__(self, message: str, text: str = "", position: int = -1):
        super().__init__(message)
        self.text = text
        self.position = position

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.position >= 0:
            return f"{base} (at offset {self.position})"
        return base


class AutomatonError(ReproError):
    """Raised on structurally invalid automata (e.g. unknown states in a
    transition, a final-state set that is not a subset of the states)."""


class TranslationError(ReproError):
    """Raised when the LTL-to-Büchi translation cannot complete, e.g. when
    a configured state-count budget is exceeded."""


class IndexError_(ReproError):
    """Raised on invalid prefilter-index operations (duplicate contract
    identifiers, lookups on an unbuilt index, bad depth bounds)."""


class ProjectionError(ReproError):
    """Raised on invalid projection-store operations."""


class BudgetExceededError(ReproError):
    """Raised inside a permission check when its execution budget (a
    wall-clock deadline or a search-step cap) is exhausted.

    Attributes:
        reason: ``"deadline"`` or ``"steps"``.
    """

    def __init__(self, message: str, reason: str = "deadline"):
        super().__init__(message)
        self.reason = reason


class BrokerError(ReproError):
    """Raised on invalid broker operations (duplicate registration,
    querying an empty database when configured to reject it, ...)."""


class QueryBudgetError(BrokerError):
    """Raised by a query whose execution budget was exhausted while its
    degradation policy is :attr:`repro.broker.options.Degradation.FAIL`
    (callers that prefer an exception over a degraded answer)."""


class MonitorError(ReproError):
    """Raised on invalid monitoring operations — e.g. a snapshot citing
    events outside the contract vocabulary while the monitor runs with
    ``MonitorOptions.strict_vocabulary``, or advancing an unknown
    contract in a fleet engine."""


class WorkloadError(ReproError):
    """Raised on invalid workload-generation parameters."""


class DistError(ReproError):
    """Raised on distributed-broker failures: a shard that cannot be
    reached, a cluster topology mismatch, an operation the wire
    protocol cannot carry (e.g. ``explain`` witnesses)."""


class ProtocolError(DistError):
    """Raised on malformed wire traffic between the coordinator and a
    shard server: bad frame length, non-JSON payload, unknown op, or a
    response that does not match the request."""


class RetryableDistError(DistError):
    """A *transient* transport failure on a non-idempotent operation
    (``register``/``deregister``): the coordinator will not retry
    automatically — the op may or may not have been applied on the
    shard — but the caller may safely retry after verifying state
    (e.g. via ``status``; a duplicate ``register`` is rejected by
    name, so a blind retry is detected rather than double-applied)."""


class JournalError(BrokerError):
    """Raised on write-ahead-journal failures that must not be silently
    degraded: an append whose payload cannot be serialized, a journal
    file that cannot be opened or synced.  Torn or corrupt *tail*
    records are not errors — recovery truncates them (see
    :mod:`repro.broker.journal`)."""
