"""Selectivity-controlled query workloads.

The paper attributes prefiltering's value to *highly selective* queries
(§1) but its generator draws queries independently of the stored
contracts, leaving selectivity to chance.  This module derives queries
*from* registered contracts, with a knob that controls how specific —
and therefore how selective — they are:

given a contract, take one of its allowed behaviors (a lasso run of its
BA) and turn the first ``depth`` event occurrences into the eventuality
chain ``F(e1 && F(e2 && ... F(ek)))``.  The deriving contract permits
the query by construction (its own witness run satisfies it); other
contracts match only if they also allow that event pattern, which gets
rarer as ``depth`` grows.

Used by ``benchmarks/bench_selectivity.py`` to chart candidate-set size
and speedup against selectivity.
"""

from __future__ import annotations

from ..automata.buchi import BuchiAutomaton
from ..automata.language import enumerate_runs
from ..errors import WorkloadError
from ..ltl.ast import And, Finally, Formula, Prop


def chain_query(events: list[str]) -> Formula:
    """The eventuality chain ``F(e1 && F(e2 && ...))`` over ``events``."""
    if not events:
        raise WorkloadError("cannot build a chain query from no events")
    formula: Formula = Finally(Prop(events[-1]))
    for event in reversed(events[:-1]):
        formula = Finally(And(Prop(event), formula))
    return formula


def derive_query(
    contract_ba: BuchiAutomaton,
    depth: int,
    max_behaviors: int = 16,
) -> Formula | None:
    """A depth-``depth`` chain query some behavior of the contract
    exhibits, or ``None`` if no allowed behavior shows that many events.

    Deterministic: behaviors are enumerated simplest-first and the first
    one with enough event occurrences wins.
    """
    if depth < 1:
        raise WorkloadError("depth must be >= 1")
    for run in enumerate_runs(contract_ba, limit=max_behaviors):
        events: list[str] = []
        horizon = run.num_positions + len(run.loop)
        for t in range(horizon):
            snapshot = run.instant(t)
            events.extend(sorted(snapshot))
            if len(events) >= depth:
                return chain_query(events[:depth])
    return None


def derived_workload(
    contract_bas: list[BuchiAutomaton],
    depth: int,
    count: int,
) -> list[Formula]:
    """Up to ``count`` depth-``depth`` queries, derived round-robin from
    the given contracts (contracts without deep-enough behaviors are
    skipped)."""
    queries: list[Formula] = []
    for ba in contract_bas:
        if len(queries) >= count:
            break
        query = derive_query(ba, depth)
        if query is not None:
            queries.append(query)
    return queries
