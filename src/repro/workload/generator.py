"""Random contract and query generation (§7.2).

"Given the novelty of our setting, it was impossible for us to find real
databases of contract specifications" — the paper therefore generates
both contracts and queries as conjunctions of randomly instantiated
Dwyer–Avrunin–Corbett patterns, sampled with the occurrence frequencies
reported by the survey [8] and with the pattern placeholders substituted
by events from the common vocabulary.  We reproduce that method exactly:

* behavior and scope are drawn from :data:`repro.ltl.patterns.BEHAVIOR_WEIGHTS`
  and :data:`~repro.ltl.patterns.SCOPE_WEIGHTS`;
* each pattern's placeholders are filled with *distinct* events drawn
  uniformly from the vocabulary; events are reused freely *across*
  patterns, which creates the cross-clause interactions the paper calls
  out in Example 14 ("the properties are often related between each
  other as some variables appear in multiple statements");
* a specification of complexity ``n`` is the conjunction of ``n``
  sampled patterns.

Generation is fully deterministic given the seed.  Because a random
conjunction can be unsatisfiable (its BA is empty and it permits
nothing), generators optionally resample until satisfiable — the
benchmark datasets use that mode so measured work is representative.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from ..automata.ltl2ba import translate
from ..errors import TranslationError, WorkloadError
from ..ltl.ast import Formula
from ..ltl.patterns import (
    BEHAVIOR_WEIGHTS,
    SCOPE_WEIGHTS,
    Behavior,
    PatternTemplate,
    Scope,
    template,
)
from .vocabulary import numbered_vocabulary


@dataclass(frozen=True)
class GeneratedSpec:
    """One generated specification: the clauses plus provenance."""

    clauses: tuple[Formula, ...]
    patterns: tuple[tuple[Behavior, Scope], ...]

    @property
    def num_patterns(self) -> int:
        return len(self.clauses)


class PatternSampler:
    """Samples pattern instances per the survey distribution of [8]."""

    def __init__(self, vocabulary: Sequence[str], rng: random.Random):
        if not vocabulary:
            raise WorkloadError("empty vocabulary")
        self._vocabulary = list(vocabulary)
        self._rng = rng
        self._behaviors = list(BEHAVIOR_WEIGHTS)
        self._behavior_weights = [BEHAVIOR_WEIGHTS[b] for b in self._behaviors]
        self._scopes = list(SCOPE_WEIGHTS)
        self._scope_weights = [SCOPE_WEIGHTS[s] for s in self._scopes]

    def sample_template(self) -> PatternTemplate:
        behavior = self._rng.choices(self._behaviors, self._behavior_weights)[0]
        scope = self._rng.choices(self._scopes, self._scope_weights)[0]
        return template(behavior, scope)

    def sample_clause(self) -> tuple[Formula, tuple[Behavior, Scope]]:
        """One instantiated pattern; placeholders get distinct events."""
        chosen = self.sample_template()
        needed = len(chosen.placeholders)
        if needed > len(self._vocabulary):
            raise WorkloadError(
                f"pattern needs {needed} distinct events, vocabulary has "
                f"{len(self._vocabulary)}"
            )
        events = self._rng.sample(self._vocabulary, needed)
        mapping = dict(zip(chosen.placeholders, events))
        return chosen.instantiate(**mapping), (chosen.behavior, chosen.scope)


class WorkloadGenerator:
    """Deterministic generator of contract and query specifications.

    Args:
        vocabulary_size: number of events in the common vocabulary.
        seed: RNG seed; equal seeds give identical workloads.
        ensure_satisfiable: resample specifications whose conjunction
            translates to an empty-language BA (cap: ``max_retries``).
        state_budget: translation budget used by the satisfiability
            probe; oversized specs are resampled as well.
    """

    def __init__(
        self,
        vocabulary_size: int = 20,
        seed: int = 0,
        ensure_satisfiable: bool = True,
        max_retries: int = 50,
        state_budget: int = 20_000,
        max_transitions: int | None = None,
    ):
        self.vocabulary = numbered_vocabulary(vocabulary_size)
        self._rng = random.Random(seed)
        self._sampler = PatternSampler(self.vocabulary, self._rng)
        self._ensure_satisfiable = ensure_satisfiable
        self._max_retries = max_retries
        self._state_budget = state_budget
        #: optional cap on the translated BA's transition count; random
        #: conjunctions have a heavy tail (Table 2's large stddevs) and
        #: scaled benchmark configs cap it to keep run-to-run timing
        #: variance manageable (documented in EXPERIMENTS.md)
        self._max_transitions = max_transitions

    def generate_spec(self, num_patterns: int) -> GeneratedSpec:
        """One specification: the conjunction of ``num_patterns`` sampled
        pattern instances."""
        if num_patterns < 1:
            raise WorkloadError("num_patterns must be >= 1")
        attempts = 0
        while True:
            attempts += 1
            clauses = []
            provenance = []
            for _ in range(num_patterns):
                clause, origin = self._sampler.sample_clause()
                clauses.append(clause)
                provenance.append(origin)
            spec = GeneratedSpec(tuple(clauses), tuple(provenance))
            if not self._ensure_satisfiable or self._is_usable(spec):
                return spec
            if attempts > self._max_retries:
                raise WorkloadError(
                    f"could not generate a satisfiable spec of "
                    f"{num_patterns} patterns in {self._max_retries} tries"
                )

    def generate_specs(self, count: int, num_patterns: int) -> list[GeneratedSpec]:
        """A batch of ``count`` specifications of equal complexity."""
        return [self.generate_spec(num_patterns) for _ in range(count)]

    def _is_usable(self, spec: GeneratedSpec) -> bool:
        from ..ltl.ast import conj

        try:
            ba = translate(conj(spec.clauses), state_budget=self._state_budget)
        except TranslationError:
            return False
        if ba.is_empty():
            return False
        if (
            self._max_transitions is not None
            and ba.num_transitions > self._max_transitions
        ):
            return False
        return True


# -- adversarial workloads ---------------------------------------------------------

#: events the pathological profile draws from; ``ev6`` appears in the
#: pathological query but in no "monster" contract, so a scan-mode check
#: against one must explore its whole product space before answering.
_PATHOLOGICAL_VOCABULARY = tuple(f"ev{i}" for i in range(7))


def _eventually_conjunction(events: Sequence[str]) -> Formula:
    """``F ev0 && F ev1 && ...`` — the translated BA tracks which of the
    ``k`` obligations are still open, so it has ``2^k`` states with cheap
    labels: maximal permission-check work per translation second."""
    from ..ltl.ast import conj
    from ..ltl.parser import parse

    return conj([parse(f"F {event}") for event in events])


def pathological_specs(
    count: int = 60,
    *,
    monsters: int = 2,
    events_per_contract: int = 5,
    seed: int = 0,
) -> list[GeneratedSpec]:
    """An adversarial contract workload for budget/timeout testing.

    The first ``monsters`` specs are "monster" contracts — eventuality
    conjunctions over ``ev0..ev5`` (a 64-state BA whose exhaustive
    permission check against a wide query takes hundreds of
    milliseconds); the rest conjoin ``events_per_contract`` events
    sampled from ``ev0..ev6``.  Paired with :func:`pathological_query`
    in scan mode this makes every permission check an exhaustive
    product-space search — the workload behind the bounded-tail-latency
    benchmark and the CI timeout smoke test.
    """
    if count < monsters:
        raise WorkloadError(
            f"count ({count}) must be >= monsters ({monsters})"
        )
    rng = random.Random(seed)
    specs: list[GeneratedSpec] = []
    for _ in range(monsters):
        formula = _eventually_conjunction(_PATHOLOGICAL_VOCABULARY[:6])
        specs.append(GeneratedSpec((formula,), ()))
    for _ in range(count - monsters):
        events = rng.sample(_PATHOLOGICAL_VOCABULARY, events_per_contract)
        specs.append(GeneratedSpec((_eventually_conjunction(events),), ()))
    return specs


def pathological_query() -> Formula:
    """The adversarial query for :func:`pathological_specs`: an
    eventuality conjunction over the whole seven-event vocabulary.  Its
    BA has ``2^7`` states, and since no contract cites all seven events,
    every scan-mode check runs to an exhaustive (False) search."""
    return _eventually_conjunction(_PATHOLOGICAL_VOCABULARY)
