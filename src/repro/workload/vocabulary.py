"""Event vocabularies for synthetic workloads.

The paper's generator draws pattern events from a common vocabulary of
20 propositional variables (Example 14 shows events ``p1``..``p20``).
We reproduce that naming and let the size be a parameter — the scaled
benchmark configurations use smaller vocabularies to keep pure-Python
running times reasonable while preserving the experiment's shape.
"""

from __future__ import annotations

from ..errors import WorkloadError

#: Size of the vocabulary in the paper's experiments (§7.2, Example 14).
PAPER_VOCABULARY_SIZE = 20


def numbered_vocabulary(size: int = PAPER_VOCABULARY_SIZE) -> tuple[str, ...]:
    """The paper's ``p1 .. pN`` event vocabulary.

    >>> numbered_vocabulary(3)
    ('p1', 'p2', 'p3')
    """
    if size < 1:
        raise WorkloadError(f"vocabulary size must be >= 1, got {size}")
    return tuple(f"p{i}" for i in range(1, size + 1))
