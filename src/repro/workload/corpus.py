"""A curated corpus of realistic service contracts.

The paper motivates the broker with markets where "there is no
negotiation of the contracts, but that present many possible choices in
direct competition (e.g. airfares, insurances, warranties)" (§1).  This
module provides a hand-written corpus across four such domains, each
with its own event vocabulary, several competing contracts whose
policies genuinely differ in temporal behavior, and a set of customer
questions with their expected answers.

The corpus serves three purposes: richer-than-synthetic integration
tests, a demo dataset for the examples and the CLI, and documentation of
how natural-language fine print maps onto declarative clauses
(requirement iv of §1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..broker.contract import ContractSpec
from ..broker.vocabulary import EventVocabulary
from ..ltl.parser import parse


@dataclass(frozen=True)
class CorpusDomain:
    """One market domain: a vocabulary, competing contracts, questions."""

    name: str
    vocabulary: EventVocabulary
    contracts: tuple[ContractSpec, ...]
    #: question text -> (LTL, expected contract names)
    questions: Mapping[str, tuple[str, frozenset[str]]]


def _spec(name: str, clauses: Sequence[str], **attributes) -> ContractSpec:
    return ContractSpec(
        name=name,
        clauses=tuple(parse(c) for c in clauses),
        attributes=attributes,
    )


def _exclusive(events: Sequence[str]) -> list[str]:
    """The paper's C0 convention (Example 5): at most one event per
    instant, as pairwise exclusion clauses."""
    return [
        f"G({first} -> !{second})"
        for first in events
        for second in events
        if first != second
    ]


# ---------------------------------------------------------------------------
# Domain 1: extended warranties for electronics
# ---------------------------------------------------------------------------

def _warranty_domain() -> CorpusDomain:
    vocabulary = EventVocabulary.describe(
        purchase="the device is purchased",
        defect="a covered defect occurs",
        repair="the device is repaired under warranty",
        replace="the device is replaced under warranty",
        claimDenied="a warranty claim is denied",
        transfer="the warranty is transferred to a new owner",
        expire="the warranty expires",
    )
    common = _exclusive(list(vocabulary.names())) + [
        "purchase B (defect || repair || replace || claimDenied || transfer || expire)",
        "G(expire -> G(!repair && !replace))",
        "defect B repair",
        "defect B replace",
    ]
    contracts = (
        _spec("EconomyCare", common + [
            # one repair, never a replacement, no transfers
            "G(repair -> X(!F repair))",
            "G(!replace)",
            "G(!transfer)",
        ], price=49, term_years=1),
        _spec("StandardCare", common + [
            # repairs unlimited; a replacement ends coverage
            "G(replace -> X G(!repair && !replace))",
            # transferable once
            "G(transfer -> X(!F transfer))",
        ], price=99, term_years=2),
        _spec("PremiumCare", common + [
            # every defect is eventually remedied, never denied
            "G(defect -> F(repair || replace))",
            "G(!claimDenied)",
        ], price=199, term_years=3),
    )
    questions = {
        "Can I get a second repair?": (
            "F(repair && X F repair)",
            frozenset({"StandardCare", "PremiumCare"}),
        ),
        "Could a claim simply be denied?": (
            "F claimDenied",
            frozenset({"EconomyCare", "StandardCare"}),
        ),
        "Can coverage continue after a replacement?": (
            "F(replace && X F repair)",
            frozenset({"PremiumCare"}),
        ),
        "Can I sell the device with the warranty?": (
            "F transfer",
            frozenset({"StandardCare", "PremiumCare"}),
        ),
    }
    return CorpusDomain("warranty", vocabulary, contracts, questions)


# ---------------------------------------------------------------------------
# Domain 2: SaaS service-level agreements
# ---------------------------------------------------------------------------

def _saas_domain() -> CorpusDomain:
    vocabulary = EventVocabulary.describe(
        subscribe="the customer subscribes",
        outage="a service outage occurs",
        credit="a service credit is issued",
        priceIncrease="the subscription price is raised",
        cancel="the provider terminates the subscription",
        exportData="the customer exports their data",
    )
    common = _exclusive(list(vocabulary.names())) + [
        "subscribe B (outage || credit || priceIncrease || cancel || exportData)",
        "outage B credit",
    ]
    contracts = (
        _spec("FreeTier", common + [
            # no credits ever; the provider may cancel at will; price
            # can rise at any time; data export only before cancellation
            "G(!credit)",
            "G(cancel -> G !exportData)",
        ], monthly=0),
        _spec("BusinessSLA", common + [
            # every outage is eventually credited
            "G(outage -> F credit)",
            # never cancelled while the customer has pending credits:
            # cancellation must be preceded by a credit for every outage
            "G(cancel -> !F outage)",
            # data can be exported even after cancellation
        ], monthly=99),
        _spec("EnterpriseSLA", common + [
            "G(outage -> F credit)",
            "G(!cancel)",
            "G(!priceIncrease)",
        ], monthly=499),
    )
    questions = {
        "Will outages be compensated?": (
            "F(outage && F credit)",
            frozenset({"BusinessSLA", "EnterpriseSLA"}),
        ),
        "Can the price rise on me?": (
            "F priceIncrease",
            frozenset({"FreeTier", "BusinessSLA"}),
        ),
        "Can I still export data after being cancelled?": (
            "F(cancel && F exportData)",
            frozenset({"BusinessSLA"}),
        ),
        "Might I be cancelled at all?": (
            "F cancel",
            frozenset({"FreeTier", "BusinessSLA"}),
        ),
    }
    return CorpusDomain("saas", vocabulary, contracts, questions)


# ---------------------------------------------------------------------------
# Domain 3: gym memberships
# ---------------------------------------------------------------------------

def _gym_domain() -> CorpusDomain:
    vocabulary = EventVocabulary.describe(
        join="the member joins",
        freeze="the membership is frozen",
        unfreeze="the membership is reactivated",
        guestVisit="the member brings a guest",
        feeIncrease="the monthly fee is raised",
        quit="the member cancels",
    )
    common = _exclusive(list(vocabulary.names())) + [
        "join B (freeze || unfreeze || guestVisit || feeIncrease || quit)",
        "freeze B unfreeze",
        "G(quit -> G(!freeze && !unfreeze && !guestVisit))",
    ]
    contracts = (
        _spec("FlexPass", common + [
            # freeze whenever, guests whenever, but fees may rise
        ], monthly=59, commitment_months=0),
        _spec("AnnualBasic", common + [
            # one freeze per membership; no guests; fee locked
            "G(freeze -> X(!F freeze))",
            "G(!guestVisit)",
            "G(!feeIncrease)",
        ], monthly=39, commitment_months=12),
        _spec("FamilyPlus", common + [
            # guests any time; fee locked; freezing forfeits guests
            "G(!feeIncrease)",
            "G(freeze -> G !guestVisit)",
        ], monthly=89, commitment_months=6),
    )
    questions = {
        "Can I freeze twice?": (
            "F(freeze && X F(unfreeze && X F freeze))",
            frozenset({"FlexPass", "FamilyPlus"}),
        ),
        "Could my fee ever rise?": (
            "F feeIncrease",
            frozenset({"FlexPass"}),
        ),
        "Guest after a freeze?": (
            "F(freeze && X F guestVisit)",
            frozenset({"FlexPass"}),
        ),
    }
    return CorpusDomain("gym", vocabulary, contracts, questions)


# ---------------------------------------------------------------------------
# Domain 4: event-ticket resale policies
# ---------------------------------------------------------------------------

def _resale_domain() -> CorpusDomain:
    vocabulary = EventVocabulary.describe(
        buy="the ticket is bought",
        listForSale="the ticket is listed for resale",
        sell="the ticket is resold",
        priceCapHit="the resale price cap binds",
        attend="the holder attends the event",
        voided="the ticket is voided by the promoter",
    )
    common = _exclusive(
        ["buy", "listForSale", "sell", "attend", "voided"]
    ) + [
        "buy B (listForSale || sell || priceCapHit || attend || voided)",
        "listForSale B sell",
        "G(voided -> G(!attend && !sell))",
        "G(attend -> X G(!attend && !sell && !listForSale))",
    ]
    contracts = (
        _spec("NoResale", common + [
            "G(!listForSale)",
            "G(!sell)",
        ], fee=0),
        _spec("CappedResale", common + [
            # resale allowed but the cap always binds on a sale
            "G(sell -> priceCapHit)",
        ], fee=5),
        _spec("OpenResale", common + [
            # free market; but the promoter may void fraudulent tickets
        ], fee=12),
    )
    questions = {
        "Can I resell at all?": (
            "F sell",
            frozenset({"CappedResale", "OpenResale"}),
        ),
        "Can I resell above the cap?": (
            "F(sell && !priceCapHit)",
            frozenset({"OpenResale"}),
        ),
        "Can a resold ticket still be voided?": (
            "F(sell && X F voided)",
            frozenset({"CappedResale", "OpenResale"}),
        ),
    }
    return CorpusDomain("resale", vocabulary, contracts, questions)


def all_domains() -> tuple[CorpusDomain, ...]:
    """The full corpus, one :class:`CorpusDomain` per market."""
    return (
        _warranty_domain(),
        _saas_domain(),
        _gym_domain(),
        _resale_domain(),
    )


def domain(name: str) -> CorpusDomain:
    """Look up one domain by name."""
    for d in all_domains():
        if d.name == name:
            return d
    raise KeyError(f"no corpus domain named {name!r}")
