"""The paper's running airfare example as a reusable fixture.

Encodes the event vocabulary of Example 3, the common clauses C1–C5 of
Example 5 (including the one-event-per-instant convention C0), and the
three ticket policies of Example 2:

* **Ticket A** — no refunds after a date change; unlimited date changes;
* **Ticket B** — refunds always allowed; date changes only before the
  scheduled departure (modeled, as in Example 5, as "no date change
  after a missed flight");
* **Ticket C** — no refunds; a single date change; only before the
  scheduled departure.

Two of the paper's clauses are adjusted to be satisfiable under the
standard reflexive-``F`` semantics the paper itself defines in §6.1
(``F p == true U p`` holds already when ``p`` holds *now*):

* C2 is used un-``G``-ed — wrapping the before-clause in ``G`` would
  require a fresh purchase between every pair of events;
* C4/C5's "no other event can happen" use ``X G(no events)`` rather
  than ``!F(...)``, since the triggering event itself would otherwise
  falsify the consequent.

The module also provides the queries of Examples 2 and 4 and their
expected outcomes, which the integration tests assert verbatim.
"""

from __future__ import annotations

from ..broker.contract import ContractSpec
from ..ltl.parser import parse

#: Example 3's vocabulary for single-trip flights.
EVENTS: tuple[str, ...] = (
    "purchase",
    "use",
    "missedFlight",
    "refund",
    "dateChange",
)


def one_event_per_instant() -> list[str]:
    """C0: at most one event happens in each instant (Example 5)."""
    return [
        f"G({first} -> !{second})"
        for first in EVENTS
        for second in EVENTS
        if first != second
    ]


def common_clauses() -> list[str]:
    """C0–C5: the domain axioms shared by every airfare (Example 5)."""
    others = " || ".join(e for e in EVENTS if e != "purchase")
    no_more = " && ".join(f"!{e}" for e in EVENTS)
    return one_event_per_instant() + [
        # C1: the ticket is purchased once.
        "G(purchase -> X(!F purchase))",
        # C2: purchase precedes every other event.
        f"purchase B ({others})",
        # C3: a missed flight makes the ticket unusable unless rescheduled.
        "G((missedFlight -> !F use) W dateChange)",
        # C4: after a refund nothing else happens.
        f"G(refund -> X G({no_more}))",
        # C5: after the ticket is used nothing else happens.
        f"G(use -> X G({no_more}))",
    ]


#: Ticket-specific policy clauses (Example 5).
TICKET_CLAUSES: dict[str, list[str]] = {
    "Ticket A": [
        "G(dateChange -> !F refund)",
    ],
    "Ticket B": [
        "G(missedFlight -> !F dateChange)",
    ],
    "Ticket C": [
        "G(!refund)",
        "G(dateChange -> X(!F dateChange))",
        "G(missedFlight -> !F dateChange)",
    ],
}

#: Illustrative relational attributes for the broker examples (the San
#: Diego - New York scenario of Example 2).
TICKET_ATTRIBUTES: dict[str, dict] = {
    "Ticket A": {
        "airline": "United", "cabin": "business",
        "origin": "SAN", "destination": "JFK",
        "date": "2010-10-19", "price": 980,
    },
    "Ticket B": {
        "airline": "AA", "cabin": "economy",
        "origin": "SAN", "destination": "JFK",
        "date": "2010-10-19", "price": 640,
    },
    "Ticket C": {
        "airline": "Delta", "cabin": "economy",
        "origin": "SAN", "destination": "JFK",
        "date": "2010-10-19", "price": 310,
    },
}


def ticket_spec(name: str) -> ContractSpec:
    """The full :class:`ContractSpec` of one ticket: common clauses plus
    its policy clauses plus its relational attributes."""
    clauses = [parse(c) for c in common_clauses() + TICKET_CLAUSES[name]]
    return ContractSpec(
        name=name,
        clauses=tuple(clauses),
        attributes=TICKET_ATTRIBUTES[name],
    )


def all_ticket_specs() -> list[ContractSpec]:
    """Specs for Tickets A, B and C, in order."""
    return [ticket_spec(name) for name in TICKET_CLAUSES]


#: Queries from the paper with their expected result sets.
QUERIES: dict[str, dict] = {
    # Example 2: "allows a partial ticket refund or a date change after
    # the first leg has been missed" — returns A and B, not C.
    "refund_or_change_after_miss": {
        "ltl": "F(missedFlight && F(refund || dateChange))",
        "expected": {"Ticket A", "Ticket B"},
    },
    # Figure 1b: a refund after a missed flight.
    "refund_after_miss": {
        "ltl": "F(missedFlight && F refund)",
        "expected": {"Ticket A", "Ticket B"},
    },
    # Example 4 (Q2): a class upgrade after a date change — no ticket
    # cites class upgrades, so none is returned (§2.1).
    "upgrade_after_change": {
        "ltl": "F(dateChange && F classUpgrade)",
        "expected": set(),
    },
    # §2.1 (Q3): after a date change, a class upgrade OR a refund — only
    # Ticket B explicitly allows refunds after date changes.
    "upgrade_or_refund_after_change": {
        "ltl": "F(dateChange && F(classUpgrade || refund))",
        "expected": {"Ticket B"},
    },
    # Figure 2c: two date changes.  Ticket C caps date changes at one and
    # is excluded; A is unlimited, and B's Example-5 modeling only forbids
    # changes after a missed flight, so both A and B permit.
    "two_date_changes": {
        "ltl": "F(dateChange && X F dateChange)",
        "expected": {"Ticket A", "Ticket B"},
    },
}
