"""Synthetic workload generation (§7.2) and domain fixtures.

Typical use::

    from repro.workload import WorkloadGenerator, SCALED_DATASETS

    gen = WorkloadGenerator(vocabulary_size=12, seed=7)
    contracts = gen.generate_specs(100, num_patterns=3)
"""

from .datasets import (
    PAPER_DATASETS,
    SCALED_DATASETS,
    DatasetConfig,
    DatasetStatistics,
    dataset_statistics,
)
from .generator import (
    GeneratedSpec,
    PatternSampler,
    WorkloadGenerator,
    pathological_query,
    pathological_specs,
)
from .vocabulary import PAPER_VOCABULARY_SIZE, numbered_vocabulary

__all__ = [
    "PAPER_DATASETS",
    "SCALED_DATASETS",
    "DatasetConfig",
    "DatasetStatistics",
    "dataset_statistics",
    "GeneratedSpec",
    "PatternSampler",
    "WorkloadGenerator",
    "pathological_query",
    "pathological_specs",
    "PAPER_VOCABULARY_SIZE",
    "numbered_vocabulary",
]
